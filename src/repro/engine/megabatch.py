"""Megabatch lowering: the whole compiled-block corpus as structure-of-arrays.

The per-block simulation kernels (:func:`repro.llvm_mca.simulator.simulate_bound_mca`,
:func:`repro.llvm_sim.simulator.simulate_bound_llvm_sim`) step one dynamic
instruction per Python bytecode loop iteration.  That loop is the last
per-block interpreter hot path left in the pipeline: blocks are already
compiled once and tables bound vectorized, but ``SimulationEngine.run`` still
walks blocks one at a time.

This module provides the batch-major counterpart, mirroring what
``PackedBlockBatch`` did for the surrogates: a :class:`PackedCorpus` lowers a
list of :class:`~repro.engine.compile.CompiledBlock` into padded NumPy
matrices (opcode indices, interned source/destination register ids, validity
implied by ``-1`` padding and per-block lengths), over which the
numpy-vectorized timing kernels in :mod:`repro.llvm_mca.megabatch` and
:mod:`repro.llvm_sim.megabatch` advance *every* block one dynamic instruction
per step.  All kernel arithmetic is int64 cycle math, so the megabatch
timings are bit-identical to the scalar reference kernels (property-tested
in ``tests/test_megabatch.py``).

:func:`megabatch_timings` is the shared driver: it sorts blocks by their
total dynamic instruction count so lockstep chunks waste few inactive lanes,
packs each chunk, runs the kernel, and scatters timings back into input
order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.engine.compile import CompiledBlock

#: Maximum blocks per lockstep kernel invocation.  Chunks bound peak state
#: memory (register scoreboards, reorder-buffer histories are ``O(B * T)``)
#: and keep each step's working set cache-sized; combined with the sorted
#: homogeneous chunking in :func:`megabatch_timings`, blocks of similar
#: dynamic length share a chunk so few lanes idle.
DEFAULT_MEGABATCH_CHUNK = 1024

#: A chunk never mixes blocks whose total dynamic step counts differ by more
#: than this factor (plus a small absolute slack for very short blocks).
#: Lockstep cost is ``O(B * max_steps)``, so homogeneity keeps the padded
#: lane-step volume within ~2x of the useful work.
_CHUNK_STEP_RATIO = 2
_CHUNK_STEP_SLACK = 16

#: Below this many lanes a lockstep chunk cannot amortize the fixed numpy
#: dispatch overhead of each step (~20 ufunc calls) against the scalar
#: kernels' few microseconds per dynamic instruction, so chunks this skinny
#: run the per-block scalar kernel instead when the caller provides one.
#: Long-tailed corpora (BHive-style lengths) put their few longest blocks
#: in exactly such chunks.
MIN_LOCKSTEP_BLOCKS = 8


@dataclass(frozen=True)
class PackedCorpus:
    """A compiled-block corpus lowered to padded structure-of-arrays form.

    Attributes:
        lengths: ``(B,)`` int64 instruction counts per block.
        opcode_indices: ``(B, L)`` int64 opcode-table indices, zero-padded
            past each block's length (padded positions are never stepped —
            kernels mask lanes by ``lengths``).
        source_ids: ``(B, L, S)`` int64 interned source-register ids, padded
            with ``-1`` (both past a block's length and past an
            instruction's operand count).
        destination_ids: ``(B, L, D)`` int64 interned destination-register
            ids, ``-1``-padded like ``source_ids``.
        num_registers: ``(B,)`` int64 block-local register-universe sizes.
    """

    lengths: np.ndarray
    opcode_indices: np.ndarray
    source_ids: np.ndarray
    destination_ids: np.ndarray
    num_registers: np.ndarray

    @property
    def num_blocks(self) -> int:
        return int(self.lengths.shape[0])

    @property
    def max_length(self) -> int:
        return int(self.opcode_indices.shape[1])


#: Cache of per-block dense operand matrices, keyed by the block's content
#: digest (``CompiledBlock.block_id``).  Lowering the tuple-of-tuples operand
#: lists is the only per-instruction Python loop left in packing, and the
#: same blocks recur across chunks, engine calls, and parameter updates
#: (tables change, blocks don't), so the matrices are built once per block.
_OPERAND_ROW_CACHE: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
_OPERAND_ROW_CACHE_MAX = 1 << 16


def _dense_operands(rows: Tuple[Tuple[int, ...], ...],
                    length: int) -> np.ndarray:
    """Lower ragged operand tuples into a dense ``(length, width)`` matrix."""
    width = max((len(ids) for ids in rows), default=0)
    dense = np.full((max(length, 1), max(width, 1)), -1, dtype=np.int64)
    for position, ids in enumerate(rows):
        if ids:
            dense[position, :len(ids)] = ids
    return dense


def _operand_rows(block: CompiledBlock) -> Tuple[np.ndarray, np.ndarray]:
    cached = _OPERAND_ROW_CACHE.get(block.block_id)
    if cached is None:
        if len(_OPERAND_ROW_CACHE) >= _OPERAND_ROW_CACHE_MAX:
            _OPERAND_ROW_CACHE.clear()
        cached = (_dense_operands(block.source_ids, block.length),
                  _dense_operands(block.destination_ids, block.length))
        _OPERAND_ROW_CACHE[block.block_id] = cached
    return cached


def pack_corpus(compiled: Sequence[CompiledBlock]) -> PackedCorpus:
    """Lower ``compiled`` blocks into one :class:`PackedCorpus`.

    Operand matrices are padded to at least one slot so kernels never deal
    with zero-width gather/scatter axes.
    """
    count = len(compiled)
    lengths = np.fromiter((block.length for block in compiled), dtype=np.int64,
                          count=count)
    max_length = int(lengths.max(initial=1))
    operand_rows = [_operand_rows(block) for block in compiled]
    max_sources = max((src.shape[1] for src, _ in operand_rows), default=1)
    max_destinations = max((dst.shape[1] for _, dst in operand_rows),
                           default=1)

    opcode_indices = np.zeros((count, max_length), dtype=np.int64)
    source_ids = np.full((count, max_length, max_sources), -1, dtype=np.int64)
    destination_ids = np.full((count, max_length, max_destinations), -1,
                              dtype=np.int64)
    for row, block in enumerate(compiled):
        opcode_indices[row, :block.length] = block.opcode_indices
        src, dst = operand_rows[row]
        source_ids[row, :src.shape[0], :src.shape[1]] = src
        destination_ids[row, :dst.shape[0], :dst.shape[1]] = dst
    num_registers = np.fromiter((block.num_registers for block in compiled),
                                dtype=np.int64, count=count)
    return PackedCorpus(lengths=lengths, opcode_indices=opcode_indices,
                        source_ids=source_ids, destination_ids=destination_ids,
                        num_registers=num_registers)


def shrink_iteration_counts(lengths: np.ndarray, warmup_iterations: int,
                            measure_iterations: int,
                            max_dynamic_instructions: int
                            ) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized ``_iteration_counts``: shrink windows for long blocks.

    Replicates the simulators' per-block loop exactly — first the
    measurement window shrinks (never below 2), then the warmup window
    (never below 1) — element-wise over ``lengths``.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    warmup = np.full(lengths.shape, int(warmup_iterations), dtype=np.int64)
    measure = np.full(lengths.shape, int(measure_iterations), dtype=np.int64)

    def over_cap() -> np.ndarray:
        return (warmup + measure) * lengths > max_dynamic_instructions

    shrink = over_cap() & (measure > 2)
    while shrink.any():
        measure[shrink] -= 1
        shrink = over_cap() & (measure > 2)
    shrink = over_cap() & (warmup > 1)
    while shrink.any():
        warmup[shrink] -= 1
        shrink = over_cap() & (warmup > 1)
    return warmup, measure


#: A megabatch kernel: ``(corpus, warmup, measure) -> (B,) float64 timings``.
MegabatchKernel = Callable[[PackedCorpus, np.ndarray, np.ndarray], np.ndarray]

#: A per-block scalar kernel: ``(compiled, warmup, measure) -> timing``.
ScalarKernel = Callable[[CompiledBlock, int, int], float]


def megabatch_timings(compiled: Sequence[CompiledBlock], warmup: np.ndarray,
                      measure: np.ndarray, kernel: MegabatchKernel,
                      chunk_size: int = DEFAULT_MEGABATCH_CHUNK,
                      scalar_kernel: ScalarKernel = None) -> np.ndarray:
    """Run ``kernel`` over ``compiled`` in sorted lockstep chunks.

    Blocks are ordered by total dynamic instruction count
    (``(warmup + measure) * length``), then split greedily into chunks of at
    most ``chunk_size`` blocks whose step counts stay within a small factor
    of the chunk's shortest block — lockstep lanes padded far past their own
    work would otherwise dominate both memory traffic and per-step overhead.
    Results are scattered back into input order.  The sort is stable, so
    equal-cost blocks keep their relative order and the chunking is fully
    deterministic.  Chunk membership never changes a block's timing (the
    kernels are bit-exact per lane), only throughput.

    Chunks with fewer than :data:`MIN_LOCKSTEP_BLOCKS` lanes run
    ``scalar_kernel`` per block instead when one is provided: with so few
    lanes the vectorized step overhead exceeds the scalar kernels' cost,
    and the scalar kernels produce the same bits.
    """
    count = len(compiled)
    timings = np.empty(count, dtype=np.float64)
    if count == 0:
        return timings
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    lengths = np.fromiter((block.length for block in compiled), dtype=np.int64,
                          count=count)
    total_steps = (np.asarray(warmup, dtype=np.int64)
                   + np.asarray(measure, dtype=np.int64)) * lengths
    order = np.argsort(total_steps, kind="stable")
    sorted_steps = total_steps[order]
    start = 0
    while start < count:
        ceiling = (max(int(sorted_steps[start]), 1) * _CHUNK_STEP_RATIO
                   + _CHUNK_STEP_SLACK)
        stop = min(count, start + chunk_size)
        limit = start + 1
        while limit < stop and int(sorted_steps[limit]) <= ceiling:
            limit += 1
        selected = order[start:limit]
        if scalar_kernel is not None and limit - start < MIN_LOCKSTEP_BLOCKS:
            for index in selected:
                timings[index] = scalar_kernel(compiled[index],
                                               int(warmup[index]),
                                               int(measure[index]))
        else:
            corpus = pack_corpus([compiled[index] for index in selected])
            timings[selected] = kernel(corpus, warmup[selected],
                                       measure[selected])
        start = limit
    return timings


def predict_timings_megabatch(simulator, blocks: Sequence) -> np.ndarray:
    """Shared ``predict_many`` implementation for both simulators.

    Routes batch prediction through the simulator's megabatch kernel
    (:meth:`predict_timing_batch`), falling back to the per-block scalar
    loop for simulators that do not provide one.
    """
    blocks = list(blocks)
    batch = getattr(simulator, "predict_timing_batch", None)
    if batch is not None:
        return np.asarray(batch(blocks), dtype=np.float64)
    return np.array([simulator.predict_timing(block) for block in blocks],
                    dtype=np.float64)


__all__ = [
    "DEFAULT_MEGABATCH_CHUNK",
    "MIN_LOCKSTEP_BLOCKS",
    "MegabatchKernel",
    "PackedCorpus",
    "ScalarKernel",
    "megabatch_timings",
    "pack_corpus",
    "predict_timings_megabatch",
    "shrink_iteration_counts",
]
