"""Shared simulation-engine layer: compile -> bind -> execute.

The engine separates the three concerns that were fused inside each
simulator:

1. **compile** (:mod:`repro.engine.compile`) — table-independent block
   structure (opcode indices, interned register ids), computed once per
   block and reused across every parameter table;
2. **bind** (:mod:`repro.engine.binding`) — per-opcode parameter lookups
   gathered into arrays with one vectorized step per field, plus the
   content digests and LRU caches the layer is built on;
3. **execute** (:mod:`repro.engine.engine`) — the
   :class:`SimulationEngine` batch API ``run(tables, blocks)`` with an LRU
   result cache keyed by ``(table_digest, block_id)``, megabatched miss
   execution through the numpy-vectorized timing kernels
   (:mod:`repro.engine.megabatch`), and an opt-in ``multiprocessing``
   executor that chunks megabatches across workers.

:mod:`repro.engine.factories` builds ready-to-use engines for the two
simulators the paper evaluates (llvm-mca and llvm_sim); it is loaded
lazily because the simulator modules themselves import this package.
"""

from repro.engine.compile import BlockCompiler, CompiledBlock, block_digest, compile_block
from repro.engine.binding import (LRUCache, LLVMSimBoundBlock, MCABoundBlock,
                                  bind_llvm_sim_block, bind_mca_block,
                                  llvm_sim_table_digest, mca_table_digest,
                                  parameter_arrays_digest)
from repro.engine.engine import DEFAULT_CACHE_SIZE, SimulationEngine
from repro.engine.megabatch import (DEFAULT_MEGABATCH_CHUNK, MIN_LOCKSTEP_BLOCKS,
                                    PackedCorpus, megabatch_timings, pack_corpus,
                                    predict_timings_megabatch,
                                    shrink_iteration_counts)

__all__ = [
    "BlockCompiler",
    "CompiledBlock",
    "block_digest",
    "compile_block",
    "LRUCache",
    "MCABoundBlock",
    "LLVMSimBoundBlock",
    "bind_mca_block",
    "bind_llvm_sim_block",
    "mca_table_digest",
    "llvm_sim_table_digest",
    "parameter_arrays_digest",
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_MEGABATCH_CHUNK",
    "MIN_LOCKSTEP_BLOCKS",
    "PackedCorpus",
    "SimulationEngine",
    "llvm_sim_engine",
    "mca_engine",
    "megabatch_timings",
    "pack_corpus",
    "predict_timings_megabatch",
    "shrink_iteration_counts",
]

_LAZY_FACTORY_EXPORTS = ("mca_engine", "llvm_sim_engine")


def __getattr__(name):
    # The factory helpers import the simulator modules, which in turn import
    # this package; resolving them lazily keeps the import graph acyclic.
    if name in _LAZY_FACTORY_EXPORTS:
        from repro.engine import factories

        return getattr(factories, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
