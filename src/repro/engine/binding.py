"""Table binding: gathering per-opcode parameters for a compiled block.

Binding is the table-dependent half of preparing a simulation (the
table-independent half is :mod:`repro.engine.compile`).  For each compiled
block it gathers the per-opcode parameter rows — ``WriteLatency``,
``ReadAdvanceCycles``, ``PortMap``, ``NumMicroOps`` — with one vectorized
NumPy fancy-indexing step per field, instead of the per-instruction Python
tuple-building the simulators previously did on every ``simulate()`` call.
The gathered rows are converted to plain Python ints/lists once (``tolist``)
because the simulation kernels iterate them in a tight interpreter loop.

The module also defines the content digests used as cache keys throughout
the engine layer:

* :func:`mca_table_digest` / :func:`llvm_sim_table_digest` — identity of a
  native parameter table, the table half of the engine's result-cache key;
* :func:`parameter_arrays_digest` — identity of optimization-layout arrays,
  used by the adapters to memoize ``table_from_arrays``;
* :class:`LRUCache` — the bounded mapping behind both caches.

To stay importable from the simulator modules themselves, this module only
imports :mod:`repro.engine.compile`; tables and parameter arrays are
accessed through their public attributes (see the ``TYPE_CHECKING`` block
for the concrete types).
"""

from __future__ import annotations

import hashlib
import struct
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Hashable, List, Optional, Tuple

import numpy as np

from repro.engine.compile import CompiledBlock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.parameters import ParameterArrays
    from repro.llvm_mca.params import MCAParameterTable
    from repro.llvm_sim.params import LLVMSimParameterTable


# ----------------------------------------------------------------------
# Content digests
# ----------------------------------------------------------------------
def _digest(*parts: bytes) -> str:
    hasher = hashlib.blake2b(digest_size=16)
    for part in parts:
        hasher.update(part)
    return hasher.hexdigest()


def _array_bytes(array: np.ndarray) -> bytes:
    return np.ascontiguousarray(array).tobytes()


def mca_table_digest(table: "MCAParameterTable") -> str:
    """Content digest of an llvm-mca parameter table."""
    return _digest(
        struct.pack("<qq", int(table.dispatch_width), int(table.reorder_buffer_size)),
        _array_bytes(table.num_micro_ops),
        _array_bytes(table.write_latency),
        _array_bytes(table.read_advance_cycles),
        _array_bytes(table.port_map),
    )


def llvm_sim_table_digest(table: "LLVMSimParameterTable") -> str:
    """Content digest of an llvm_sim parameter table."""
    return _digest(
        _array_bytes(table.write_latency),
        _array_bytes(table.port_uops),
    )


def parameter_arrays_digest(arrays: "ParameterArrays") -> str:
    """Content digest of optimization-layout parameter arrays."""
    return _digest(
        struct.pack("<q", arrays.global_values.size),
        _array_bytes(arrays.global_values),
        _array_bytes(arrays.per_instruction_values),
    )


# ----------------------------------------------------------------------
# Bounded caches
# ----------------------------------------------------------------------
class LRUCache:
    """A small least-recently-used mapping with hit/miss accounting."""

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[Any]:
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        value = self.get(key)
        if value is None:
            value = compute()
            self.put(key, value)
        return value

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


# ----------------------------------------------------------------------
# Bound blocks
# ----------------------------------------------------------------------
@dataclass
class MCABoundBlock:
    """A compiled block with llvm-mca parameters gathered for its opcodes.

    ``instructions`` holds, per instruction, the exact record the simulation
    kernel iterates: ``(num_micro_ops, write_latency, read_advance,
    port_cycles, source_ids, destination_ids)``.
    """

    compiled: CompiledBlock
    instructions: List[Tuple[int, int, List[int], List[int],
                             Tuple[int, ...], Tuple[int, ...]]]


def bind_mca_block(table: "MCAParameterTable", compiled: CompiledBlock) -> MCABoundBlock:
    """Gather ``table``'s per-opcode rows for every instruction of ``compiled``."""
    indices = compiled.opcode_indices
    num_micro_ops = table.num_micro_ops[indices].tolist()
    write_latency = table.write_latency[indices].tolist()
    read_advance = table.read_advance_cycles[indices].tolist()
    port_cycles = table.port_map[indices].tolist()
    return MCABoundBlock(
        compiled=compiled,
        instructions=list(zip(num_micro_ops, write_latency, read_advance, port_cycles,
                              compiled.source_ids, compiled.destination_ids)),
    )


@dataclass
class LLVMSimBoundBlock:
    """A compiled block with llvm_sim parameters gathered for its opcodes.

    ``instructions`` holds, per instruction, ``(source_ids, destination_ids,
    write_latency, micro_op_ports)`` where ``micro_op_ports`` lists the
    execution port of each decoded micro-op (``-1`` for the bookkeeping
    micro-op of an instruction whose PortMap row is all zero).
    """

    compiled: CompiledBlock
    instructions: List[Tuple[Tuple[int, ...], Tuple[int, ...], int, List[int]]]


def bind_llvm_sim_block(table: "LLVMSimParameterTable",
                        compiled: CompiledBlock) -> LLVMSimBoundBlock:
    """Gather ``table``'s rows and decode micro-op port sequences."""
    indices = compiled.opcode_indices
    write_latency = table.write_latency[indices].tolist()
    port_rows = table.port_uops[indices]
    port_range = np.arange(port_rows.shape[1], dtype=np.int64)
    instructions: List[Tuple[Tuple[int, ...], Tuple[int, ...], int, List[int]]] = []
    for position in range(compiled.length):
        ports = np.repeat(port_range, port_rows[position]).tolist()
        if not ports:
            ports = [-1]
        instructions.append((compiled.source_ids[position],
                             compiled.destination_ids[position],
                             write_latency[position], ports))
    return LLVMSimBoundBlock(compiled=compiled, instructions=instructions)
