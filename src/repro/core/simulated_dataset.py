"""Collection of the simulated dataset used to train the surrogate.

Following Section III of the paper, the simulated dataset is built by
repeatedly (a) sampling a basic block from the ground-truth dataset,
(b) sampling a parameter table from the field sampling distributions,
(c) instantiating the original simulator with that table, and (d) recording
the simulator's prediction for the block.  The surrogate is then trained to
map ``(parameters, block) -> simulated timing``.

Simulation requests flow through the adapter's shared
:class:`~repro.engine.engine.SimulationEngine`, so block compilations are
reused across all sampled tables and any (table, block) pair already
evaluated elsewhere in the pipeline is served from the engine's result
cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.adapters import SimulatorAdapter
from repro.core.parameters import ParameterArrays
from repro.isa.basic_block import BasicBlock


@dataclass
class SimulatedExample:
    """One ``(parameter table, block, simulated timing)`` triple.

    The parameter table is stored once per sampled table (by reference) and
    shared between the examples generated with it, so memory stays
    proportional to the number of sampled tables rather than examples.
    """

    arrays: ParameterArrays
    block_index: int
    block: BasicBlock
    simulated_timing: float


def collect_simulated_dataset(adapter: SimulatorAdapter, blocks: Sequence[BasicBlock],
                              num_examples: int, rng: np.random.Generator,
                              blocks_per_table: int = 16,
                              progress: Optional[Callable[[int, int], None]] = None,
                              table_sampler: Optional[Callable[[np.random.Generator],
                                                               ParameterArrays]] = None
                              ) -> List[SimulatedExample]:
    """Build the simulated dataset.

    Args:
        adapter: Simulator adapter (defines the sampling distributions and
            runs the original simulator).
        blocks: Ground-truth training blocks to sample from.
        num_examples: Total number of (table, block, timing) examples.
        rng: Random generator for both table and block sampling.
        blocks_per_table: Number of blocks simulated per sampled table.
            Sampling several blocks per table amortizes simulator construction
            without changing the distribution materially (the paper samples a
            fresh table per block; with hundreds of tables the surrogate sees
            comparable parameter diversity).
        progress: Optional callback ``(done, total)`` for long runs.
        table_sampler: Optional override for the table sampling distribution
            (used by the local-refinement rounds to sample near the current
            estimate instead of from the global distribution).

    Returns:
        A list of :class:`SimulatedExample`.
    """
    examples: List[SimulatedExample] = []
    for arrays, block_indices, selected, timings in iter_simulated_rounds(
            adapter, blocks, num_examples, rng, blocks_per_table=blocks_per_table,
            table_sampler=table_sampler):
        for block_index, block, timing in zip(block_indices, selected, timings):
            examples.append(SimulatedExample(arrays=arrays, block_index=int(block_index),
                                             block=block, simulated_timing=float(timing)))
        if progress is not None:
            progress(len(examples), num_examples)
    return examples


def iter_simulated_rounds(adapter: SimulatorAdapter, blocks: Sequence[BasicBlock],
                          num_examples: int, rng: np.random.Generator,
                          blocks_per_table: int = 16,
                          table_sampler: Optional[Callable[[np.random.Generator],
                                                           ParameterArrays]] = None,
                          already_collected: int = 0
                          ) -> Iterator[Tuple[ParameterArrays, np.ndarray,
                                              List[BasicBlock], np.ndarray]]:
    """Stream the simulated dataset one sampled table at a time.

    Yields ``(arrays, block_indices, selected_blocks, timings)`` per sampled
    table, in exactly the order :func:`collect_simulated_dataset` records
    examples.  The rng draw stream is invariant to the engine's round
    grouping: each table draw is followed immediately by its block-index
    draw, and the chunk size depends only on how many examples are planned
    so far — so a run resumed from ``already_collected`` examples (with the
    rng restored to its position at that point) continues bit-identically,
    whatever worker count either run used.

    Args:
        already_collected: Number of examples already produced by a previous
            (checkpointed) run; iteration resumes mid-stream after them.
            Must sit on a table boundary — i.e. be a value some prefix of
            rounds adds up to — which every multiple of ``blocks_per_table``
            (and ``num_examples`` itself) is.
    """
    if num_examples < 1:
        raise ValueError("num_examples must be >= 1")
    if len(blocks) == 0:
        raise ValueError("need at least one block to build the simulated dataset")
    if already_collected < 0 or already_collected > num_examples:
        raise ValueError("already_collected must be within [0, num_examples]")
    spec = adapter.parameter_spec()
    try:
        engine = adapter.engine
    except NotImplementedError:
        engine = None
    # With engine workers configured, tables are drawn in rounds and fanned
    # out across processes.  All rng draws happen in the drawing phase and
    # evaluation consumes none, so the sampled sequence — and therefore the
    # dataset — is identical to the serial path.
    parallel = engine is not None and engine.num_workers > 1
    tables_per_round = engine.num_workers * 2 if parallel else 1

    collected = already_collected
    while collected < num_examples:
        planned = collected
        drawn = []
        while len(drawn) < tables_per_round and planned < num_examples:
            arrays = table_sampler(rng) if table_sampler is not None else spec.sample(rng)
            chunk = min(blocks_per_table, num_examples - planned)
            block_indices = rng.integers(0, len(blocks), size=chunk)
            selected = [blocks[int(index)] for index in block_indices]
            drawn.append((arrays, block_indices, selected))
            planned += chunk
        if parallel and len(drawn) > 1:
            timing_rows = engine.run_pairs(
                [(adapter.native_table(arrays), selected) for arrays, _, selected in drawn])
        else:
            timing_rows = [adapter.predict_timings(arrays, selected)
                           for arrays, _, selected in drawn]
        for (arrays, block_indices, selected), timings in zip(drawn, timing_rows):
            collected += len(block_indices)
            yield arrays, block_indices, selected, np.asarray(timings, dtype=np.float64)


def random_table_errors(adapter: SimulatorAdapter, blocks: Sequence[BasicBlock],
                        true_timings: np.ndarray, num_tables: int,
                        rng: np.random.Generator) -> np.ndarray:
    """Error of randomly sampled parameter tables against the ground truth.

    Reproduces the sanity number from Section V-A: a random table drawn from
    the sampling distribution has error 171.4% ± 95.7% on Haswell.
    """
    spec = adapter.parameter_spec()
    true_timings = np.asarray(true_timings, dtype=np.float64)
    # Sampling draws nothing from ``rng`` between tables, so all candidates
    # can be drawn up front and evaluated through the adapter's batch API
    # (which parallelizes across tables when workers are configured) without
    # changing the sampled sequence.
    candidates = [spec.sample(rng) for _ in range(num_tables)]
    predictions = adapter.predict_timings_batch(candidates, blocks)
    errors = np.mean(np.abs(predictions - true_timings[None, :]) /
                     np.maximum(true_timings, 1e-9)[None, :], axis=1)
    return errors.astype(np.float64)
