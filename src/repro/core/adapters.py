"""Adapters binding the generic DiffTune machinery to concrete simulators.

A :class:`SimulatorAdapter` answers three questions for the optimizer:

1. what is the parameter space? (:meth:`SimulatorAdapter.parameter_spec`)
2. how do optimization arrays become a native parameter table, and how is the
   simulator run with them? (:meth:`SimulatorAdapter.build_simulator` /
   :meth:`SimulatorAdapter.predict_timings`)
3. what are sensible default parameters, for evaluation baselines?
   (:meth:`SimulatorAdapter.default_arrays`)

Two adapters are provided, matching the paper's two evaluation targets:
:class:`MCAAdapter` for the llvm-mca model (Table II parameters) and
:class:`LLVMSimAdapter` for llvm_sim (Table VII parameters).  Both register
:class:`~repro.api.plugins.SimulatorPlugin` records in the
:data:`repro.api.registries.SIMULATORS` registry at import time, which is how
the CLI, the pipeline, and the benchmark harness construct them; third-party
simulators join through the ``repro.simulators`` entry-point group.
"""

from __future__ import annotations

import abc
import functools
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.api.plugins import SimulatorPlugin
from repro.api.registries import SIMULATORS
from repro.core.parameters import (ParameterArrays, ParameterField, ParameterSpec,
                                   PORT_MAP_FIELD_NAME)
from repro.engine.binding import (LRUCache, llvm_sim_table_digest, mca_table_digest,
                                  parameter_arrays_digest)
from repro.engine.engine import DEFAULT_CACHE_SIZE, SimulationEngine
from repro.isa.basic_block import BasicBlock
from repro.isa.opcodes import DEFAULT_OPCODE_TABLE, OpcodeTable
from repro.llvm_mca.params import MCAParameterTable, NUM_PORTS, NUM_READ_ADVANCE_SLOTS
from repro.llvm_mca.simulator import MCASimulator
from repro.llvm_sim.params import LLVMSimParameterTable
from repro.llvm_sim.simulator import LLVMSimSimulator
from repro.targets.defaults import build_default_llvm_sim_table, build_default_mca_table
from repro.targets.uarch import UarchSpec


class SimulatorAdapter(abc.ABC):
    """Interface the DiffTune optimizer and black-box baselines program against."""

    opcode_table: OpcodeTable

    #: Capacity of the per-adapter ``arrays -> native table`` memoization.
    #: Black-box searchers hold a handful of live candidates at a time, so a
    #: small LRU captures nearly every repeat conversion.
    TABLE_CACHE_SIZE = 256

    @abc.abstractmethod
    def parameter_spec(self) -> ParameterSpec:
        """The simulator's parameter-space description."""

    @abc.abstractmethod
    def default_arrays(self) -> ParameterArrays:
        """The expert-provided default parameters, in optimization layout."""

    @abc.abstractmethod
    def predict_timings(self, arrays: ParameterArrays,
                        blocks: Sequence[BasicBlock]) -> np.ndarray:
        """Run the original (non-differentiable) simulator on ``blocks``."""

    def predict_timing(self, arrays: ParameterArrays, block: BasicBlock) -> float:
        return float(self.predict_timings(arrays, [block])[0])

    def predict_timings_batch(self, candidates: Sequence[ParameterArrays],
                              blocks: Sequence[BasicBlock]) -> np.ndarray:
        """Timings of ``blocks`` under every candidate, shape ``(C, B)``.

        Routes through the engine's batch API when the adapter provides one
        — which parallelizes across candidates when workers are configured —
        and falls back to per-candidate :meth:`predict_timings` otherwise.
        """
        blocks = list(blocks)
        try:
            engine = self.engine
        except NotImplementedError:
            if not candidates:
                return np.zeros((0, len(blocks)), dtype=np.float64)
            return np.stack([self.predict_timings(arrays, blocks)
                             for arrays in candidates])
        return engine.run([self.native_table(arrays) for arrays in candidates], blocks)

    # ------------------------------------------------------------------
    # Shared simulation-engine plumbing
    # ------------------------------------------------------------------
    def create_engine(self) -> SimulationEngine:
        """Build the :class:`SimulationEngine` backing :attr:`engine`.

        Engine-backed adapters override this; adapters for custom simulators
        that implement :meth:`predict_timings` directly need not.
        """
        raise NotImplementedError(f"{type(self).__name__} does not provide a simulation engine")

    @property
    def engine(self) -> SimulationEngine:
        """The adapter's lazily constructed, shared simulation engine.

        All ``predict_timings`` traffic of an engine-backed adapter flows
        through this one instance, so block compilations and timing results
        are shared across dataset collection, baseline search, and
        evaluation.
        """
        engine = getattr(self, "_engine", None)
        if engine is None:
            engine = self.create_engine()
            self._engine = engine
        return engine

    def native_table(self, arrays: ParameterArrays):
        """``table_from_arrays`` memoized by the content digest of ``arrays``.

        Searchers re-evaluate the same candidate arrays against different
        block batches constantly; rebuilding the full native table on every
        call was pure waste.  Requires the adapter to define
        ``table_from_arrays`` (both built-in adapters do).
        """
        cache = getattr(self, "_native_table_cache", None)
        if cache is None:
            cache = LRUCache(self.TABLE_CACHE_SIZE)
            self._native_table_cache = cache
        digest = parameter_arrays_digest(arrays)
        table = cache.get(digest)
        if table is None:
            table = self.table_from_arrays(arrays)
            cache.put(digest, table)
        return table

    def freeze_unlearned_fields(self, arrays: ParameterArrays) -> ParameterArrays:
        """Replace fields that are not being learned with their default values.

        The base implementation is the identity (everything is learned).
        Adapters that support partial learning override this so that sampled
        tables — and therefore the surrogate's training inputs — agree with
        what the simulator will actually be run with.
        """
        return arrays

    def unlearned_dimension_masks(self):
        """Boolean masks over (per-instruction, global) dimensions that are frozen.

        Returns ``(None, None)`` when every parameter is learned.  The phase-2
        optimizer holds masked dimensions at their initial values.
        """
        return None, None


class MCAAdapter(SimulatorAdapter):
    """Adapter for the llvm-mca style simulator (Table II parameter set)."""

    def __init__(self, uarch: UarchSpec, opcode_table: Optional[OpcodeTable] = None,
                 learn_fields: Optional[Sequence[str]] = None,
                 narrow_sampling: bool = False,
                 engine_cache_size: int = DEFAULT_CACHE_SIZE,
                 engine_workers: int = 0,
                 engine_megabatch: bool = True) -> None:
        """Create an adapter.

        Args:
            uarch: Target microarchitecture (supplies the default table).
            opcode_table: Opcode universe.
            learn_fields: Optional subset of per-instruction field names to
                learn; fields not listed are frozen at their default values
                (used for the WriteLatency-only experiment of Section VI-B).
                ``None`` learns everything.
            narrow_sampling: Use tighter parameter sampling ranges
                (NumMicroOps 1–4, PortMap cycles 0–1, DispatchWidth 1–6).
                The paper's wider ranges (Section V-A) assume a surrogate
                trained on millions of examples; at this reproduction's scale
                the tighter — still expert-value-free — prior keeps the
                optimization well inside the region the surrogate models.
                Section VII of the paper discusses exactly this sensitivity
                to the sampling distributions.
            engine_cache_size: Capacity of the engine's timing result cache.
            engine_workers: Opt-in process fan-out for batched table
                evaluation (``0`` = serial; see
                :class:`~repro.engine.engine.SimulationEngine`).
            engine_megabatch: Execute cache misses through the vectorized
                megabatch kernel (bit-identical; ``False`` restores the
                per-block scalar path).
        """
        self.uarch = uarch
        self.opcode_table = opcode_table or DEFAULT_OPCODE_TABLE
        self.learn_fields = set(learn_fields) if learn_fields is not None else None
        self.narrow_sampling = narrow_sampling
        self.engine_cache_size = engine_cache_size
        self.engine_workers = engine_workers
        self.engine_megabatch = engine_megabatch
        self._default_table = build_default_mca_table(uarch, self.opcode_table)
        self._spec = self._build_spec()

    def _build_spec(self) -> ParameterSpec:
        if self.narrow_sampling:
            uops_high, port_high, dispatch_high = 4, 1, 6
        else:
            uops_high, port_high, dispatch_high = 10, 2, 10
        global_fields = [
            ParameterField("DispatchWidth", 1, lower_bound=1, integer=True,
                           sample_low=1, sample_high=dispatch_high),
            ParameterField("ReorderBufferSize", 1, lower_bound=1, integer=True,
                           sample_low=50, sample_high=250),
        ]
        per_instruction_fields = [
            ParameterField("NumMicroOps", 1, lower_bound=1, integer=True,
                           sample_low=1, sample_high=uops_high),
            ParameterField("WriteLatency", 1, lower_bound=0, integer=True,
                           sample_low=0, sample_high=5),
            ParameterField("ReadAdvanceCycles", NUM_READ_ADVANCE_SLOTS, lower_bound=0,
                           integer=True, sample_low=0, sample_high=5),
            ParameterField(PORT_MAP_FIELD_NAME, NUM_PORTS, lower_bound=0, integer=True,
                           sample_low=0, sample_high=port_high),
        ]
        return ParameterSpec(global_fields, per_instruction_fields,
                             num_opcodes=len(self.opcode_table))

    # ------------------------------------------------------------------
    # SimulatorAdapter interface
    # ------------------------------------------------------------------
    def parameter_spec(self) -> ParameterSpec:
        return self._spec

    def default_table(self) -> MCAParameterTable:
        return self._default_table.copy()

    def default_arrays(self) -> ParameterArrays:
        return self.arrays_from_table(self._default_table)

    def arrays_from_table(self, table: MCAParameterTable) -> ParameterArrays:
        """Convert a native table to optimization layout."""
        per_instruction = np.concatenate([
            table.num_micro_ops.astype(np.float64)[:, None],
            table.write_latency.astype(np.float64)[:, None],
            table.read_advance_cycles.astype(np.float64),
            table.port_map.astype(np.float64),
        ], axis=1)
        global_values = np.array([table.dispatch_width, table.reorder_buffer_size],
                                 dtype=np.float64)
        return ParameterArrays(global_values=global_values,
                               per_instruction_values=per_instruction)

    def table_from_arrays(self, arrays: ParameterArrays) -> MCAParameterTable:
        """Convert optimization-layout values into a native (valid) table.

        Values are clipped to their lower bounds and rounded; fields excluded
        from ``learn_fields`` are restored from the default table.
        """
        spec = self._spec
        clipped = spec.round_to_integers(spec.clip_to_bounds(arrays))
        per = clipped.per_instruction_values
        table = self._default_table.copy()
        dispatch, reorder = clipped.global_values[:2]
        learn_all = self.learn_fields is None

        def learning(name: str) -> bool:
            return learn_all or name in self.learn_fields

        if learning("DispatchWidth"):
            table.dispatch_width = int(max(1, round(dispatch)))
        if learning("ReorderBufferSize"):
            table.reorder_buffer_size = int(max(1, round(reorder)))
        if learning("NumMicroOps"):
            table.num_micro_ops = np.maximum(
                np.round(per[:, spec.per_instruction_field_slice("NumMicroOps")]).astype(np.int64),
                1).reshape(-1)
        if learning("WriteLatency"):
            table.write_latency = np.maximum(
                np.round(per[:, spec.per_instruction_field_slice("WriteLatency")]).astype(np.int64),
                0).reshape(-1)
        if learning("ReadAdvanceCycles"):
            table.read_advance_cycles = np.maximum(
                np.round(per[:, spec.per_instruction_field_slice("ReadAdvanceCycles")]).astype(np.int64),
                0)
        if learning(PORT_MAP_FIELD_NAME):
            table.port_map = np.maximum(
                np.round(per[:, spec.per_instruction_field_slice(PORT_MAP_FIELD_NAME)]).astype(np.int64),
                0)
        table.validate()
        return table

    def freeze_unlearned_fields(self, arrays: ParameterArrays) -> ParameterArrays:
        if self.learn_fields is None:
            return arrays
        spec = self._spec
        default = self.default_arrays()
        frozen = arrays.copy()
        for field_ in spec.per_instruction_fields:
            if field_.name not in self.learn_fields:
                field_slice = spec.per_instruction_field_slice(field_.name)
                frozen.per_instruction_values[:, field_slice] = \
                    default.per_instruction_values[:, field_slice]
        for field_ in spec.global_fields:
            if field_.name not in self.learn_fields:
                field_slice = spec.global_field_slice(field_.name)
                frozen.global_values[field_slice] = default.global_values[field_slice]
        return frozen

    def unlearned_dimension_masks(self):
        if self.learn_fields is None:
            return None, None
        spec = self._spec
        per_mask = np.zeros(spec.per_instruction_dim, dtype=bool)
        for field_ in spec.per_instruction_fields:
            if field_.name not in self.learn_fields:
                per_mask[spec.per_instruction_field_slice(field_.name)] = True
        global_mask = np.zeros(spec.global_dim, dtype=bool)
        for field_ in spec.global_fields:
            if field_.name not in self.learn_fields:
                global_mask[spec.global_field_slice(field_.name)] = True
        return per_mask, global_mask

    def simulator_factory(self) -> Callable[[MCAParameterTable], MCASimulator]:
        """Picklable ``table -> simulator`` used by the engine *and*
        :meth:`build_simulator`; override to customize simulator
        construction (warmup/measure windows, instruction caps) for both
        paths at once."""
        return MCASimulator

    def build_simulator(self, arrays: ParameterArrays) -> MCASimulator:
        return self.simulator_factory()(self.table_from_arrays(arrays))

    def create_engine(self) -> SimulationEngine:
        return SimulationEngine(self.simulator_factory(), mca_table_digest,
                                cache_size=self.engine_cache_size,
                                num_workers=self.engine_workers,
                                megabatch=self.engine_megabatch)

    def predict_timings(self, arrays: ParameterArrays,
                        blocks: Sequence[BasicBlock]) -> np.ndarray:
        return self.engine.run_one(self.native_table(arrays), blocks)


def _set_dispatch_width(table: MCAParameterTable, value: int) -> None:
    table.dispatch_width = max(1, int(value))


def _set_reorder_buffer_size(table: MCAParameterTable, value: int) -> None:
    table.reorder_buffer_size = max(1, int(value))


def _set_mca_write_latency(table: MCAParameterTable, opcode_index: int,
                           value: int) -> None:
    table.write_latency[opcode_index] = max(0, int(value))


def _set_mca_num_micro_ops(table: MCAParameterTable, opcode_index: int,
                           value: int) -> None:
    table.num_micro_ops[opcode_index] = max(1, int(value))


def _set_mca_port_map(table: MCAParameterTable, opcode_index: int, port: int,
                      value: int) -> None:
    table.port_map[opcode_index, port] = max(0, int(value))


_set_mca_port_map.accepts_port = True
_set_mca_port_map.num_ports = NUM_PORTS


def _mca_timeline_view(table: MCAParameterTable):
    from repro.llvm_mca.timeline import TimelineView

    return TimelineView(table)


def _mca_engine_factory(num_workers: int = 0, megabatch: bool = True):
    from repro.engine.factories import mca_engine

    return mca_engine(num_workers=num_workers, megabatch=megabatch)


class LLVMSimAdapter(SimulatorAdapter):
    """Adapter for the llvm_sim model (Table VII parameter set)."""

    def __init__(self, uarch: UarchSpec, opcode_table: Optional[OpcodeTable] = None,
                 engine_cache_size: int = DEFAULT_CACHE_SIZE,
                 engine_workers: int = 0,
                 engine_megabatch: bool = True) -> None:
        self.uarch = uarch
        self.opcode_table = opcode_table or DEFAULT_OPCODE_TABLE
        self.engine_cache_size = engine_cache_size
        self.engine_workers = engine_workers
        self.engine_megabatch = engine_megabatch
        self._default_table = build_default_llvm_sim_table(uarch, self.opcode_table)
        self._spec = ParameterSpec(
            global_fields=[],
            per_instruction_fields=[
                ParameterField("WriteLatency", 1, lower_bound=0, integer=True,
                               sample_low=0, sample_high=5),
                ParameterField(PORT_MAP_FIELD_NAME, NUM_PORTS, lower_bound=0, integer=True,
                               sample_low=0, sample_high=2),
            ],
            num_opcodes=len(self.opcode_table))

    def parameter_spec(self) -> ParameterSpec:
        return self._spec

    def default_table(self) -> LLVMSimParameterTable:
        return self._default_table.copy()

    def default_arrays(self) -> ParameterArrays:
        return self.arrays_from_table(self._default_table)

    def arrays_from_table(self, table: LLVMSimParameterTable) -> ParameterArrays:
        per_instruction = np.concatenate([
            table.write_latency.astype(np.float64)[:, None],
            table.port_uops.astype(np.float64),
        ], axis=1)
        return ParameterArrays(global_values=np.zeros(0),
                               per_instruction_values=per_instruction)

    def table_from_arrays(self, arrays: ParameterArrays) -> LLVMSimParameterTable:
        spec = self._spec
        clipped = spec.round_to_integers(spec.clip_to_bounds(arrays))
        per = clipped.per_instruction_values
        write_latency = np.maximum(
            np.round(per[:, spec.per_instruction_field_slice("WriteLatency")]).astype(np.int64),
            0).reshape(-1)
        port_uops = np.maximum(
            np.round(per[:, spec.per_instruction_field_slice(PORT_MAP_FIELD_NAME)]).astype(np.int64),
            0)
        return LLVMSimParameterTable(opcode_table=self.opcode_table,
                                     write_latency=write_latency, port_uops=port_uops)

    def simulator_factory(self) -> Callable[[LLVMSimParameterTable], LLVMSimSimulator]:
        """Picklable ``table -> simulator`` shared by the engine and
        :meth:`build_simulator` (see :meth:`MCAAdapter.simulator_factory`)."""
        return functools.partial(LLVMSimSimulator,
                                 frontend_uops_per_cycle=self.uarch.dispatch_width)

    def build_simulator(self, arrays: ParameterArrays) -> LLVMSimSimulator:
        return self.simulator_factory()(self.table_from_arrays(arrays))

    def create_engine(self) -> SimulationEngine:
        return SimulationEngine(self.simulator_factory(), llvm_sim_table_digest,
                                cache_size=self.engine_cache_size,
                                num_workers=self.engine_workers,
                                megabatch=self.engine_megabatch)

    def predict_timings(self, arrays: ParameterArrays,
                        blocks: Sequence[BasicBlock]) -> np.ndarray:
        return self.engine.run_one(self.native_table(arrays), blocks)


# ----------------------------------------------------------------------
# Registry entries (see repro.api)
# ----------------------------------------------------------------------
def _llvm_sim_adapter_factory(uarch: UarchSpec, *,
                              opcode_table: Optional[OpcodeTable] = None,
                              narrow_sampling: bool = True,
                              learn_fields: Optional[Sequence[str]] = None,
                              engine_cache_size: int = DEFAULT_CACHE_SIZE,
                              engine_workers: int = 0,
                              engine_megabatch: bool = True) -> LLVMSimAdapter:
    """Uniform-signature factory for :class:`LLVMSimAdapter`.

    ``narrow_sampling`` is accepted and ignored — llvm_sim's sampling ranges
    are already the narrow ones.  Partial learning is not supported by this
    parameter set, so ``learn_fields`` raises.
    """
    if learn_fields is not None:
        raise ValueError("the llvm_sim simulator learns its full parameter set; "
                         "learn_fields is not supported (use simulator 'mca')")
    return LLVMSimAdapter(uarch, opcode_table=opcode_table,
                          engine_cache_size=engine_cache_size,
                          engine_workers=engine_workers,
                          engine_megabatch=engine_megabatch)


def _llvm_sim_engine_factory(num_workers: int = 0, megabatch: bool = True):
    from repro.engine.factories import llvm_sim_engine

    return llvm_sim_engine(num_workers=num_workers, megabatch=megabatch)


def _set_llvm_sim_write_latency(table: LLVMSimParameterTable, opcode_index: int,
                                value: int) -> None:
    table.write_latency[opcode_index] = max(0, int(value))


def _set_llvm_sim_port_uops(table: LLVMSimParameterTable, opcode_index: int,
                            port: int, value: int) -> None:
    table.port_uops[opcode_index, port] = max(0, int(value))


_set_llvm_sim_port_uops.accepts_port = True
_set_llvm_sim_port_uops.num_ports = NUM_PORTS


SIMULATORS.register(
    "mca",
    SimulatorPlugin(
        name="mca",
        summary="llvm-mca style out-of-order model (Table II parameter set)",
        adapter_factory=MCAAdapter,
        load_table=MCAParameterTable.load_json,
        engine_factory=_mca_engine_factory,
        timeline_factory=_mca_timeline_view,
        sweep_fields={"DispatchWidth": _set_dispatch_width,
                      "ReorderBufferSize": _set_reorder_buffer_size},
        opcode_sweep_fields={"WriteLatency": _set_mca_write_latency,
                             "NumMicroOps": _set_mca_num_micro_ops,
                             "PortMap": _set_mca_port_map},
        supports_megabatch=True,
    ),
    aliases=("llvm-mca", "llvm_mca"))

SIMULATORS.register(
    "llvm_sim",
    SimulatorPlugin(
        name="llvm_sim",
        summary="llvm_sim style in-order-frontend model (Table VII parameter set)",
        adapter_factory=_llvm_sim_adapter_factory,
        load_table=LLVMSimParameterTable.load_json,
        engine_factory=_llvm_sim_engine_factory,
        opcode_sweep_fields={"WriteLatency": _set_llvm_sim_write_latency,
                             "PortMap": _set_llvm_sim_port_uops},
        supports_partial_learning=False,
        supports_megabatch=True,
    ),
    aliases=("llvm-sim", "llvmsim"))
