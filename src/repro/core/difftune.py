"""The end-to-end DiffTune driver.

Ties the four stages of Figure 1 together:

1. collect the ground-truth dataset (provided by the caller, usually a
   :class:`~repro.bhive.dataset.BasicBlockDataset`);
2. collect the simulated dataset by running the original simulator with
   sampled parameter tables;
3. train the differentiable surrogate on the simulated dataset;
4. train the parameter table against the ground truth through the frozen
   surrogate, then extract the learned table back into the simulator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.adapters import SimulatorAdapter
from repro.core.extraction import extract_parameter_arrays
from repro.core.losses import mape_loss_value
from repro.core.parameters import ParameterArrays
from repro.core.simulated_dataset import SimulatedExample, collect_simulated_dataset
from repro.core.surrogate import BlockFeaturizer, SurrogateConfig, build_surrogate
from repro.core.surrogate_training import (SurrogateTrainingConfig, SurrogateTrainingResult,
                                           evaluate_surrogate, train_surrogate)
from repro.core.table_optimization import (TableOptimizationConfig, TableOptimizationResult,
                                           optimize_parameter_table)
from repro.isa.basic_block import BasicBlock


@dataclass
class DiffTuneConfig:
    """All hyper-parameters of a DiffTune run.

    ``refinement_rounds`` enables iterative local-surrogate refinement: after
    the initial (global-distribution) run, additional rounds re-collect a
    simulated dataset sampled *near* the current parameter estimate, fine-tune
    the surrogate on it, and re-optimize the table starting from the current
    estimate.  This is the strategy the paper points to (Shirobokov et al.) for
    keeping the surrogate accurate in the region the optimizer actually visits;
    at this reproduction's reduced scale it is what makes learned tables
    consistently competitive with the expert defaults.
    """

    surrogate: SurrogateConfig = field(default_factory=SurrogateConfig)
    surrogate_training: SurrogateTrainingConfig = field(default_factory=SurrogateTrainingConfig)
    table_optimization: TableOptimizationConfig = field(default_factory=TableOptimizationConfig)
    simulated_dataset_size: int = 2000
    blocks_per_table: int = 16
    refinement_rounds: int = 0
    refinement_dataset_size: int = 1500
    refinement_spread: float = 0.25
    refinement_epochs: int = 2
    seed: int = 0


@dataclass
class DiffTuneResult:
    """Everything produced by one DiffTune run."""

    learned_arrays: ParameterArrays
    surrogate_result: SurrogateTrainingResult
    table_result: TableOptimizationResult
    simulated_dataset_size: int
    train_error: float
    elapsed_seconds: float


class DiffTune:
    """Learns a simulator's parameters from end-to-end measurements."""

    def __init__(self, adapter: SimulatorAdapter, config: Optional[DiffTuneConfig] = None,
                 log: Optional[Callable[[str], None]] = None) -> None:
        self.adapter = adapter
        self.config = config or DiffTuneConfig()
        self.featurizer = BlockFeaturizer(adapter.opcode_table)
        self._log = log or (lambda message: None)

    # ------------------------------------------------------------------
    # Individual stages (exposed for tests and ablations)
    # ------------------------------------------------------------------
    def collect_simulated_dataset(self, blocks: Sequence[BasicBlock],
                                  rng: np.random.Generator) -> List[SimulatedExample]:
        self._log(f"collecting simulated dataset ({self.config.simulated_dataset_size} examples)")
        spec = self.adapter.parameter_spec()
        examples = collect_simulated_dataset(
            self.adapter, blocks, self.config.simulated_dataset_size, rng,
            blocks_per_table=self.config.blocks_per_table,
            table_sampler=lambda generator: self.adapter.freeze_unlearned_fields(
                spec.sample(generator)))
        self._log_engine_stats()
        return examples

    def _log_engine_stats(self) -> None:
        """Report the shared engine's cache behaviour (engine-backed adapters)."""
        try:
            stats = self.adapter.engine.stats
        except NotImplementedError:
            return
        self._log(f"engine: {stats['executed']} simulations, "
                  f"{stats['result_hits']} cache hits, "
                  f"{stats['compile_misses']} blocks compiled "
                  f"(reused {stats['compile_hits']} times)")

    def build_surrogate(self):
        return build_surrogate(self.adapter.parameter_spec(), self.featurizer,
                               self.config.surrogate)

    # ------------------------------------------------------------------
    # End-to-end run
    # ------------------------------------------------------------------
    def learn(self, blocks: Sequence[BasicBlock], true_timings: np.ndarray,
              simulated_examples: Optional[Sequence[SimulatedExample]] = None
              ) -> DiffTuneResult:
        """Run DiffTune end to end on a ground-truth training set.

        Args:
            blocks: Training basic blocks.
            true_timings: Measured timings aligned with ``blocks``.
            simulated_examples: Optionally a pre-collected simulated dataset
                (used by tests and by experiments that reuse one simulated
                dataset across ablations).
        """
        start_time = time.time()
        true_timings = np.asarray(true_timings, dtype=np.float64)
        if len(blocks) != len(true_timings):
            raise ValueError("blocks and true_timings must be aligned")
        rng = np.random.default_rng(self.config.seed)

        if simulated_examples is None:
            simulated_examples = self.collect_simulated_dataset(blocks, rng)

        surrogate = self.build_surrogate()
        self._log(f"training surrogate on {len(simulated_examples)} simulated examples")
        surrogate_result = train_surrogate(surrogate, simulated_examples,
                                           self.config.surrogate_training)
        self._log(f"surrogate training error: {surrogate_result.final_training_error:.3f}")

        self._log("optimizing the parameter table through the frozen surrogate")
        spec = self.adapter.parameter_spec()
        per_mask, global_mask = self.adapter.unlearned_dimension_masks()
        initial_arrays = self.adapter.freeze_unlearned_fields(spec.sample(rng))
        table_result = optimize_parameter_table(surrogate, blocks, true_timings,
                                                self.config.table_optimization,
                                                initial_arrays=initial_arrays,
                                                frozen_per_instruction_mask=per_mask,
                                                frozen_global_mask=global_mask)
        learned_arrays = extract_parameter_arrays(self.adapter.parameter_spec(),
                                                  table_result.learned_arrays)
        predictions = self.adapter.predict_timings(learned_arrays, blocks)
        train_error = mape_loss_value(predictions, true_timings)
        self._log(f"round 0 learned-table training error: {train_error:.3f}")

        best_arrays, best_error = learned_arrays, train_error
        for round_index in range(self.config.refinement_rounds):
            self._log(f"refinement round {round_index + 1}: resampling near the estimate")
            local_examples = collect_simulated_dataset(
                self.adapter, blocks, self.config.refinement_dataset_size, rng,
                blocks_per_table=self.config.blocks_per_table,
                table_sampler=lambda generator: self.adapter.freeze_unlearned_fields(
                    spec.sample_near(best_arrays, generator, self.config.refinement_spread)))
            refinement_training = SurrogateTrainingConfig(
                learning_rate=self.config.surrogate_training.learning_rate,
                batch_size=self.config.surrogate_training.batch_size,
                epochs=self.config.refinement_epochs,
                gradient_clip=self.config.surrogate_training.gradient_clip,
                seed=self.config.surrogate_training.seed + round_index + 1,
                log_every=self.config.surrogate_training.log_every,
                batched=self.config.surrogate_training.batched)
            surrogate_result = train_surrogate(surrogate, local_examples, refinement_training)
            self._log(f"refined surrogate error: {surrogate_result.final_training_error:.3f}")
            table_result = optimize_parameter_table(
                surrogate, blocks, true_timings, self.config.table_optimization,
                initial_arrays=best_arrays,
                frozen_per_instruction_mask=per_mask,
                frozen_global_mask=global_mask)
            candidate = extract_parameter_arrays(spec, table_result.learned_arrays)
            candidate_error = mape_loss_value(
                self.adapter.predict_timings(candidate, blocks), true_timings)
            self._log(f"refinement round {round_index + 1} training error: "
                      f"{candidate_error:.3f}")
            if candidate_error < best_error:
                best_arrays, best_error = candidate, candidate_error

        learned_arrays, train_error = best_arrays, best_error
        elapsed = time.time() - start_time
        self._log(f"learned-table training error: {train_error:.3f} "
                  f"({elapsed:.1f}s end to end)")
        return DiffTuneResult(learned_arrays=learned_arrays,
                              surrogate_result=surrogate_result,
                              table_result=table_result,
                              simulated_dataset_size=len(simulated_examples),
                              train_error=train_error,
                              elapsed_seconds=elapsed)

    # ------------------------------------------------------------------
    # Evaluation helpers
    # ------------------------------------------------------------------
    def evaluate(self, arrays: ParameterArrays, blocks: Sequence[BasicBlock],
                 true_timings: np.ndarray) -> float:
        """MAPE of the original simulator under ``arrays`` on a dataset."""
        predictions = self.adapter.predict_timings(arrays, blocks)
        return mape_loss_value(predictions, np.asarray(true_timings, dtype=np.float64))
