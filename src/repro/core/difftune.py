"""The end-to-end DiffTune driver.

Ties the four stages of Figure 1 together:

1. collect the ground-truth dataset (provided by the caller, usually a
   :class:`~repro.bhive.dataset.BasicBlockDataset`);
2. collect the simulated dataset by running the original simulator with
   sampled parameter tables;
3. train the differentiable surrogate on the simulated dataset;
4. train the parameter table against the ground truth through the frozen
   surrogate, then extract the learned table back into the simulator.

The stages themselves live in :mod:`repro.pipeline` — an orchestrated,
per-stage-checkpointable pipeline — and :class:`DiffTune` is the thin,
stable API over it.  Passing ``checkpoint_dir`` persists every completed
stage; ``resume=True`` then picks the run up at the first incomplete stage
and reproduces an uninterrupted run bit for bit (the pipeline snapshots the
random stream between stages).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.adapters import SimulatorAdapter
from repro.core.losses import mape_loss_value
from repro.core.parameters import ParameterArrays
from repro.core.simulated_dataset import SimulatedExample
from repro.core.surrogate import BlockFeaturizer, SurrogateConfig, build_surrogate
from repro.core.surrogate_training import SurrogateTrainingConfig, SurrogateTrainingResult
from repro.core.table_optimization import TableOptimizationConfig, TableOptimizationResult
from repro.isa.basic_block import BasicBlock


@dataclass
class DiffTuneConfig:
    """All hyper-parameters of a DiffTune run.

    ``refinement_rounds`` enables iterative local-surrogate refinement: after
    the initial (global-distribution) run, additional rounds re-collect a
    simulated dataset sampled *near* the current parameter estimate, fine-tune
    the surrogate on it, and re-optimize the table starting from the current
    estimate.  This is the strategy the paper points to (Shirobokov et al.) for
    keeping the surrogate accurate in the region the optimizer actually visits;
    at this reproduction's reduced scale it is what makes learned tables
    consistently competitive with the expert defaults.
    """

    surrogate: SurrogateConfig = field(default_factory=SurrogateConfig)
    surrogate_training: SurrogateTrainingConfig = field(default_factory=SurrogateTrainingConfig)
    table_optimization: TableOptimizationConfig = field(default_factory=TableOptimizationConfig)
    simulated_dataset_size: int = 2000
    blocks_per_table: int = 16
    refinement_rounds: int = 0
    refinement_dataset_size: int = 1500
    refinement_spread: float = 0.25
    refinement_epochs: int = 2
    seed: int = 0


@dataclass
class DiffTuneResult:
    """Everything produced by one DiffTune run."""

    learned_arrays: ParameterArrays
    surrogate_result: SurrogateTrainingResult
    table_result: TableOptimizationResult
    simulated_dataset_size: int
    train_error: float
    elapsed_seconds: float
    #: Stage names served from checkpoints instead of executed (empty for
    #: non-resumed runs).
    resumed_stages: List[str] = field(default_factory=list)
    #: The trained surrogate module (what a deployment bundle embeds).
    surrogate: Optional[object] = None


class DiffTune:
    """Learns a simulator's parameters from end-to-end measurements."""

    def __init__(self, adapter: SimulatorAdapter, config: Optional[DiffTuneConfig] = None,
                 log: Optional[Callable[[str], None]] = None) -> None:
        self.adapter = adapter
        self.config = config or DiffTuneConfig()
        self.featurizer = BlockFeaturizer(adapter.opcode_table)
        self._log = log or (lambda message: None)

    # ------------------------------------------------------------------
    # Individual stages (exposed for tests and ablations)
    # ------------------------------------------------------------------
    def collect_simulated_dataset(self, blocks: Sequence[BasicBlock],
                                  rng: np.random.Generator) -> List[SimulatedExample]:
        from repro.pipeline.stages import collect_examples

        self._log(f"collecting simulated dataset ({self.config.simulated_dataset_size} examples)")
        examples = collect_examples(self.adapter, self.config, blocks, rng)
        self._log_engine_stats()
        return examples

    def _log_engine_stats(self) -> None:
        """Report the shared engine's cache behaviour (engine-backed adapters)."""
        try:
            stats = self.adapter.engine.stats
        except NotImplementedError:
            return
        self._log(f"engine: {stats['executed']} simulations, "
                  f"{stats['result_hits']} cache hits, "
                  f"{stats['compile_misses']} blocks compiled "
                  f"(reused {stats['compile_hits']} times)")

    def build_surrogate(self):
        return build_surrogate(self.adapter.parameter_spec(), self.featurizer,
                               self.config.surrogate)

    def pipeline(self, checkpoint_dir: Optional[str] = None,
                 featurization_store=None):
        """The underlying :class:`~repro.pipeline.pipeline.TuningPipeline`.

        Imported lazily: :mod:`repro.pipeline` itself imports ``repro.core``
        submodules, and the runtime import keeps either package safely
        importable first.
        """
        from repro.pipeline.pipeline import TuningPipeline

        return TuningPipeline(self.adapter, self.config, log=self._log,
                              featurizer=self.featurizer,
                              checkpoint_dir=checkpoint_dir,
                              featurization_store=featurization_store)

    # ------------------------------------------------------------------
    # End-to-end run
    # ------------------------------------------------------------------
    def learn(self, blocks: Sequence[BasicBlock], true_timings: np.ndarray,
              simulated_examples: Optional[Sequence[SimulatedExample]] = None,
              checkpoint_dir: Optional[str] = None, resume: bool = False,
              stop_after: Optional[str] = None,
              featurization_store=None) -> Optional[DiffTuneResult]:
        """Run DiffTune end to end on a ground-truth training set.

        Args:
            blocks: Training basic blocks.
            true_timings: Measured timings aligned with ``blocks``.
            simulated_examples: Optionally a pre-collected simulated dataset
                (used by tests and by experiments that reuse one simulated
                dataset across ablations).
            checkpoint_dir: Persist every completed stage's artifacts here.
            resume: Restore completed stages from ``checkpoint_dir`` and
                continue at the first incomplete one.  A resumed run yields
                a bit-identical result to an uninterrupted run.
            stop_after: Stop once the named stage has completed (and been
                checkpointed).  Returns ``None`` when the run stops before
                the final stage — resume later to finish it.
            featurization_store: Optional
                :class:`~repro.corpus.store.ShardedFeaturizationStore`
                serving memory-mapped per-block arrays to surrogate training
                (corpus-backed runs only).
        """
        start_time = time.time()
        true_timings = np.asarray(true_timings, dtype=np.float64)
        if len(blocks) != len(true_timings):
            raise ValueError("blocks and true_timings must be aligned")
        state = self.pipeline(checkpoint_dir,
                              featurization_store=featurization_store).run(
            blocks, true_timings, simulated_examples=simulated_examples,
            resume=resume, stop_after=stop_after)
        if state.learned_arrays is None:
            self._log(f"run stopped after stage '{stop_after}'; "
                      f"resume from {checkpoint_dir} to finish it")
            return None
        elapsed = time.time() - start_time
        self._log(f"learned-table training error: {state.train_error:.3f} "
                  f"({elapsed:.1f}s end to end)")
        return DiffTuneResult(learned_arrays=state.learned_arrays,
                              surrogate_result=state.surrogate_result,
                              table_result=state.table_result,
                              simulated_dataset_size=len(state.simulated_examples),
                              train_error=state.train_error,
                              elapsed_seconds=elapsed,
                              resumed_stages=list(state.resumed_stages),
                              surrogate=state.surrogate)

    # ------------------------------------------------------------------
    # Evaluation helpers
    # ------------------------------------------------------------------
    def evaluate(self, arrays: ParameterArrays, blocks: Sequence[BasicBlock],
                 true_timings: np.ndarray) -> float:
        """MAPE of the original simulator under ``arrays`` on a dataset."""
        predictions = self.adapter.predict_timings(arrays, blocks)
        return mape_loss_value(predictions, np.asarray(true_timings, dtype=np.float64))
