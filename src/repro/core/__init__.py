"""DiffTune core: learning simulator parameters via differentiable surrogates.

This package implements the paper's primary contribution (Section III–IV):

1. :mod:`~repro.core.parameters` — a generic description of a simulator's
   ordinal parameter space (global + per-instruction fields, lower bounds,
   integer constraints, sampling distributions).
2. :mod:`~repro.core.adapters` — adapters binding that description to the
   concrete simulators (llvm-mca and llvm_sim), including conversion between
   optimization arrays and native parameter tables.
3. :mod:`~repro.core.simulated_dataset` — collection of the
   ``(parameters, block, simulated timing)`` dataset used to train the
   surrogate.
4. :mod:`~repro.core.surrogate` — the differentiable surrogate models: the
   Ithemal-style stacked-LSTM surrogate from the paper and a faster pooled
   variant for CPU-budget experiments.
5. :mod:`~repro.core.surrogate_training` / :mod:`~repro.core.table_optimization`
   — the two gradient-based optimization phases (Equations 2 and 3).
6. :mod:`~repro.core.extraction` — mapping learned continuous values back to
   valid integer parameter tables.
7. :mod:`~repro.core.difftune` — the end-to-end driver.

.. deprecated::
    Constructing components directly from this package root
    (``repro.core.DiffTune``, ``repro.core.MCAAdapter``, config presets) is
    deprecated in favour of the registry-driven facade in :mod:`repro.api`
    (``Session.from_spec(...)``); the old names keep working for one release
    and emit :class:`DeprecationWarning`.  Library-internal code imports the
    defining submodules (``repro.core.difftune`` etc.), which stay
    warning-free and are not deprecated.
"""

import importlib
import warnings

from repro.core.parameters import (ParameterField, ParameterSpec, ParameterArrays,
                                   PORT_MAP_FIELD_NAME)
from repro.core.categorical import (CategoricalField, CategoricalRelaxation,
                                    CategoricalTable)
from repro.core.constraints import (BoundConstraint, Constraint, ConstraintSet,
                                    ConstraintViolation, LessEqualConstraint,
                                    RelationConstraint, SumAtMostConstraint)
from repro.core.surrogate import (SurrogateConfig, BlockFeaturizer, FeaturizationCache,
                                  IthemalSurrogate, PackedBlockBatch, PooledSurrogate,
                                  build_surrogate)
from repro.core.simulated_dataset import SimulatedExample, collect_simulated_dataset
from repro.core.losses import mape_loss_value, surrogate_loss
from repro.core.surrogate_training import (SurrogateTrainingConfig, evaluate_surrogate,
                                           train_surrogate)
from repro.core.table_optimization import TableOptimizationConfig, optimize_parameter_table
from repro.core.extraction import extract_parameter_arrays

#: Package-root names now served through :func:`__getattr__` with a
#: :class:`DeprecationWarning`: name -> (defining module, replacement hint).
_DEPRECATED_ROOT_NAMES = {
    "SimulatorAdapter": ("repro.core.adapters", "repro.api (SIMULATORS registry)"),
    "MCAAdapter": ("repro.core.adapters",
                   "repro.api.Session / repro.api.SIMULATORS.get('mca')"),
    "LLVMSimAdapter": ("repro.core.adapters",
                       "repro.api.Session / repro.api.SIMULATORS.get('llvm_sim')"),
    "DiffTune": ("repro.core.difftune", "repro.api.Session.tune"),
    "DiffTuneConfig": ("repro.core.difftune", "repro.api.TuneSpec"),
    "DiffTuneResult": ("repro.core.difftune", "repro.api.SessionTuneResult"),
    "fast_config": ("repro.core.config", "repro.api.PRESETS.get('fast')"),
    "paper_config": ("repro.core.config", "repro.api.PRESETS.get('paper')"),
    "test_config": ("repro.core.config", "repro.api.PRESETS.get('test')"),
}


def __getattr__(name: str):
    entry = _DEPRECATED_ROOT_NAMES.get(name)
    if entry is None:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
    module_name, replacement = entry
    warnings.warn(
        f"importing {name!r} from 'repro.core' is deprecated and will be "
        f"removed in the next release; use {replacement} (or import from "
        f"'{module_name}' directly)",
        DeprecationWarning, stacklevel=2)
    # Deliberately not cached in globals(): every root access warns.
    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "ParameterField",
    "ParameterSpec",
    "ParameterArrays",
    "PORT_MAP_FIELD_NAME",
    "CategoricalField",
    "CategoricalRelaxation",
    "CategoricalTable",
    "Constraint",
    "ConstraintSet",
    "ConstraintViolation",
    "BoundConstraint",
    "LessEqualConstraint",
    "SumAtMostConstraint",
    "RelationConstraint",
    "SimulatorAdapter",
    "MCAAdapter",
    "LLVMSimAdapter",
    "SurrogateConfig",
    "BlockFeaturizer",
    "IthemalSurrogate",
    "PooledSurrogate",
    "build_surrogate",
    "FeaturizationCache",
    "PackedBlockBatch",
    "evaluate_surrogate",
    "SimulatedExample",
    "collect_simulated_dataset",
    "mape_loss_value",
    "surrogate_loss",
    "SurrogateTrainingConfig",
    "train_surrogate",
    "TableOptimizationConfig",
    "optimize_parameter_table",
    "extract_parameter_arrays",
    "DiffTune",
    "DiffTuneConfig",
    "DiffTuneResult",
    "fast_config",
    "paper_config",
    "test_config",
]
