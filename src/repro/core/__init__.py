"""DiffTune core: learning simulator parameters via differentiable surrogates.

This package implements the paper's primary contribution (Section III–IV):

1. :mod:`~repro.core.parameters` — a generic description of a simulator's
   ordinal parameter space (global + per-instruction fields, lower bounds,
   integer constraints, sampling distributions).
2. :mod:`~repro.core.adapters` — adapters binding that description to the
   concrete simulators (llvm-mca and llvm_sim), including conversion between
   optimization arrays and native parameter tables.
3. :mod:`~repro.core.simulated_dataset` — collection of the
   ``(parameters, block, simulated timing)`` dataset used to train the
   surrogate.
4. :mod:`~repro.core.surrogate` — the differentiable surrogate models: the
   Ithemal-style stacked-LSTM surrogate from the paper and a faster pooled
   variant for CPU-budget experiments.
5. :mod:`~repro.core.surrogate_training` / :mod:`~repro.core.table_optimization`
   — the two gradient-based optimization phases (Equations 2 and 3).
6. :mod:`~repro.core.extraction` — mapping learned continuous values back to
   valid integer parameter tables.
7. :mod:`~repro.core.difftune` — the end-to-end driver.
"""

from repro.core.parameters import (ParameterField, ParameterSpec, ParameterArrays,
                                   PORT_MAP_FIELD_NAME)
from repro.core.categorical import (CategoricalField, CategoricalRelaxation,
                                    CategoricalTable)
from repro.core.constraints import (BoundConstraint, Constraint, ConstraintSet,
                                    ConstraintViolation, LessEqualConstraint,
                                    RelationConstraint, SumAtMostConstraint)
from repro.core.adapters import SimulatorAdapter, MCAAdapter, LLVMSimAdapter
from repro.core.surrogate import (SurrogateConfig, BlockFeaturizer, FeaturizationCache,
                                  IthemalSurrogate, PackedBlockBatch, PooledSurrogate,
                                  build_surrogate)
from repro.core.simulated_dataset import SimulatedExample, collect_simulated_dataset
from repro.core.losses import mape_loss_value, surrogate_loss
from repro.core.surrogate_training import (SurrogateTrainingConfig, evaluate_surrogate,
                                           train_surrogate)
from repro.core.table_optimization import TableOptimizationConfig, optimize_parameter_table
from repro.core.extraction import extract_parameter_arrays
from repro.core.difftune import DiffTune, DiffTuneConfig, DiffTuneResult
from repro.core.config import fast_config, paper_config, test_config

__all__ = [
    "ParameterField",
    "ParameterSpec",
    "ParameterArrays",
    "PORT_MAP_FIELD_NAME",
    "CategoricalField",
    "CategoricalRelaxation",
    "CategoricalTable",
    "Constraint",
    "ConstraintSet",
    "ConstraintViolation",
    "BoundConstraint",
    "LessEqualConstraint",
    "SumAtMostConstraint",
    "RelationConstraint",
    "SimulatorAdapter",
    "MCAAdapter",
    "LLVMSimAdapter",
    "SurrogateConfig",
    "BlockFeaturizer",
    "IthemalSurrogate",
    "PooledSurrogate",
    "build_surrogate",
    "FeaturizationCache",
    "PackedBlockBatch",
    "evaluate_surrogate",
    "SimulatedExample",
    "collect_simulated_dataset",
    "mape_loss_value",
    "surrogate_loss",
    "SurrogateTrainingConfig",
    "train_surrogate",
    "TableOptimizationConfig",
    "optimize_parameter_table",
    "extract_parameter_arrays",
    "DiffTune",
    "DiffTuneConfig",
    "DiffTuneResult",
    "fast_config",
    "paper_config",
    "test_config",
]
