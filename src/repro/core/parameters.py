"""Generic description of a simulator's ordinal parameter space.

DiffTune treats the program under optimization as a black box with two kinds
of parameters (Section IV of the paper):

* *global* parameters — a single vector associated with overall simulator
  behaviour (e.g. DispatchWidth, ReorderBufferSize);
* *per-instruction* parameters — a uniform-length vector associated with each
  opcode (e.g. WriteLatency, NumMicroOps, ReadAdvanceCycles, PortMap).

Each parameter carries two constraint kinds: a lower bound and an
integer-valuedness flag.  During optimization everything is represented as
floating point; the surrogate receives ``value - lower_bound`` during
surrogate training and ``|value|`` during parameter-table training, and
extraction maps back with ``|value| + lower_bound`` rounded to integers
(Section IV, "Parameter extraction").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Name used for the PortMap field; it gets a structured sampling distribution
#: (cycles spread over a small random subset of ports) rather than a plain
#: per-entry uniform draw.
PORT_MAP_FIELD_NAME = "PortMap"


@dataclass(frozen=True)
class ParameterField:
    """One named group of parameters.

    Attributes:
        name: Field name ("WriteLatency", "DispatchWidth", ...).
        size: Vector width.  For per-instruction fields this is the width per
            opcode (e.g. 10 for the PortMap); for global fields the width of
            the global vector entry (usually 1).
        lower_bound: Minimum legal value (0 or 1 for every llvm-mca field).
        integer: Whether legal values are integers (true for every field the
            paper considers; kept explicit for extensibility).
        sample_low: Inclusive lower end of the training sampling distribution.
        sample_high: Inclusive upper end of the training sampling distribution.
    """

    name: str
    size: int
    lower_bound: int
    integer: bool
    sample_low: int
    sample_high: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("field size must be >= 1")
        if self.sample_low > self.sample_high:
            raise ValueError("sample_low must be <= sample_high")
        if self.sample_low < self.lower_bound:
            raise ValueError(f"{self.name}: sampling range must respect the lower bound")

    @property
    def scale(self) -> float:
        """Normalization scale used when feeding the field to the surrogate."""
        return float(max(self.sample_high - self.lower_bound, 1))


@dataclass
class ParameterArrays:
    """Concrete parameter values in optimization layout.

    Attributes:
        global_values: ``(global_dim,)`` float vector of global parameters.
        per_instruction_values: ``(num_opcodes, per_instruction_dim)`` float
            matrix of per-instruction parameters.
    """

    global_values: np.ndarray
    per_instruction_values: np.ndarray

    def copy(self) -> "ParameterArrays":
        return ParameterArrays(self.global_values.copy(), self.per_instruction_values.copy())

    def to_flat_vector(self) -> np.ndarray:
        return np.concatenate([self.global_values.ravel(),
                               self.per_instruction_values.ravel()])

    @classmethod
    def from_flat_vector(cls, vector: np.ndarray, global_dim: int,
                         num_opcodes: int, per_instruction_dim: int) -> "ParameterArrays":
        vector = np.asarray(vector, dtype=np.float64)
        expected = global_dim + num_opcodes * per_instruction_dim
        if vector.size != expected:
            raise ValueError(f"expected {expected} values, got {vector.size}")
        return cls(global_values=vector[:global_dim].copy(),
                   per_instruction_values=vector[global_dim:].reshape(
                       num_opcodes, per_instruction_dim).copy())


class ParameterSpec:
    """The full parameter-space description for one simulator."""

    def __init__(self, global_fields: Sequence[ParameterField],
                 per_instruction_fields: Sequence[ParameterField],
                 num_opcodes: int) -> None:
        if num_opcodes < 1:
            raise ValueError("num_opcodes must be >= 1")
        self.global_fields: List[ParameterField] = list(global_fields)
        self.per_instruction_fields: List[ParameterField] = list(per_instruction_fields)
        self.num_opcodes = num_opcodes

    # ------------------------------------------------------------------
    # Dimensions and layout
    # ------------------------------------------------------------------
    @property
    def global_dim(self) -> int:
        return sum(field.size for field in self.global_fields)

    @property
    def per_instruction_dim(self) -> int:
        return sum(field.size for field in self.per_instruction_fields)

    @property
    def num_parameters(self) -> int:
        """Total scalar parameter count of the simulator."""
        return self.global_dim + self.num_opcodes * self.per_instruction_dim

    def _offsets(self, fields: Sequence[ParameterField]) -> Dict[str, Tuple[int, int]]:
        offsets: Dict[str, Tuple[int, int]] = {}
        cursor = 0
        for field_ in fields:
            offsets[field_.name] = (cursor, cursor + field_.size)
            cursor += field_.size
        return offsets

    def global_field_slice(self, name: str) -> slice:
        start, end = self._offsets(self.global_fields)[name]
        return slice(start, end)

    def per_instruction_field_slice(self, name: str) -> slice:
        start, end = self._offsets(self.per_instruction_fields)[name]
        return slice(start, end)

    def field_by_name(self, name: str) -> ParameterField:
        for field_ in list(self.global_fields) + list(self.per_instruction_fields):
            if field_.name == name:
                return field_
        raise KeyError(f"unknown parameter field: {name}")

    # ------------------------------------------------------------------
    # Bounds in optimization layout
    # ------------------------------------------------------------------
    def global_lower_bounds(self) -> np.ndarray:
        return np.concatenate([
            np.full(field_.size, field_.lower_bound, dtype=np.float64)
            for field_ in self.global_fields]) if self.global_fields else np.zeros(0)

    def per_instruction_lower_bounds(self) -> np.ndarray:
        return np.concatenate([
            np.full(field_.size, field_.lower_bound, dtype=np.float64)
            for field_ in self.per_instruction_fields]) if self.per_instruction_fields \
            else np.zeros(0)

    def global_scales(self) -> np.ndarray:
        return np.concatenate([
            np.full(field_.size, field_.scale, dtype=np.float64)
            for field_ in self.global_fields]) if self.global_fields else np.ones(0)

    def per_instruction_scales(self) -> np.ndarray:
        return np.concatenate([
            np.full(field_.size, field_.scale, dtype=np.float64)
            for field_ in self.per_instruction_fields]) if self.per_instruction_fields \
            else np.ones(0)

    # ------------------------------------------------------------------
    # Sampling (the 𝐷 distribution of the paper)
    # ------------------------------------------------------------------
    def _sample_field(self, field_: ParameterField, rows: int,
                      rng: np.random.Generator) -> np.ndarray:
        """Sample one field for ``rows`` opcodes (or one global row)."""
        if field_.name == PORT_MAP_FIELD_NAME:
            # The paper samples each PortMap as "0 to 2 cycles to between 0 and
            # 2 randomly selected ports" — most entries are zero.  The cycle
            # range follows the field's sampling bounds so narrower sampling
            # configurations stay consistent.
            values = np.zeros((rows, field_.size), dtype=np.float64)
            num_ports_used = rng.integers(0, 3, size=rows)
            for row in range(rows):
                ports = rng.choice(field_.size, size=int(num_ports_used[row]), replace=False)
                for port in ports:
                    values[row, port] = float(rng.integers(field_.sample_low,
                                                           field_.sample_high + 1))
            return values
        return rng.integers(field_.sample_low, field_.sample_high + 1,
                            size=(rows, field_.size)).astype(np.float64)

    def sample(self, rng: np.random.Generator) -> ParameterArrays:
        """Sample a full parameter table from the training distribution."""
        global_parts = [self._sample_field(field_, 1, rng).reshape(-1)
                        for field_ in self.global_fields]
        per_instruction_parts = [self._sample_field(field_, self.num_opcodes, rng)
                                 for field_ in self.per_instruction_fields]
        global_values = np.concatenate(global_parts) if global_parts else np.zeros(0)
        per_instruction_values = (np.concatenate(per_instruction_parts, axis=1)
                                  if per_instruction_parts
                                  else np.zeros((self.num_opcodes, 0)))
        return ParameterArrays(global_values=global_values,
                               per_instruction_values=per_instruction_values)

    def sample_near(self, center: ParameterArrays, rng: np.random.Generator,
                    spread: float = 0.25) -> ParameterArrays:
        """Sample a table near ``center`` (local-surrogate refinement).

        Each value is perturbed by a uniform offset of up to ``spread`` times
        the field's scale, then clipped to the field's sampling range.  Used
        by the iterative refinement rounds, which re-train the surrogate in a
        neighbourhood of the current parameter estimate (the local-surrogate
        strategy the paper points to in its discussion of sampling
        distributions).
        """
        global_scales = self.global_scales()
        per_scales = self.per_instruction_scales()
        global_low = self.global_lower_bounds()
        per_low = self.per_instruction_lower_bounds()
        global_values = center.global_values + rng.uniform(
            -spread, spread, size=center.global_values.shape) * global_scales
        per_values = center.per_instruction_values + rng.uniform(
            -spread, spread, size=center.per_instruction_values.shape) * per_scales
        global_values = np.clip(global_values, global_low, global_low + global_scales)
        per_values = np.clip(per_values, per_low, per_low + per_scales)
        return ParameterArrays(global_values=global_values,
                               per_instruction_values=per_values)

    # ------------------------------------------------------------------
    # Surrogate input transforms
    # ------------------------------------------------------------------
    def normalize_for_surrogate_training(self, arrays: ParameterArrays) -> ParameterArrays:
        """Transform sampled values into surrogate inputs (subtract lower bound)."""
        global_values = (arrays.global_values - self.global_lower_bounds()) / self.global_scales()
        per_instruction = ((arrays.per_instruction_values - self.per_instruction_lower_bounds())
                           / self.per_instruction_scales())
        return ParameterArrays(global_values=global_values,
                               per_instruction_values=per_instruction)

    def clip_to_bounds(self, arrays: ParameterArrays) -> ParameterArrays:
        """Clip values to their lower bounds (used by black-box baselines)."""
        global_values = np.maximum(arrays.global_values, self.global_lower_bounds())
        per_instruction = np.maximum(arrays.per_instruction_values,
                                     self.per_instruction_lower_bounds())
        return ParameterArrays(global_values=global_values,
                               per_instruction_values=per_instruction)

    def round_to_integers(self, arrays: ParameterArrays) -> ParameterArrays:
        """Round integer-constrained fields (all llvm-mca fields are integer)."""
        rounded = arrays.copy()
        cursor = 0
        for field_ in self.global_fields:
            if field_.integer:
                rounded.global_values[cursor:cursor + field_.size] = np.round(
                    rounded.global_values[cursor:cursor + field_.size])
            cursor += field_.size
        cursor = 0
        for field_ in self.per_instruction_fields:
            if field_.integer:
                rounded.per_instruction_values[:, cursor:cursor + field_.size] = np.round(
                    rounded.per_instruction_values[:, cursor:cursor + field_.size])
            cursor += field_.size
        return rounded
