"""Differentiable surrogate models.

Two surrogates are provided:

* :class:`IthemalSurrogate` — the architecture from the paper (Figure 3): a
  token-embedding lookup table, a per-instruction stacked LSTM over each
  instruction's canonicalized tokens, concatenation of the per-instruction and
  global parameters onto each instruction vector, a block-level stacked LSTM
  over the instruction vectors, and a linear head producing the timing.
* :class:`PooledSurrogate` — a faster variant for CPU-budget experiments: the
  per-instruction token embeddings are mean-pooled instead of run through a
  token-level LSTM, each instruction is processed by a small MLP, and the
  block is summarized by sum/mean pooling before the prediction head.  It
  keeps the essential property DiffTune needs — differentiability with respect
  to the parameter inputs, with per-opcode resolution — at a fraction of the
  cost.

Both take the same inputs per basic block:

* the canonicalized token ids per instruction,
* a ``(len(block), per_instruction_dim)`` matrix of (normalized) parameter
  values for the block's opcodes,
* a ``(global_dim,)`` vector of (normalized) global parameter values,

and output a positive scalar timing prediction.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.registries import SURROGATES
from repro.autodiff import (Embedding, Linear, MLP, Module, StackedLSTM, Tensor)
from repro.autodiff.modules import Parameter
from repro.autodiff.tensor import concat, masked_mean, masked_sum, maximum, stack
from repro.core.parameters import ParameterArrays, ParameterSpec, PORT_MAP_FIELD_NAME
from repro.isa.basic_block import BasicBlock
from repro.isa.canonicalize import CanonicalInstruction, TokenVocabulary, canonicalize_block
from repro.isa.opcodes import OpcodeTable


@dataclass
class SurrogateConfig:
    """Hyper-parameters of the surrogate.

    Attributes:
        kind: ``"ithemal"`` (paper architecture) or ``"pooled"`` (fast variant).
        embedding_size: Token embedding width.
        hidden_size: LSTM / MLP hidden width.
        num_lstm_layers: Stack depth of each LSTM (the paper uses 4).
        seed: Weight-initialization seed.
    """

    kind: str = "pooled"
    embedding_size: int = 32
    hidden_size: int = 64
    num_lstm_layers: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        # The SURROGATES registry (which this module populates at import
        # time) is the single source of truth for valid kinds, so
        # third-party surrogates registered via entry points validate too.
        if self.kind not in SURROGATES:
            raise ValueError(
                f"surrogate kind must be one of {SURROGATES.names()}, "
                f"got {self.kind!r}")


#: Width of the per-instruction structural feature vector produced by the
#: featurizer (dependency fan-out, loop-carried flag, source count, load and
#: store flags).  These features are parameter-independent, so they are
#: legitimate surrogate inputs: they describe the block, not the simulator.
NUM_STRUCTURAL_FEATURES = 5


@dataclass(frozen=True)
class FeaturizedBlock:
    """Pre-computed, surrogate-independent features of one basic block.

    Attributes:
        token_ids: Canonicalized token-id sequence per instruction.
        opcode_indices: Opcode-table index per instruction (used to gather
            rows of the per-instruction parameter table).
        structural_features: Dense per-instruction features (see
            :data:`NUM_STRUCTURAL_FEATURES`).
        dependency_producers: For each instruction, the indices of earlier
            instructions within the block that produce one of its register
            sources (its immediate dataflow predecessors).
        loop_carried_writers: Indices of the instructions that perform the
            final write to each loop-carried register — the tails of the
            chains that limit steady-state throughput.
    """

    token_ids: Tuple[Tuple[int, ...], ...]
    opcode_indices: Tuple[int, ...]
    structural_features: Tuple[Tuple[float, ...], ...]
    dependency_producers: Tuple[Tuple[int, ...], ...]
    loop_carried_writers: Tuple[int, ...]


class BlockFeaturizer:
    """Canonicalizes blocks once so surrogates can reuse the token streams."""

    def __init__(self, opcode_table: OpcodeTable,
                 vocabulary: Optional[TokenVocabulary] = None) -> None:
        self.opcode_table = opcode_table
        self.vocabulary = vocabulary or TokenVocabulary(opcode_table)
        self._cache: dict = {}

    @staticmethod
    def _structural_features(block: BasicBlock) -> Tuple[Tuple[float, ...], ...]:
        """Dependency-structure features per instruction.

        For each instruction: how many later instructions consume one of its
        results (scaled), whether it participates in a loop-carried register
        chain, how many register sources it reads (scaled), and whether it
        loads / stores.  These let the surrogate distinguish instructions on
        the critical dependency path from independent ones, which is where
        the WriteLatency parameters matter.
        """
        consumers = [0] * len(block)
        for producer, _consumer, _register in block.register_dependencies():
            consumers[producer] += 1
        loop_carried = block.loop_carried_registers()
        features = []
        for index, instruction in enumerate(block):
            writes_loop_carried = any(register in loop_carried
                                      for register in instruction.destination_registers())
            features.append((
                min(consumers[index], 4) / 4.0,
                1.0 if writes_loop_carried else 0.0,
                min(len(instruction.source_registers()), 3) / 3.0,
                1.0 if instruction.is_load else 0.0,
                1.0 if instruction.is_store else 0.0,
            ))
        return tuple(features)

    @staticmethod
    def _dependency_structure(block: BasicBlock) -> Tuple[Tuple[Tuple[int, ...], ...],
                                                          Tuple[int, ...]]:
        """Immediate dataflow predecessors and loop-carried chain tails."""
        producers: List[set] = [set() for _ in range(len(block))]
        for producer, consumer, _register in block.register_dependencies():
            producers[consumer].add(producer)
        last_writer = {}
        for index, instruction in enumerate(block):
            for register in instruction.destination_registers():
                last_writer[register] = index
        loop_carried = block.loop_carried_registers()
        writers = sorted({last_writer[register] for register in loop_carried
                          if register in last_writer})
        return (tuple(tuple(sorted(deps)) for deps in producers), tuple(writers))

    def featurize(self, block: BasicBlock) -> FeaturizedBlock:
        key = block.structural_key()
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        canonical = canonicalize_block(block, self.vocabulary)
        producers, loop_writers = self._dependency_structure(block)
        featurized = FeaturizedBlock(
            token_ids=tuple(instruction.token_ids for instruction in canonical),
            opcode_indices=tuple(instruction.opcode_index for instruction in canonical),
            structural_features=self._structural_features(block),
            dependency_producers=producers,
            loop_carried_writers=loop_writers,
        )
        self._cache[key] = featurized
        return featurized

    @property
    def vocabulary_size(self) -> int:
        return len(self.vocabulary)


@dataclass(frozen=True)
class PackedBlockBatch:
    """A minibatch of featurized blocks packed into padded, masked arrays.

    Every array is batch-major; ``I`` is the longest instruction count and
    ``T`` the longest per-instruction token count in the batch.  Padded slots
    carry zeros and are excluded from every reduction by the masks.

    Attributes:
        token_ids: ``(B, I, T)`` int64 canonical token ids (0-padded).
        token_mask: ``(B, I, T)`` 1.0 on real tokens, 0.0 on padding.
        opcode_indices: ``(B, I)`` int64 opcode-table rows (0-padded).
        instruction_mask: ``(B, I)`` 1.0 on real instructions.
        structural_features: ``(B, I, NUM_STRUCTURAL_FEATURES)`` float64.
        lengths: ``(B,)`` real instruction counts.
        dependency_mask: ``(B, I, I)``; ``[b, i, p] = 1`` when instruction
            ``p`` is an immediate dataflow producer of instruction ``i``.
        loop_carried_mask: ``(B, I)``; 1 on the final writers of loop-carried
            registers (the tails of the steady-state dependency chains).
    """

    token_ids: np.ndarray
    token_mask: np.ndarray
    opcode_indices: np.ndarray
    instruction_mask: np.ndarray
    structural_features: np.ndarray
    lengths: np.ndarray
    dependency_mask: np.ndarray
    loop_carried_mask: np.ndarray

    @property
    def batch_size(self) -> int:
        return int(self.token_ids.shape[0])

    @property
    def max_instructions(self) -> int:
        return int(self.token_ids.shape[1])

    @property
    def max_tokens(self) -> int:
        return int(self.token_ids.shape[2])


def featurized_block_digest(featurized: FeaturizedBlock) -> str:
    """Content digest of a featurized block (stable across processes).

    Every field of :class:`FeaturizedBlock` is a nested tuple of ints/floats,
    so ``repr`` is a canonical serialization; blake2b over it gives a key
    that identical block content maps to in any process — the property the
    on-disk featurization store and the LRU caches are keyed on.
    """
    payload = repr((featurized.token_ids, featurized.opcode_indices,
                    featurized.structural_features,
                    featurized.dependency_producers,
                    featurized.loop_carried_writers))
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()


def table_digest(arrays: ParameterArrays) -> str:
    """Content digest of a sampled parameter table."""
    digest = hashlib.blake2b(digest_size=16)
    per = np.ascontiguousarray(arrays.per_instruction_values)
    global_values = np.ascontiguousarray(arrays.global_values)
    digest.update(repr(per.shape).encode())
    digest.update(per.tobytes())
    digest.update(global_values.tobytes())
    return digest.hexdigest()


def build_block_arrays(featurized: FeaturizedBlock) -> Dict[str, np.ndarray]:
    """Per-block packed arrays (unpadded) for one featurized block."""
    length = len(featurized.opcode_indices)
    max_tokens = max((len(ids) for ids in featurized.token_ids), default=1)
    token_ids = np.zeros((length, max_tokens), dtype=np.int64)
    token_mask = np.zeros((length, max_tokens), dtype=np.float64)
    for row, ids in enumerate(featurized.token_ids):
        token_ids[row, :len(ids)] = ids
        token_mask[row, :len(ids)] = 1.0
    dependency = np.zeros((length, length), dtype=np.float64)
    for consumer, producers in enumerate(featurized.dependency_producers):
        for producer in producers:
            dependency[consumer, producer] = 1.0
    loop_carried = np.zeros(length, dtype=np.float64)
    for writer in featurized.loop_carried_writers:
        loop_carried[writer] = 1.0
    return {
        "token_ids": token_ids,
        "token_mask": token_mask,
        "opcode_indices": np.asarray(featurized.opcode_indices, dtype=np.int64),
        "structural_features": np.asarray(featurized.structural_features,
                                          dtype=np.float64),
        "dependency_mask": dependency,
        "loop_carried_mask": loop_carried,
    }


def pack_block_arrays(per_block: Sequence[Dict[str, np.ndarray]]) -> PackedBlockBatch:
    """Pad a list of per-block array dicts into one :class:`PackedBlockBatch`.

    Accepts the dicts produced by :func:`build_block_arrays` — or memory-
    mapped views of them from the on-disk featurization store — so both the
    in-memory and the shard-streaming training paths share one packer.
    """
    if not per_block:
        raise ValueError("cannot pack an empty batch")
    batch = len(per_block)
    max_instructions = max(arrays["token_ids"].shape[0] for arrays in per_block)
    max_tokens = max(arrays["token_ids"].shape[1] for arrays in per_block)
    token_ids = np.zeros((batch, max_instructions, max_tokens), dtype=np.int64)
    token_mask = np.zeros((batch, max_instructions, max_tokens), dtype=np.float64)
    opcode_indices = np.zeros((batch, max_instructions), dtype=np.int64)
    instruction_mask = np.zeros((batch, max_instructions), dtype=np.float64)
    structural = np.zeros((batch, max_instructions, NUM_STRUCTURAL_FEATURES),
                          dtype=np.float64)
    lengths = np.zeros(batch, dtype=np.int64)
    dependency = np.zeros((batch, max_instructions, max_instructions),
                          dtype=np.float64)
    loop_carried = np.zeros((batch, max_instructions), dtype=np.float64)
    for row, arrays in enumerate(per_block):
        length, tokens = arrays["token_ids"].shape
        token_ids[row, :length, :tokens] = arrays["token_ids"]
        token_mask[row, :length, :tokens] = arrays["token_mask"]
        opcode_indices[row, :length] = arrays["opcode_indices"]
        instruction_mask[row, :length] = 1.0
        structural[row, :length] = arrays["structural_features"]
        lengths[row] = length
        dependency[row, :length, :length] = arrays["dependency_mask"]
        loop_carried[row, :length] = arrays["loop_carried_mask"]
    return PackedBlockBatch(
        token_ids=token_ids, token_mask=token_mask,
        opcode_indices=opcode_indices, instruction_mask=instruction_mask,
        structural_features=structural, lengths=lengths,
        dependency_mask=dependency, loop_carried_mask=loop_carried)


#: Process-wide featurization-cache counters, aggregated across every
#: :class:`FeaturizationCache` instance and surfaced by ``Session.stats()``.
_CACHE_COUNTERS: Dict[str, int] = {
    "block_hits": 0, "block_misses": 0, "block_evictions": 0,
    "table_hits": 0, "table_misses": 0, "table_evictions": 0,
}


def featurization_cache_stats() -> Dict[str, int]:
    """A snapshot of the process-wide featurization-cache counters."""
    return dict(_CACHE_COUNTERS)


def reset_featurization_cache_stats() -> None:
    """Zero the process-wide counters (test/bench isolation)."""
    for key in _CACHE_COUNTERS:
        _CACHE_COUNTERS[key] = 0


class FeaturizationCache:
    """Featurizes each basic block once per dataset and packs minibatches.

    Wraps a :class:`BlockFeaturizer` with two levels of reuse the batched
    training fast path needs:

    * per-block packed arrays (token-id matrix, masks, structural features,
      dependency masks) are computed once per distinct block and reused by
      every minibatch that contains the block in any epoch;
    * parameter-array normalization
      (:meth:`ParameterSpec.normalize_for_surrogate_training`) is memoized
      per sampled table, so a table shared by ``blocks_per_table`` examples
      is normalized once per dataset rather than once per example per epoch.

    Both memos are keyed by *content digest* (not object identity), so equal
    content hits regardless of which object carries it, and both are bounded
    LRUs: corpus-scale runs stream millions of blocks through a cache whose
    footprint stays at ``max_blocks``/``max_tables`` entries.  Hit, miss, and
    eviction counters aggregate process-wide
    (:func:`featurization_cache_stats`).
    """

    def __init__(self, featurizer: BlockFeaturizer, max_blocks: int = 65536,
                 max_tables: int = 8192) -> None:
        if max_blocks <= 0 or max_tables <= 0:
            raise ValueError("cache bounds must be positive")
        self.featurizer = featurizer
        self.max_blocks = max_blocks
        self.max_tables = max_tables
        self._block_arrays: "OrderedDict[str, Dict[str, np.ndarray]]" = OrderedDict()
        self._normalized: "OrderedDict[str, ParameterArrays]" = OrderedDict()

    def featurize(self, block: BasicBlock) -> FeaturizedBlock:
        return self.featurizer.featurize(block)

    def normalized_arrays(self, spec: ParameterSpec,
                          arrays: ParameterArrays) -> ParameterArrays:
        """``arrays`` normalized for surrogate training, memoized per table."""
        key = table_digest(arrays)
        cached = self._normalized.get(key)
        if cached is not None:
            _CACHE_COUNTERS["table_hits"] += 1
            self._normalized.move_to_end(key)
            return cached
        _CACHE_COUNTERS["table_misses"] += 1
        normalized = spec.normalize_for_surrogate_training(arrays)
        self._normalized[key] = normalized
        while len(self._normalized) > self.max_tables:
            self._normalized.popitem(last=False)
            _CACHE_COUNTERS["table_evictions"] += 1
        return normalized

    def arrays_for(self, featurized: FeaturizedBlock) -> Dict[str, np.ndarray]:
        """Per-block packed arrays (unpadded), memoized by content digest."""
        return self._arrays_for(featurized)

    def _arrays_for(self, featurized: FeaturizedBlock) -> Dict[str, np.ndarray]:
        key = featurized_block_digest(featurized)
        cached = self._block_arrays.get(key)
        if cached is not None:
            _CACHE_COUNTERS["block_hits"] += 1
            self._block_arrays.move_to_end(key)
            return cached
        _CACHE_COUNTERS["block_misses"] += 1
        arrays = build_block_arrays(featurized)
        self._block_arrays[key] = arrays
        while len(self._block_arrays) > self.max_blocks:
            self._block_arrays.popitem(last=False)
            _CACHE_COUNTERS["block_evictions"] += 1
        return arrays

    def pack(self, featurized_blocks: Sequence[FeaturizedBlock]) -> PackedBlockBatch:
        """Pad a list of featurized blocks into one :class:`PackedBlockBatch`."""
        if not featurized_blocks:
            raise ValueError("cannot pack an empty batch")
        return pack_block_arrays(
            [self._arrays_for(featurized) for featurized in featurized_blocks])

    def pack_blocks(self, blocks: Sequence[BasicBlock]) -> PackedBlockBatch:
        """Featurize (cached) and pack a list of raw basic blocks."""
        return self.pack([self.featurize(block) for block in blocks])

    def batch_parameters(self, spec: ParameterSpec,
                         featurized_blocks: Sequence[FeaturizedBlock],
                         tables: Sequence[ParameterArrays],
                         max_instructions: Optional[int] = None
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """Normalized per-instruction and global parameter inputs for a batch.

        ``tables[b]`` is the (raw) sampled table of example ``b``;
        normalization is memoized per table object.  Returns
        ``(B, I, per_instruction_dim)`` and ``(B, global_dim)`` arrays with
        zero padding past each block's real length.
        """
        if len(featurized_blocks) != len(tables):
            raise ValueError("featurized_blocks and tables must be aligned")
        batch = len(tables)
        if max_instructions is None:
            max_instructions = max(len(featurized.opcode_indices)
                                   for featurized in featurized_blocks)
        per_instruction = np.zeros((batch, max_instructions, spec.per_instruction_dim))
        global_values = np.zeros((batch, spec.global_dim))
        for row, (featurized, table) in enumerate(zip(featurized_blocks, tables)):
            normalized = self.normalized_arrays(spec, table)
            opcodes = np.asarray(featurized.opcode_indices, dtype=np.int64)
            per_instruction[row, :len(opcodes)] = \
                normalized.per_instruction_values[opcodes]
            global_values[row] = normalized.global_values
        return per_instruction, global_values


class _SurrogateBase(Module):
    """Shared plumbing for both surrogate variants."""

    #: Whether :meth:`forward_batch` is implemented.  The batched training
    #: fast path checks this and falls back to the per-example loop when a
    #: custom surrogate has no batch-major forward.
    supports_batched_forward = False

    def __init__(self, spec: ParameterSpec, featurizer: BlockFeaturizer,
                 config: SurrogateConfig) -> None:
        super().__init__()
        self.spec = spec
        self.featurizer = featurizer
        self.config = config

    def forward_batch(self, batch: PackedBlockBatch, per_instruction_params,
                      global_params) -> Tensor:
        """Batch-major forward: one ``(B,)`` prediction tensor per minibatch.

        ``per_instruction_params`` is ``(B, I, per_instruction_dim)`` and
        ``global_params`` is ``(B, global_dim)`` (both already normalized and
        gathered per block, e.g. by
        :meth:`FeaturizationCache.batch_parameters`).  Semantically identical
        to calling :meth:`forward` per example — the property tests pin the
        two paths together within 1e-9.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no batched forward; "
            "train with SurrogateTrainingConfig(batched=False)")

    def _broadcast_global(self, global_vector: Tensor,
                          batch: PackedBlockBatch) -> Tensor:
        """``(B, G)`` globals replicated along the instruction axis: ``(B, I, G)``."""
        batch_size, global_dim = global_vector.shape
        return global_vector.reshape(batch_size, 1, global_dim).broadcast_to(
            (batch_size, batch.max_instructions, global_dim))

    # The per-instruction parameter matrix and global vector may be plain
    # NumPy arrays (surrogate training: parameters are constants) or autodiff
    # Tensors (parameter-table training: gradients must flow into them).
    @staticmethod
    def _as_tensor(value) -> Tensor:
        return value if isinstance(value, Tensor) else Tensor(value)

    def predict(self, block: BasicBlock, per_instruction_params, global_params) -> Tensor:
        featurized = self.featurizer.featurize(block)
        return self.forward(featurized, per_instruction_params, global_params)

    def predict_value(self, block: BasicBlock, per_instruction_params, global_params) -> float:
        from repro.autodiff.tensor import no_grad

        with no_grad():
            return float(self.predict(block, per_instruction_params, global_params).item())


class IthemalSurrogate(_SurrogateBase):
    """The paper's surrogate: modified Ithemal with parameter inputs (Figure 3)."""

    def __init__(self, spec: ParameterSpec, featurizer: BlockFeaturizer,
                 config: SurrogateConfig) -> None:
        super().__init__(spec, featurizer, config)
        rng = np.random.default_rng(config.seed)
        self.token_embedding = Embedding(featurizer.vocabulary_size, config.embedding_size,
                                         rng=rng)
        self.instruction_lstm = StackedLSTM(config.embedding_size, config.hidden_size,
                                            num_layers=config.num_lstm_layers, rng=rng)
        block_input_size = (config.hidden_size + NUM_STRUCTURAL_FEATURES
                            + spec.per_instruction_dim + spec.global_dim)
        self.block_lstm = StackedLSTM(block_input_size, config.hidden_size,
                                      num_layers=config.num_lstm_layers, rng=rng)
        self.head = Linear(config.hidden_size, 1, rng=rng)

    def forward(self, featurized: FeaturizedBlock, per_instruction_params,
                global_params) -> Tensor:
        params = self._as_tensor(per_instruction_params)
        global_vector = self._as_tensor(global_params)
        instruction_vectors: List[Tensor] = []
        for position, token_ids in enumerate(featurized.token_ids):
            token_vectors = self.token_embedding(list(token_ids))
            token_sequence = [token_vectors[index] for index in range(len(token_ids))]
            instruction_vector = self.instruction_lstm(token_sequence)
            row = params[position]
            structure = Tensor(np.asarray(featurized.structural_features[position]))
            pieces = [instruction_vector, structure, row]
            if global_vector.size > 0:
                pieces.append(global_vector)
            instruction_vectors.append(concat(pieces))
        block_vector = self.block_lstm(instruction_vectors)
        prediction = self.head(block_vector)
        # Softplus keeps the prediction positive, which stabilizes the MAPE
        # losses used during both optimization phases.
        return prediction.softplus()[0]

    supports_batched_forward = True

    def forward_batch(self, batch: PackedBlockBatch, per_instruction_params,
                      global_params) -> Tensor:
        params = self._as_tensor(per_instruction_params)
        global_vector = self._as_tensor(global_params)
        batch_size = batch.batch_size
        max_instructions = batch.max_instructions
        max_tokens = batch.max_tokens
        # Token level: every (block, instruction) slot becomes one row of a
        # (B*I)-wide LSTM batch; fully padded slots stay at the zero initial
        # state because all their steps are masked.
        flat_ids = batch.token_ids.reshape(batch_size * max_instructions, max_tokens)
        flat_token_mask = batch.token_mask.reshape(
            batch_size * max_instructions, max_tokens)
        token_steps = [self.token_embedding(flat_ids[:, position])
                       for position in range(max_tokens)]
        instruction_vectors = self.instruction_lstm.forward_batch(
            token_steps, flat_token_mask.T)
        instruction_vectors = instruction_vectors.reshape(
            batch_size, max_instructions, self.config.hidden_size)
        pieces = [instruction_vectors, Tensor(batch.structural_features), params]
        if global_vector.shape[-1] > 0:
            pieces.append(self._broadcast_global(global_vector, batch))
        block_inputs = concat(pieces, axis=-1)
        block_steps = [block_inputs[:, position, :]
                       for position in range(max_instructions)]
        block_vector = self.block_lstm.forward_batch(
            block_steps, batch.instruction_mask.T)
        prediction = self.head(block_vector)
        return prediction.softplus().reshape(batch_size)


class PooledSurrogate(_SurrogateBase):
    """Fast surrogate: structured parameter features + pooled learned encodings.

    The paper's surrogate is a large stacked-LSTM model trained on millions of
    simulated examples; at that scale it learns the simulator's sensitivity to
    every parameter from data alone.  At this reproduction's CPU scale a free-
    form network mostly explains timing variance with block structure and
    under-uses the parameter inputs, which starves the phase-2 optimization of
    useful gradients.  This surrogate therefore exposes the parameter
    dependence explicitly through *structured features* — differentiable
    throughput/latency bound terms computed from the parameter inputs (total
    micro-ops over dispatch width, per-port occupancy totals, dependency-chain
    latency sums, reorder-buffer pressure) — alongside a learned pooled
    encoding of the block.  Everything remains end-to-end differentiable with
    respect to the parameters, which is all DiffTune requires.
    """

    def __init__(self, spec: ParameterSpec, featurizer: BlockFeaturizer,
                 config: SurrogateConfig) -> None:
        super().__init__(spec, featurizer, config)
        rng = np.random.default_rng(config.seed)
        self.token_embedding = Embedding(featurizer.vocabulary_size, config.embedding_size,
                                         rng=rng)
        instruction_input = (config.embedding_size + NUM_STRUCTURAL_FEATURES
                             + spec.per_instruction_dim + spec.global_dim)
        self.instruction_mlp = MLP([instruction_input, config.hidden_size, config.hidden_size],
                                   rng=rng)
        self._feature_names = self._available_fields()
        num_structured = self._num_structured_features()
        # The block is summarized by the structured bound features plus the
        # sum and mean of its learned instruction encodings.
        self.head = MLP([num_structured + 2 * config.hidden_size, config.hidden_size, 1],
                        rng=rng)

    # ------------------------------------------------------------------
    # Structured parameter features
    # ------------------------------------------------------------------
    def _available_fields(self) -> dict:
        """Which well-known fields exist in this spec (MCA vs llvm_sim)."""
        per_names = {field_.name for field_ in self.spec.per_instruction_fields}
        global_names = {field_.name for field_ in self.spec.global_fields}
        return {
            "latency": "WriteLatency" in per_names,
            "uops": "NumMicroOps" in per_names,
            "ports": "PortMap" in per_names,
            "advance": "ReadAdvanceCycles" in per_names,
            "dispatch": "DispatchWidth" in global_names,
            "rob": "ReorderBufferSize" in global_names,
        }

    def _num_structured_features(self) -> int:
        fields = self._feature_names
        count = 2  # block length, total instruction count with memory ops
        if fields["uops"]:
            count += 2  # total uops, uops / dispatch (or raw total if no dispatch)
        if fields["latency"]:
            count += 4  # total, chain-weighted, loop-carried-weighted, mean
        if fields["ports"]:
            count += 11  # per-port totals + overall max proxy
        if fields["advance"]:
            count += 1
        if fields["rob"]:
            count += 1
        if fields["dispatch"]:
            count += 1
        return count

    def _structured_features(self, featurized: FeaturizedBlock, params: Tensor,
                             global_vector: Tensor) -> Tensor:
        fields = self._feature_names
        spec = self.spec
        length = len(featurized.opcode_indices)
        consumers = np.array([feature[0] for feature in featurized.structural_features])
        loop_carried = np.array([feature[1] for feature in featurized.structural_features])
        memory_ops = np.array([feature[3] + feature[4]
                               for feature in featurized.structural_features])
        features: List[Tensor] = [Tensor(np.array([length / 16.0])),
                                  Tensor(np.array([float(memory_ops.sum()) / 8.0]))]

        def column(name: str) -> Tensor:
            return params[:, spec.per_instruction_field_slice(name)]

        dispatch_term = None
        if fields["dispatch"]:
            dispatch_index = spec.global_field_slice("DispatchWidth").start
            dispatch_term = global_vector[dispatch_index] + 0.15
            features.append(dispatch_term.reshape(1))
        if fields["uops"]:
            total_uops = column("NumMicroOps").sum()
            features.append(total_uops.reshape(1) * 0.1)
            if dispatch_term is not None:
                features.append((total_uops / (dispatch_term * 9.0 + 1.0)).reshape(1))
            else:
                features.append(total_uops.reshape(1) * 0.1)
        if fields["latency"]:
            latency = column("WriteLatency").reshape(length)
            features.append(latency.sum().reshape(1) * 0.2)
            features.append((latency * Tensor(consumers)).sum().reshape(1) * 0.4)
            features.append((latency * Tensor(loop_carried)).sum().reshape(1) * 0.4)
            features.append(latency.mean().reshape(1))
        if fields["advance"]:
            advance = column("ReadAdvanceCycles").mean(axis=1).reshape(length)
            features.append((advance * Tensor(consumers)).sum().reshape(1) * 0.2)
        if fields["ports"]:
            port_totals = column("PortMap").sum(axis=0)
            features.append(port_totals * 0.3)
            features.append((port_totals * port_totals).sum().sqrt().reshape(1) * 0.3)
        if fields["rob"]:
            rob_index = spec.global_field_slice("ReorderBufferSize").start
            features.append(global_vector[rob_index].reshape(1))
        return concat(features)

    def forward(self, featurized: FeaturizedBlock, per_instruction_params,
                global_params) -> Tensor:
        params = self._as_tensor(per_instruction_params)
        global_vector = self._as_tensor(global_params)
        encodings: List[Tensor] = []
        for position, token_ids in enumerate(featurized.token_ids):
            token_vectors = self.token_embedding(list(token_ids))
            pooled_tokens = token_vectors.mean(axis=0)
            row = params[position]
            structure = Tensor(np.asarray(featurized.structural_features[position]))
            pieces = [pooled_tokens, structure, row]
            if global_vector.size > 0:
                pieces.append(global_vector)
            encodings.append(self.instruction_mlp(concat(pieces)))
        stacked = stack(encodings, axis=0)
        summed = stacked.sum(axis=0) * 0.25
        averaged = stacked.mean(axis=0)
        structured = self._structured_features(featurized, params, global_vector)
        block_vector = concat([structured, summed, averaged])
        prediction = self.head(block_vector)
        return prediction.softplus()[0]

    # ------------------------------------------------------------------
    # Batched forward
    # ------------------------------------------------------------------
    def _structured_features_batch(self, batch: PackedBlockBatch, params: Tensor,
                                   global_vector: Tensor) -> Tensor:
        """Batch-major mirror of :meth:`_structured_features`: ``(B, K)``."""
        fields = self._feature_names
        spec = self.spec
        instruction_mask = batch.instruction_mask
        row_mask = instruction_mask[..., None]
        consumers = batch.structural_features[:, :, 0]
        loop_carried = batch.structural_features[:, :, 1]
        memory_ops = batch.structural_features[:, :, 3] + batch.structural_features[:, :, 4]
        batch_size = batch.batch_size
        features: List[Tensor] = [
            Tensor(batch.lengths[:, None].astype(np.float64) / 16.0),
            Tensor(memory_ops.sum(axis=1)[:, None] / 8.0),
        ]

        def column(name: str) -> Tensor:
            return params[:, :, spec.per_instruction_field_slice(name)]

        dispatch_term = None
        if fields["dispatch"]:
            dispatch_index = spec.global_field_slice("DispatchWidth").start
            dispatch_term = global_vector[:, dispatch_index] + 0.15
            features.append(dispatch_term.reshape(batch_size, 1))
        if fields["uops"]:
            total_uops = masked_sum(column("NumMicroOps"), row_mask, axis=(1, 2))
            features.append(total_uops.reshape(batch_size, 1) * 0.1)
            if dispatch_term is not None:
                features.append(
                    (total_uops / (dispatch_term * 9.0 + 1.0)).reshape(batch_size, 1))
            else:
                features.append(total_uops.reshape(batch_size, 1) * 0.1)
        if fields["latency"]:
            latency = column("WriteLatency").reshape(batch_size, batch.max_instructions)
            features.append(
                masked_sum(latency, instruction_mask, axis=1).reshape(batch_size, 1) * 0.2)
            features.append(masked_sum(latency * Tensor(consumers), instruction_mask,
                                       axis=1).reshape(batch_size, 1) * 0.4)
            features.append(masked_sum(latency * Tensor(loop_carried), instruction_mask,
                                       axis=1).reshape(batch_size, 1) * 0.4)
            features.append(
                masked_mean(latency, instruction_mask, axis=1).reshape(batch_size, 1))
        if fields["advance"]:
            advance = column("ReadAdvanceCycles").mean(axis=-1)
            features.append(masked_sum(advance * Tensor(consumers), instruction_mask,
                                       axis=1).reshape(batch_size, 1) * 0.2)
        if fields["ports"]:
            port_totals = masked_sum(column(PORT_MAP_FIELD_NAME), row_mask, axis=1)
            features.append(port_totals * 0.3)
            features.append((port_totals * port_totals).sum(axis=-1).sqrt()
                            .reshape(batch_size, 1) * 0.3)
        if fields["rob"]:
            rob_index = spec.global_field_slice("ReorderBufferSize").start
            features.append(global_vector[:, rob_index].reshape(batch_size, 1))
        return concat(features, axis=-1)

    supports_batched_forward = True

    def forward_batch(self, batch: PackedBlockBatch, per_instruction_params,
                      global_params) -> Tensor:
        params = self._as_tensor(per_instruction_params)
        global_vector = self._as_tensor(global_params)
        batch_size = batch.batch_size
        embeddings = self.token_embedding(batch.token_ids)
        pooled_tokens = masked_mean(embeddings, batch.token_mask[..., None], axis=2)
        pieces = [pooled_tokens, Tensor(batch.structural_features), params]
        if global_vector.shape[-1] > 0:
            pieces.append(self._broadcast_global(global_vector, batch))
        encodings = self.instruction_mlp(concat(pieces, axis=-1))
        instruction_mask = batch.instruction_mask[..., None]
        summed = masked_sum(encodings, instruction_mask, axis=1) * 0.25
        averaged = masked_mean(encodings, instruction_mask, axis=1)
        structured = self._structured_features_batch(batch, params, global_vector)
        block_vector = concat([structured, summed, averaged], axis=-1)
        prediction = self.head(block_vector)
        return prediction.softplus().reshape(batch_size)


class AnalyticalSurrogate(_SurrogateBase):
    """Structured differentiable surrogate: learned smooth-max of bound terms.

    At the paper's scale a free-form stacked-LSTM surrogate learns the
    simulator's parameter sensitivity purely from millions of simulated
    examples.  At CPU scale that sensitivity has to come from the surrogate's
    structure instead.  This surrogate computes, as a differentiable function
    of the parameter inputs, the same bound terms an out-of-order basic-block
    simulator's timing is composed of:

    * a **dispatch bound** — total micro-ops over the dispatch width;
    * a **port bound** — a smooth maximum of per-port occupancy totals;
    * a **dependency-chain bound** — a dataflow traversal of the block's
      register-dependency DAG with the WriteLatency (less ReadAdvance) of each
      producer, taking the loop-carried chains as the steady-state cost;
    * a **reorder-buffer pressure** term.

    The combination weights of the bounds, a global calibration, and a learned
    per-block residual (from pooled token embeddings and structural features)
    are trained on the simulated dataset, exactly like any other surrogate.
    Gradients with respect to every parameter flow through the bound terms, so
    phase-2 table optimization receives well-shaped gradients even at small
    simulated-dataset sizes.
    """

    #: Exponent of the power-mean used as a smooth maximum over bound terms.
    SMOOTH_MAX_POWER = 6.0

    def __init__(self, spec: ParameterSpec, featurizer: BlockFeaturizer,
                 config: SurrogateConfig) -> None:
        super().__init__(spec, featurizer, config)
        rng = np.random.default_rng(config.seed)
        per_names = {field_.name for field_ in spec.per_instruction_fields}
        global_names = {field_.name for field_ in spec.global_fields}
        self._has = {
            "latency": "WriteLatency" in per_names,
            "uops": "NumMicroOps" in per_names,
            "ports": "PortMap" in per_names,
            "advance": "ReadAdvanceCycles" in per_names,
            "dispatch": "DispatchWidth" in global_names,
            "rob": "ReorderBufferSize" in global_names,
        }
        # Learned calibration: log-scale weights for each bound term and the
        # residual network over block structure.
        self.bound_weights = Parameter(np.zeros(4), name="bound_weights")
        self.output_scale = Parameter(np.zeros(1), name="output_scale")
        self.output_bias = Parameter(np.zeros(1), name="output_bias")
        self.token_embedding = Embedding(featurizer.vocabulary_size, config.embedding_size,
                                         rng=rng)
        # The residual network sees only the block (token embeddings and
        # structural features), NOT the parameters: every parameter gradient
        # therefore flows through the analytically shaped bound terms, which
        # is what keeps phase-2 optimization well conditioned at small scale.
        residual_input = config.embedding_size + NUM_STRUCTURAL_FEATURES
        self.instruction_mlp = MLP([residual_input, config.hidden_size, config.hidden_size],
                                   rng=rng)
        self.residual_head = MLP([config.hidden_size, config.hidden_size, 1], rng=rng)

    # ------------------------------------------------------------------
    # Field access in simulator units
    # ------------------------------------------------------------------
    def _denormalized_column(self, params: Tensor, name: str) -> Tensor:
        """Column(s) of the per-instruction matrix, converted back to cycles."""
        field_ = self.spec.field_by_name(name)
        column = params[:, self.spec.per_instruction_field_slice(name)]
        return column * field_.scale + field_.lower_bound

    def _denormalized_global(self, global_vector: Tensor, name: str) -> Tensor:
        field_ = self.spec.field_by_name(name)
        index = self.spec.global_field_slice(name).start
        return global_vector[index] * field_.scale + field_.lower_bound

    # ------------------------------------------------------------------
    # Bound terms
    # ------------------------------------------------------------------
    def _dispatch_bound(self, params: Tensor, global_vector: Tensor, length: int) -> Tensor:
        if self._has["uops"]:
            total_uops = self._denormalized_column(params, "NumMicroOps").sum()
        elif self._has["ports"]:
            total_uops = self._denormalized_column(params, PORT_MAP_FIELD_NAME).sum() + length
        else:
            total_uops = Tensor(float(length))
        if self._has["dispatch"]:
            dispatch_width = self._denormalized_global(global_vector, "DispatchWidth")
            return total_uops / (dispatch_width + 1e-3)
        return total_uops * 0.25

    def _port_bound(self, params: Tensor) -> Tensor:
        port_cycles = self._denormalized_column(params, PORT_MAP_FIELD_NAME)
        totals = port_cycles.sum(axis=0) + 1e-4
        power = self.SMOOTH_MAX_POWER
        return ((totals ** power).sum()) ** (1.0 / power)

    def _chain_bound(self, featurized: FeaturizedBlock, params: Tensor) -> Tensor:
        if not self._has["latency"]:
            # Specs without a WriteLatency field (e.g. custom simulators whose
            # latency is a global parameter) contribute no chain bound; their
            # latency dependence is carried by the other bound terms.
            return Tensor(0.0)
        latency = self._denormalized_column(params, "WriteLatency").reshape(
            len(featurized.opcode_indices))
        if self._has["advance"]:
            advance = self._denormalized_column(params, "ReadAdvanceCycles").mean(axis=1)
            effective = maximum(latency - advance, Tensor(np.zeros(latency.shape)))
        else:
            effective = latency
        finish: List[Tensor] = []
        zero = Tensor(0.0)
        for index in range(len(featurized.opcode_indices)):
            ready = zero
            for producer in featurized.dependency_producers[index]:
                ready = maximum(ready, finish[producer])
            finish.append(ready + effective[index])
        if not featurized.loop_carried_writers:
            return zero
        bound = zero
        for writer in featurized.loop_carried_writers:
            bound = maximum(bound, finish[writer])
        return bound

    def _rob_bound(self, params: Tensor, global_vector: Tensor, length: int) -> Tensor:
        if not (self._has["uops"] and self._has["rob"]):
            return Tensor(0.0)
        total_uops = self._denormalized_column(params, "NumMicroOps").sum()
        rob = self._denormalized_global(global_vector, "ReorderBufferSize")
        return total_uops * length / (rob * 8.0 + 1.0)

    # ------------------------------------------------------------------
    # Residual network
    # ------------------------------------------------------------------
    def _residual(self, featurized: FeaturizedBlock) -> Tensor:
        encodings: List[Tensor] = []
        for position, token_ids in enumerate(featurized.token_ids):
            token_vectors = self.token_embedding(list(token_ids))
            pooled_tokens = token_vectors.mean(axis=0)
            structure = Tensor(np.asarray(featurized.structural_features[position]))
            encodings.append(self.instruction_mlp(concat([pooled_tokens, structure])))
        pooled = stack(encodings, axis=0).mean(axis=0)
        return self.residual_head(pooled)[0]

    def forward(self, featurized: FeaturizedBlock, per_instruction_params,
                global_params) -> Tensor:
        params = self._as_tensor(per_instruction_params)
        global_vector = self._as_tensor(global_params)
        length = len(featurized.opcode_indices)
        weights = self.bound_weights.exp()
        bounds = [
            self._dispatch_bound(params, global_vector, length) * weights[0],
            self._chain_bound(featurized, params) * weights[2],
            self._rob_bound(params, global_vector, length) * weights[3],
        ]
        if self._has["ports"]:
            bounds.insert(1, self._port_bound(params) * weights[1])
        power = self.SMOOTH_MAX_POWER
        combined = Tensor(1e-6)
        for bound in bounds:
            combined = combined + (bound + 1e-4) ** power
        smooth_max = combined ** (1.0 / power)
        residual = self._residual(featurized)
        scale = (self.output_scale.exp())[0]
        prediction = smooth_max * scale + residual + self.output_bias[0]
        return prediction.softplus()

    # ------------------------------------------------------------------
    # Batched forward
    # ------------------------------------------------------------------
    def _denormalized_column_batch(self, params: Tensor, name: str) -> Tensor:
        field_ = self.spec.field_by_name(name)
        column = params[:, :, self.spec.per_instruction_field_slice(name)]
        return column * field_.scale + field_.lower_bound

    def _denormalized_global_batch(self, global_vector: Tensor, name: str) -> Tensor:
        field_ = self.spec.field_by_name(name)
        index = self.spec.global_field_slice(name).start
        return global_vector[:, index] * field_.scale + field_.lower_bound

    def _dispatch_bound_batch(self, batch: PackedBlockBatch, params: Tensor,
                              global_vector: Tensor) -> Tensor:
        row_mask = batch.instruction_mask[..., None]
        lengths = batch.lengths.astype(np.float64)
        if self._has["uops"]:
            total_uops = masked_sum(self._denormalized_column_batch(params, "NumMicroOps"),
                                    row_mask, axis=(1, 2))
        elif self._has["ports"]:
            total_uops = masked_sum(
                self._denormalized_column_batch(params, PORT_MAP_FIELD_NAME),
                row_mask, axis=(1, 2)) + Tensor(lengths)
        else:
            total_uops = Tensor(lengths)
        if self._has["dispatch"]:
            dispatch_width = self._denormalized_global_batch(global_vector, "DispatchWidth")
            return total_uops / (dispatch_width + 1e-3)
        return total_uops * 0.25

    def _port_bound_batch(self, batch: PackedBlockBatch, params: Tensor) -> Tensor:
        port_cycles = self._denormalized_column_batch(params, PORT_MAP_FIELD_NAME)
        totals = masked_sum(port_cycles, batch.instruction_mask[..., None], axis=1) + 1e-4
        power = self.SMOOTH_MAX_POWER
        return ((totals ** power).sum(axis=-1)) ** (1.0 / power)

    @staticmethod
    def _masked_running_max(running: Tensor, candidate: Tensor, mask: np.ndarray
                            ) -> Tensor:
        """``max(running, candidate)`` where mask is 1, ``running`` elsewhere.

        Rows with mask 0 compare ``running`` against itself, so the tie sends
        the gradient to ``running`` — exactly what the per-example path does
        when the candidate is absent from that example's producer set.
        """
        gated = candidate * mask + running * (1.0 - mask)
        return maximum(running, gated)

    def _chain_bound_batch(self, batch: PackedBlockBatch, params: Tensor) -> Tensor:
        batch_size = batch.batch_size
        if not self._has["latency"]:
            return Tensor(np.zeros(batch_size))
        latency = self._denormalized_column_batch(params, "WriteLatency").reshape(
            batch_size, batch.max_instructions)
        if self._has["advance"]:
            advance = self._denormalized_column_batch(
                params, "ReadAdvanceCycles").mean(axis=-1)
            effective = maximum(latency - advance, Tensor(np.zeros(latency.shape)))
        else:
            effective = latency
        # The dataflow traversal runs position-major over the whole batch:
        # each step is a handful of vectorized (B,)-shaped ops, with the
        # per-example producer sets expressed through the dependency mask.
        zero = Tensor(np.zeros(batch_size))
        finish: List[Tensor] = []
        for index in range(batch.max_instructions):
            ready = zero
            for producer in range(index):
                producer_mask = batch.dependency_mask[:, index, producer]
                if not producer_mask.any():
                    continue
                ready = self._masked_running_max(ready, finish[producer], producer_mask)
            finish.append(ready + effective[:, index])
        bound = zero
        for writer in range(batch.max_instructions):
            writer_mask = batch.loop_carried_mask[:, writer]
            if not writer_mask.any():
                continue
            bound = self._masked_running_max(bound, finish[writer], writer_mask)
        return bound

    def _rob_bound_batch(self, batch: PackedBlockBatch, params: Tensor,
                         global_vector: Tensor) -> Tensor:
        if not (self._has["uops"] and self._has["rob"]):
            return Tensor(np.zeros(batch.batch_size))
        total_uops = masked_sum(self._denormalized_column_batch(params, "NumMicroOps"),
                                batch.instruction_mask[..., None], axis=(1, 2))
        rob = self._denormalized_global_batch(global_vector, "ReorderBufferSize")
        return total_uops * Tensor(batch.lengths.astype(np.float64)) / (rob * 8.0 + 1.0)

    def _residual_batch(self, batch: PackedBlockBatch) -> Tensor:
        embeddings = self.token_embedding(batch.token_ids)
        pooled_tokens = masked_mean(embeddings, batch.token_mask[..., None], axis=2)
        encodings = self.instruction_mlp(
            concat([pooled_tokens, Tensor(batch.structural_features)], axis=-1))
        pooled = masked_mean(encodings, batch.instruction_mask[..., None], axis=1)
        return self.residual_head(pooled).reshape(batch.batch_size)

    supports_batched_forward = True

    def forward_batch(self, batch: PackedBlockBatch, per_instruction_params,
                      global_params) -> Tensor:
        params = self._as_tensor(per_instruction_params)
        global_vector = self._as_tensor(global_params)
        weights = self.bound_weights.exp()
        bounds = [
            self._dispatch_bound_batch(batch, params, global_vector) * weights[0],
            self._chain_bound_batch(batch, params) * weights[2],
            self._rob_bound_batch(batch, params, global_vector) * weights[3],
        ]
        if self._has["ports"]:
            bounds.insert(1, self._port_bound_batch(batch, params) * weights[1])
        power = self.SMOOTH_MAX_POWER
        combined = Tensor(1e-6)
        for bound in bounds:
            combined = combined + (bound + 1e-4) ** power
        smooth_max = combined ** (1.0 / power)
        residual = self._residual_batch(batch)
        scale = (self.output_scale.exp())[0]
        prediction = smooth_max * scale + residual + self.output_bias[0]
        return prediction.softplus()


def build_surrogate(spec: ParameterSpec, featurizer: BlockFeaturizer,
                    config: SurrogateConfig) -> _SurrogateBase:
    """Factory selecting the surrogate variant from the registry.

    Any class registered in :data:`repro.api.registries.SURROGATES` (built-in
    or via the ``repro.surrogates`` entry-point group) with the constructor
    signature ``(spec, featurizer, config)`` is eligible.
    """
    surrogate_class = SURROGATES.get(config.kind)
    return surrogate_class(spec, featurizer, config)


SURROGATES.register(
    "ithemal", IthemalSurrogate,
    summary="paper architecture: token + block stacked LSTMs (Figure 3)")
SURROGATES.register(
    "pooled", PooledSurrogate,
    summary="fast pooled-MLP variant for CPU-budget experiments")
SURROGATES.register(
    "analytical", AnalyticalSurrogate,
    summary="differentiable analytical throughput/latency bound model")
