"""Phase one of DiffTune: training the surrogate on the simulated dataset.

Solves Equation (2) of the paper: fit the differentiable surrogate so that
``surrogate(theta, x) ≈ simulator(theta, x)`` over the simulated dataset, with
Adam and MAPE loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.autodiff.optim import Adam
from repro.autodiff.tensor import no_grad
from repro.core.losses import mape_loss_value, surrogate_loss
from repro.core.parameters import ParameterArrays, ParameterSpec
from repro.core.simulated_dataset import SimulatedExample
from repro.core.surrogate import _SurrogateBase


@dataclass
class SurrogateTrainingConfig:
    """Hyper-parameters for surrogate training.

    Defaults follow the paper where feasible (Adam, learning rate 0.001,
    batch-based updates); batch size and epoch count are scaled down for CPU
    training and can be overridden.
    """

    learning_rate: float = 0.001
    batch_size: int = 16
    epochs: int = 2
    gradient_clip: float = 5.0
    shuffle: bool = True
    seed: int = 0
    log_every: int = 0  # batches; 0 disables logging callbacks


@dataclass
class SurrogateTrainingResult:
    """Summary of a surrogate training run."""

    epoch_losses: List[float]
    final_training_error: float


def _normalized_inputs(spec: ParameterSpec, example: SimulatedExample,
                       opcode_indices: Sequence[int]) -> tuple:
    """Surrogate inputs for one example during surrogate training."""
    normalized = spec.normalize_for_surrogate_training(example.arrays)
    per_instruction = normalized.per_instruction_values[list(opcode_indices)]
    return per_instruction, normalized.global_values


def train_surrogate(surrogate: _SurrogateBase, examples: Sequence[SimulatedExample],
                    config: SurrogateTrainingConfig,
                    progress: Optional[Callable[[int, int, float], None]] = None
                    ) -> SurrogateTrainingResult:
    """Train ``surrogate`` to mimic the simulator on ``examples``.

    Args:
        surrogate: The surrogate model (weights are updated in place).
        examples: The simulated dataset.
        config: Training hyper-parameters.
        progress: Optional callback ``(epoch, batch, loss)``.

    Returns:
        Per-epoch mean losses and the final full-pass training error.
    """
    if not examples:
        raise ValueError("cannot train the surrogate on an empty dataset")
    spec = surrogate.spec
    optimizer = Adam(surrogate.parameters(), lr=config.learning_rate)
    rng = np.random.default_rng(config.seed)
    order = np.arange(len(examples))
    epoch_losses: List[float] = []

    surrogate.train()
    for epoch in range(config.epochs):
        if config.shuffle:
            rng.shuffle(order)
        batch_losses: List[float] = []
        for batch_start in range(0, len(order), config.batch_size):
            batch_indices = order[batch_start:batch_start + config.batch_size]
            predictions = []
            targets = []
            for example_index in batch_indices:
                example = examples[int(example_index)]
                featurized = surrogate.featurizer.featurize(example.block)
                per_instruction, global_values = _normalized_inputs(
                    spec, example, featurized.opcode_indices)
                predictions.append(surrogate.forward(featurized, per_instruction, global_values))
                targets.append(example.simulated_timing)
            loss = surrogate_loss(predictions, targets)
            optimizer.zero_grad()
            loss.backward()
            optimizer.clip_grad_norm(config.gradient_clip)
            optimizer.step()
            batch_losses.append(loss.item())
            if progress is not None and config.log_every and \
                    (batch_start // config.batch_size) % config.log_every == 0:
                progress(epoch, batch_start // config.batch_size, batch_losses[-1])
        epoch_losses.append(float(np.mean(batch_losses)))

    surrogate.eval()
    final_error = evaluate_surrogate(surrogate, examples)
    return SurrogateTrainingResult(epoch_losses=epoch_losses, final_training_error=final_error)


def evaluate_surrogate(surrogate: _SurrogateBase,
                       examples: Sequence[SimulatedExample]) -> float:
    """MAPE of the surrogate against the simulator on ``examples``."""
    spec = surrogate.spec
    predictions = []
    targets = []
    with no_grad():
        for example in examples:
            featurized = surrogate.featurizer.featurize(example.block)
            per_instruction, global_values = _normalized_inputs(
                spec, example, featurized.opcode_indices)
            predictions.append(surrogate.forward(featurized, per_instruction,
                                                 global_values).item())
            targets.append(example.simulated_timing)
    return mape_loss_value(np.array(predictions), np.array(targets))
