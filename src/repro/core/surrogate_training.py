"""Phase one of DiffTune: training the surrogate on the simulated dataset.

Solves Equation (2) of the paper: fit the differentiable surrogate so that
``surrogate(theta, x) ≈ simulator(theta, x)`` over the simulated dataset, with
Adam and MAPE loss.

Two execution paths produce the same losses and gradients (within floating-
point reassociation, pinned to 1e-9 by property tests):

* the **batched fast path** (default) featurizes every block once per dataset
  through a :class:`~repro.core.surrogate.FeaturizationCache`, normalizes each
  sampled parameter table once, and advances a whole padded minibatch per
  autodiff op via the surrogate's ``forward_batch``;
* the **per-example path** (``SurrogateTrainingConfig(batched=False)``, or any
  surrogate without a batched forward) runs one example at a time — the
  original semantics, kept as the escape hatch and the reference the property
  tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.autodiff.optim import Adam
from repro.autodiff.tensor import no_grad
from repro.core.losses import mape_loss_value, surrogate_loss
from repro.core.parameters import ParameterSpec
from repro.core.simulated_dataset import SimulatedExample
from repro.core.surrogate import (FeaturizationCache, _SurrogateBase,
                                  pack_block_arrays)
from repro.core.training_loop import run_minibatch_loop


@dataclass
class SurrogateTrainingConfig:
    """Hyper-parameters for surrogate training.

    Defaults follow the paper where feasible (Adam, learning rate 0.001,
    batch-based updates); batch size and epoch count are scaled down for CPU
    training and can be overridden.

    ``batched`` selects the batch-major fast path (on by default); it falls
    back to the per-example loop automatically for surrogates that do not
    implement ``forward_batch``.
    """

    learning_rate: float = 0.001
    batch_size: int = 16
    epochs: int = 2
    gradient_clip: float = 5.0
    shuffle: bool = True
    seed: int = 0
    log_every: int = 0  # batches; 0 disables logging callbacks
    batched: bool = True


@dataclass
class SurrogateTrainingResult:
    """Summary of a surrogate training run."""

    epoch_losses: List[float]
    final_training_error: float
    used_batched_path: bool = False
    examples_per_second: float = 0.0


def _normalized_inputs(spec: ParameterSpec, example: SimulatedExample,
                       opcode_indices: Sequence[int],
                       cache: Optional[FeaturizationCache] = None) -> tuple:
    """Surrogate inputs for one example during surrogate training."""
    if cache is not None:
        normalized = cache.normalized_arrays(spec, example.arrays)
    else:
        normalized = spec.normalize_for_surrogate_training(example.arrays)
    per_instruction = normalized.per_instruction_values[list(opcode_indices)]
    return per_instruction, normalized.global_values


def _batch_inputs(spec: ParameterSpec, cache: FeaturizationCache,
                  examples: Sequence[SimulatedExample], featurized: Sequence,
                  batch_indices: np.ndarray):
    """Packed batch + parameter inputs + targets for one minibatch."""
    rows = [int(index) for index in batch_indices]
    batch_featurized = [featurized[row] for row in rows]
    packed = cache.pack(batch_featurized)
    per_instruction, global_values = cache.batch_parameters(
        spec, batch_featurized, [examples[row].arrays for row in rows],
        max_instructions=packed.max_instructions)
    targets = [examples[row].simulated_timing for row in rows]
    return packed, per_instruction, global_values, targets


def is_streaming_examples(examples: Sequence) -> bool:
    """Whether ``examples`` is an index-addressed streaming source.

    Streaming sources (e.g. :class:`repro.corpus.streaming.StreamingExamples`)
    expose per-index accessors instead of per-example objects, so training
    never materializes a featurized list for the whole dataset.
    """
    return hasattr(examples, "block_arrays")


def _streaming_batch_inputs(spec: ParameterSpec, cache: FeaturizationCache,
                            examples, batch_indices: np.ndarray):
    """Streaming counterpart of :func:`_batch_inputs` (same float math)."""
    rows = [int(index) for index in batch_indices]
    packed = pack_block_arrays([examples.block_arrays(row) for row in rows])
    per_instruction = np.zeros((len(rows), packed.max_instructions,
                                spec.per_instruction_dim))
    global_values = np.zeros((len(rows), spec.global_dim))
    for position, row in enumerate(rows):
        normalized = cache.normalized_arrays(spec, examples.table(row))
        opcodes = examples.opcode_indices(row)
        per_instruction[position, :len(opcodes)] = \
            normalized.per_instruction_values[opcodes]
        global_values[position] = normalized.global_values
    targets = [examples.timing(row) for row in rows]
    return packed, per_instruction, global_values, targets


def train_surrogate(surrogate: _SurrogateBase, examples: Sequence[SimulatedExample],
                    config: SurrogateTrainingConfig,
                    progress: Optional[Callable[[int, int, float], None]] = None
                    ) -> SurrogateTrainingResult:
    """Train ``surrogate`` to mimic the simulator on ``examples``.

    Args:
        surrogate: The surrogate model (weights are updated in place).
        examples: The simulated dataset.
        config: Training hyper-parameters.
        progress: Optional callback ``(epoch, batch, loss)``; with
            ``log_every=N`` it fires every N batches and always on the final
            (possibly partial) batch of each epoch.

    Returns:
        Per-epoch mean losses and the final full-pass training error.
    """
    if not examples:
        raise ValueError("cannot train the surrogate on an empty dataset")
    spec = surrogate.spec
    optimizer = Adam(surrogate.parameters(), lr=config.learning_rate)
    rng = np.random.default_rng(config.seed)
    use_batched = bool(config.batched) and surrogate.supports_batched_forward
    streaming = is_streaming_examples(examples)

    # Featurize each distinct block once for the whole run; the cache also
    # memoizes per-table normalization and per-block packed arrays.  A
    # streaming source serves per-block arrays itself (possibly memory-mapped
    # from disk), so no whole-dataset featurized list is materialized.
    cache = FeaturizationCache(surrogate.featurizer)
    featurized = ([] if streaming
                  else [cache.featurize(example.block) for example in examples])

    def _batched_loss(batch_indices: np.ndarray):
        if streaming:
            packed, per_instruction, global_values, targets = \
                _streaming_batch_inputs(spec, cache, examples, batch_indices)
        else:
            packed, per_instruction, global_values, targets = _batch_inputs(
                spec, cache, examples, featurized, batch_indices)
        predictions = surrogate.forward_batch(packed, per_instruction, global_values)
        return surrogate_loss(predictions, targets)

    def _per_example_loss(batch_indices: np.ndarray):
        predictions = []
        targets = []
        for example_index in batch_indices:
            row = int(example_index)
            if streaming:
                example_featurized = examples.featurized(row)
                normalized = cache.normalized_arrays(spec, examples.table(row))
                per_instruction = normalized.per_instruction_values[
                    list(example_featurized.opcode_indices)]
                global_values = normalized.global_values
                target = examples.timing(row)
            else:
                example = examples[row]
                example_featurized = featurized[row]
                per_instruction, global_values = _normalized_inputs(
                    spec, example, example_featurized.opcode_indices, cache)
                target = example.simulated_timing
            predictions.append(surrogate.forward(
                example_featurized, per_instruction, global_values))
            targets.append(target)
        return surrogate_loss(predictions, targets)

    surrogate.train()
    loop = run_minibatch_loop(
        len(examples), _batched_loss if use_batched else _per_example_loss,
        optimizer, rng,
        batch_size=config.batch_size, epochs=config.epochs,
        shuffle=config.shuffle, gradient_clip=config.gradient_clip,
        log_every=config.log_every, progress=progress)

    surrogate.eval()
    # The final evaluation pass follows the selected execution path too:
    # with batched=False the whole run — including final_training_error — is
    # the per-example reference, never touching forward_batch.
    final_error = evaluate_surrogate(surrogate, examples,
                                     batch_size=64 if use_batched else 0,
                                     cache=cache)
    return SurrogateTrainingResult(
        epoch_losses=loop.epoch_losses, final_training_error=final_error,
        used_batched_path=use_batched,
        examples_per_second=loop.examples_per_second)


def evaluate_surrogate(surrogate: _SurrogateBase,
                       examples: Sequence[SimulatedExample],
                       batch_size: int = 64,
                       cache: Optional[FeaturizationCache] = None) -> float:
    """MAPE of the surrogate against the simulator on ``examples``.

    Uses the surrogate's batched forward in ``batch_size`` chunks when
    available (pass ``batch_size=0`` to force the per-example path).
    """
    spec = surrogate.spec
    cache = cache or FeaturizationCache(surrogate.featurizer)
    streaming = is_streaming_examples(examples)
    predictions: List[float] = []
    if streaming:
        targets = [examples.timing(row) for row in range(len(examples))]
    else:
        targets = [example.simulated_timing for example in examples]
    use_batched = batch_size > 0 and surrogate.supports_batched_forward
    with no_grad():
        if use_batched:
            featurized = ([] if streaming else
                          [cache.featurize(example.block) for example in examples])
            for chunk_start in range(0, len(examples), batch_size):
                chunk = np.arange(chunk_start,
                                  min(chunk_start + batch_size, len(examples)))
                if streaming:
                    packed, per_instruction, global_values, _ = \
                        _streaming_batch_inputs(spec, cache, examples, chunk)
                else:
                    packed, per_instruction, global_values, _ = _batch_inputs(
                        spec, cache, examples, featurized, chunk)
                chunk_predictions = surrogate.forward_batch(
                    packed, per_instruction, global_values)
                predictions.extend(float(value)
                                   for value in chunk_predictions.numpy())
        elif streaming:
            for row in range(len(examples)):
                featurized_block = examples.featurized(row)
                normalized = cache.normalized_arrays(spec, examples.table(row))
                per_instruction = normalized.per_instruction_values[
                    list(featurized_block.opcode_indices)]
                predictions.append(surrogate.forward(
                    featurized_block, per_instruction,
                    normalized.global_values).item())
        else:
            for example in examples:
                featurized_block = cache.featurize(example.block)
                per_instruction, global_values = _normalized_inputs(
                    spec, example, featurized_block.opcode_indices, cache)
                predictions.append(surrogate.forward(featurized_block, per_instruction,
                                                     global_values).item())
    return mape_loss_value(np.array(predictions), np.array(targets))
