"""Parameter extraction: learned continuous values → valid integer tables.

Section IV ("Parameter extraction") of the paper: after the parameter table
has been optimized through the surrogate, lower-bounded parameters are mapped
back with ``|value| + lower_bound`` and integer parameters are rounded to the
nearest integer.  Opcodes never seen during training keep whatever values the
randomly initialized table gave them (no special handling).

The heavy lifting of the bound/abs convention is done in
:class:`~repro.core.table_optimization._TrainableTable` (which already returns
values in simulator units); this module finishes the job — rounding, clipping,
and handing the arrays to the adapter for conversion into a native table.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.adapters import SimulatorAdapter
from repro.core.parameters import ParameterArrays, ParameterSpec


def extract_parameter_arrays(spec: ParameterSpec, learned: ParameterArrays) -> ParameterArrays:
    """Round and clip learned values so they satisfy every constraint."""
    rounded = spec.round_to_integers(learned)
    return spec.clip_to_bounds(rounded)


def extract_native_table(adapter: SimulatorAdapter, learned: ParameterArrays):
    """Extract a native parameter table (MCA or llvm_sim) from learned values."""
    arrays = extract_parameter_arrays(adapter.parameter_spec(), learned)
    return adapter.table_from_arrays(arrays)
