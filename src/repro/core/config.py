"""Configuration presets scaling DiffTune to different compute budgets.

The paper trains a 4-stack-LSTM surrogate on 2.3M simulated examples for 60
epoch-equivalents on a V100.  The presets here scale every knob so the same
pipeline runs on a laptop CPU:

* :func:`paper_config` — the faithful configuration (Ithemal surrogate,
  4-layer stacks, the paper's learning rates).  Usable for small datasets or
  long runs.
* :func:`fast_config` — the default for the benchmark harness: the pooled
  surrogate, moderate simulated-dataset size.  Every code path of the paper's
  pipeline is exercised; only scale changes.
* :func:`test_config` — a tiny configuration for unit/integration tests.

The three presets register in :data:`repro.api.registries.PRESETS` under
``fast`` / ``paper`` / ``test``; ``repro tune --config`` and
:class:`~repro.api.specs.TuneSpec` resolve them there, so additional presets
can be added via the ``repro.presets`` entry-point group.
"""

from __future__ import annotations

from repro.api.registries import PRESETS
from repro.core.difftune import DiffTuneConfig
from repro.core.surrogate import SurrogateConfig
from repro.core.surrogate_training import SurrogateTrainingConfig
from repro.core.table_optimization import TableOptimizationConfig


def paper_config(seed: int = 0) -> DiffTuneConfig:
    """The configuration closest to the paper (expensive on CPU)."""
    return DiffTuneConfig(
        surrogate=SurrogateConfig(kind="ithemal", embedding_size=64, hidden_size=128,
                                  num_lstm_layers=4, seed=seed),
        surrogate_training=SurrogateTrainingConfig(learning_rate=0.001, batch_size=32,
                                                   epochs=6, seed=seed),
        table_optimization=TableOptimizationConfig(learning_rate=0.05, batch_size=32,
                                                   epochs=1, seed=seed),
        simulated_dataset_size=20000,
        blocks_per_table=8,
        seed=seed,
    )


def fast_config(seed: int = 0) -> DiffTuneConfig:
    """CPU-budget configuration used by the benchmark harness."""
    return DiffTuneConfig(
        surrogate=SurrogateConfig(kind="analytical", embedding_size=24, hidden_size=32,
                                  num_lstm_layers=2, seed=seed),
        surrogate_training=SurrogateTrainingConfig(learning_rate=0.002, batch_size=16,
                                                   epochs=4, seed=seed),
        table_optimization=TableOptimizationConfig(learning_rate=0.05, batch_size=32,
                                                   epochs=6, seed=seed),
        simulated_dataset_size=3000,
        blocks_per_table=16,
        refinement_rounds=2,
        refinement_dataset_size=1500,
        refinement_spread=0.25,
        refinement_epochs=2,
        seed=seed,
    )


def test_config(seed: int = 0) -> DiffTuneConfig:
    """Tiny configuration for the test suite (seconds, not minutes)."""
    return DiffTuneConfig(
        surrogate=SurrogateConfig(kind="analytical", embedding_size=8, hidden_size=16,
                                  num_lstm_layers=1, seed=seed),
        surrogate_training=SurrogateTrainingConfig(learning_rate=0.005, batch_size=8,
                                                   epochs=1, seed=seed),
        table_optimization=TableOptimizationConfig(learning_rate=0.05, batch_size=8,
                                                   epochs=1, seed=seed),
        simulated_dataset_size=64,
        blocks_per_table=8,
        seed=seed,
    )


PRESETS.register("paper", paper_config,
                 summary="paper-faithful configuration (expensive on CPU)")
PRESETS.register("fast", fast_config,
                 summary="CPU-budget configuration (benchmark-harness default)")
PRESETS.register("test", test_config,
                 summary="tiny smoke-scale configuration for tests")
