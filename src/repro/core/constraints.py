"""Dependent-parameter constraints.

llvm-mca accepts any integer in ``[lower_bound, inf)`` for every parameter, so
the paper's DiffTune implementation only needs per-parameter lower bounds.
Section VII ("Dependent parameters") points out that richer simulators — gem5
is the example the paper gives — assert relationships *between* parameters
(e.g. one width must not exceed another, a set of sub-budgets must not exceed
a total).  This module provides the machinery needed to extend DiffTune to
such simulators:

* constraint classes describing a relation over named parameter fields;
* a :class:`ConstraintSet` that validates an assignment, *repairs* (projects)
  an assignment onto the feasible region, and rejection-samples feasible
  assignments from an unconstrained sampler;
* helpers for reporting which constraints an assignment violates.

Constraints operate on plain ``{field name: float | np.ndarray}`` mappings so
they can be applied both to global parameter vectors and to per-opcode rows,
and so they are usable by the black-box baselines as well as by DiffTune's
extraction step.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, MutableMapping, Optional, Sequence

import numpy as np

Assignment = MutableMapping[str, np.ndarray]


def _as_array(value) -> np.ndarray:
    return np.atleast_1d(np.asarray(value, dtype=np.float64))


@dataclass(frozen=True)
class ConstraintViolation:
    """A single violated constraint, with a human-readable explanation."""

    constraint: "Constraint"
    message: str

    def __str__(self) -> str:
        return self.message


class Constraint(abc.ABC):
    """A relation over named parameter fields that valid tables must satisfy."""

    #: Names of the fields the constraint reads.
    fields: Sequence[str]

    @abc.abstractmethod
    def check(self, assignment: Mapping[str, np.ndarray]) -> Optional[ConstraintViolation]:
        """Return a violation if ``assignment`` breaks the constraint, else None."""

    @abc.abstractmethod
    def repair(self, assignment: Assignment) -> None:
        """Minimally adjust ``assignment`` in place so the constraint holds."""

    def _require(self, assignment: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        resolved = {}
        for name in self.fields:
            if name not in assignment:
                raise KeyError(f"constraint needs field {name!r} which is missing")
            resolved[name] = _as_array(assignment[name])
        return resolved


class BoundConstraint(Constraint):
    """``lower <= field <= upper`` element-wise (either bound optional)."""

    def __init__(self, field: str, lower: Optional[float] = None,
                 upper: Optional[float] = None) -> None:
        if lower is None and upper is None:
            raise ValueError("BoundConstraint needs a lower or an upper bound")
        if lower is not None and upper is not None and lower > upper:
            raise ValueError("lower bound must not exceed upper bound")
        self.field = field
        self.lower = lower
        self.upper = upper
        self.fields = (field,)

    def check(self, assignment: Mapping[str, np.ndarray]) -> Optional[ConstraintViolation]:
        values = self._require(assignment)[self.field]
        if self.lower is not None and np.any(values < self.lower):
            return ConstraintViolation(self, f"{self.field} has values below {self.lower}")
        if self.upper is not None and np.any(values > self.upper):
            return ConstraintViolation(self, f"{self.field} has values above {self.upper}")
        return None

    def repair(self, assignment: Assignment) -> None:
        values = _as_array(assignment[self.field])
        assignment[self.field] = np.clip(values, self.lower, self.upper)


class LessEqualConstraint(Constraint):
    """``left <= right + slack`` element-wise between two fields.

    This is the shape of gem5's width assertions (e.g. a decode width must not
    exceed the fetch width that feeds it).  Repair lowers the left field to
    the bound, which preserves the right field's value.
    """

    def __init__(self, left: str, right: str, slack: float = 0.0) -> None:
        self.left = left
        self.right = right
        self.slack = float(slack)
        self.fields = (left, right)

    def check(self, assignment: Mapping[str, np.ndarray]) -> Optional[ConstraintViolation]:
        resolved = self._require(assignment)
        left, right = resolved[self.left], resolved[self.right]
        if np.any(left > right + self.slack + 1e-9):
            return ConstraintViolation(
                self, f"{self.left} exceeds {self.right} + {self.slack}")
        return None

    def repair(self, assignment: Assignment) -> None:
        left = _as_array(assignment[self.left])
        right = _as_array(assignment[self.right])
        assignment[self.left] = np.minimum(left, right + self.slack)


class SumAtMostConstraint(Constraint):
    """``sum(parts) <= total`` where ``parts`` are fields and ``total`` a field or constant.

    Models budget-style assertions (e.g. per-type queue entries must fit in a
    shared physical queue).  Repair rescales the parts proportionally.
    """

    def __init__(self, parts: Sequence[str], total: Optional[str] = None,
                 constant_total: Optional[float] = None) -> None:
        if (total is None) == (constant_total is None):
            raise ValueError("provide exactly one of total (field) or constant_total")
        if not parts:
            raise ValueError("SumAtMostConstraint needs at least one part")
        self.parts = tuple(parts)
        self.total = total
        self.constant_total = constant_total
        self.fields = tuple(parts) + ((total,) if total is not None else ())

    def _budget(self, assignment: Mapping[str, np.ndarray]) -> np.ndarray:
        if self.total is not None:
            return _as_array(assignment[self.total])
        return np.asarray(self.constant_total, dtype=np.float64)

    def check(self, assignment: Mapping[str, np.ndarray]) -> Optional[ConstraintViolation]:
        resolved = self._require(assignment)
        combined = sum(resolved[name] for name in self.parts)
        budget = self._budget(assignment)
        if np.any(combined > budget + 1e-9):
            return ConstraintViolation(
                self, f"sum of {list(self.parts)} exceeds its budget")
        return None

    def repair(self, assignment: Assignment) -> None:
        values = {name: _as_array(assignment[name]) for name in self.parts}
        combined = sum(values.values())
        budget = self._budget(assignment)
        overflow = combined > budget
        if not np.any(overflow):
            return
        scale = np.ones_like(combined)
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(overflow & (combined > 0), budget / combined, scale)
        for name in self.parts:
            assignment[name] = values[name] * scale


class RelationConstraint(Constraint):
    """An arbitrary predicate with an explicit repair function.

    Escape hatch for simulator-specific assertions that do not fit the shapes
    above; the caller supplies both the check predicate and the projection.
    """

    def __init__(self, fields: Sequence[str],
                 predicate: Callable[[Mapping[str, np.ndarray]], bool],
                 repair_function: Callable[[Assignment], None],
                 description: str = "custom relation") -> None:
        if not fields:
            raise ValueError("RelationConstraint needs at least one field")
        self.fields = tuple(fields)
        self.predicate = predicate
        self.repair_function = repair_function
        self.description = description

    def check(self, assignment: Mapping[str, np.ndarray]) -> Optional[ConstraintViolation]:
        self._require(assignment)
        if not self.predicate(assignment):
            return ConstraintViolation(self, f"violated: {self.description}")
        return None

    def repair(self, assignment: Assignment) -> None:
        self.repair_function(assignment)


class ConstraintSet:
    """A collection of constraints with validation, repair and sampling."""

    def __init__(self, constraints: Iterable[Constraint] = ()) -> None:
        self.constraints: List[Constraint] = list(constraints)

    def add(self, constraint: Constraint) -> "ConstraintSet":
        self.constraints.append(constraint)
        return self

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self):
        return iter(self.constraints)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def violations(self, assignment: Mapping[str, np.ndarray]) -> List[ConstraintViolation]:
        """All constraints violated by ``assignment``."""
        found = []
        for constraint in self.constraints:
            violation = constraint.check(assignment)
            if violation is not None:
                found.append(violation)
        return found

    def is_satisfied(self, assignment: Mapping[str, np.ndarray]) -> bool:
        return not self.violations(assignment)

    def validate(self, assignment: Mapping[str, np.ndarray]) -> None:
        """Raise :class:`ValueError` listing every violated constraint."""
        violations = self.violations(assignment)
        if violations:
            details = "; ".join(str(violation) for violation in violations)
            raise ValueError(f"constraint violations: {details}")

    # ------------------------------------------------------------------
    # Repair (projection onto the feasible region)
    # ------------------------------------------------------------------
    def repair(self, assignment: Assignment, max_passes: int = 8) -> Assignment:
        """Apply each constraint's repair until the assignment is feasible.

        Constraint repairs can interact (repairing one may re-violate
        another), so repairs are applied in rounds until a fixed point or the
        pass limit.  Raises if the assignment is still infeasible afterwards,
        which indicates the constraints are mutually inconsistent.
        """
        for _ in range(max_passes):
            if self.is_satisfied(assignment):
                return assignment
            for constraint in self.constraints:
                if constraint.check(assignment) is not None:
                    constraint.repair(assignment)
        self.validate(assignment)
        return assignment

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def rejection_sample(self, sampler: Callable[[np.random.Generator], Assignment],
                         rng: np.random.Generator, max_attempts: int = 200,
                         repair_on_failure: bool = True) -> Assignment:
        """Draw from ``sampler`` until the constraints hold.

        The paper notes that sampling valid configurations efficiently is an
        open problem for richly constrained simulators; rejection sampling
        with a repair fallback is the simple baseline this reproduction
        provides.  If no feasible sample is drawn within ``max_attempts`` and
        ``repair_on_failure`` is set, the last sample is repaired instead.
        """
        last: Optional[Assignment] = None
        for _ in range(max_attempts):
            candidate = sampler(rng)
            last = candidate
            if self.is_satisfied(candidate):
                return candidate
        if last is None:
            raise ValueError("sampler produced no assignments")
        if repair_on_failure:
            return self.repair(last)
        raise ValueError(f"no feasible sample within {max_attempts} attempts")

    def acceptance_rate(self, sampler: Callable[[np.random.Generator], Assignment],
                        rng: np.random.Generator, num_samples: int = 100) -> float:
        """Fraction of raw samples that already satisfy every constraint."""
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        accepted = 0
        for _ in range(num_samples):
            if self.is_satisfied(sampler(rng)):
                accepted += 1
        return accepted / num_samples
