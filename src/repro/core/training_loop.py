"""The shared minibatch training loop behind both DiffTune phases.

Phase one (surrogate training, Equation 2) and phase two (parameter-table
optimization, Equation 3) used to carry their own copies of the same
epoch/minibatch machinery: shuffle an index permutation, slice it into
batches, run forward/backward, clip the global gradient norm, step the
optimizer, and fire throttled progress callbacks.  This module is the single
implementation both phases now run on.

The loop is deliberately ignorant of *what* is being trained — it receives
an optimizer and a ``compute_batch_loss`` callable mapping a batch index
array to a scalar loss tensor.  Everything phase-specific (featurization,
packing, batched vs per-example forward, frozen-dimension restoration) lives
in the callable and the optional ``post_step`` hook.

Determinism contract: the only randomness consumed from ``rng`` is one
``shuffle`` call per epoch when ``shuffle=True``, exactly as the two
previously duplicated loops did — so refactored callers reproduce their old
loss trajectories bit for bit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.autodiff.optim import Optimizer
from repro.autodiff.tensor import Tensor


@dataclass
class MinibatchLoopResult:
    """Timing and loss summary of one :func:`run_minibatch_loop` call."""

    epoch_losses: List[float]
    examples_processed: int
    elapsed_seconds: float

    @property
    def examples_per_second(self) -> float:
        return self.examples_processed / max(self.elapsed_seconds, 1e-9)


def run_minibatch_loop(num_examples: int,
                       compute_batch_loss: Callable[[np.ndarray], Tensor],
                       optimizer: Optimizer,
                       rng: np.random.Generator,
                       *,
                       batch_size: int,
                       epochs: int,
                       shuffle: bool = True,
                       gradient_clip: float = 0.0,
                       log_every: int = 0,
                       post_step: Optional[Callable[[], None]] = None,
                       progress: Optional[Callable[[int, int, float], None]] = None
                       ) -> MinibatchLoopResult:
    """Run the shared epoch/minibatch optimization loop.

    Args:
        num_examples: Dataset size; batches are index slices of
            ``np.arange(num_examples)``.
        compute_batch_loss: Maps one batch index array to the scalar loss
            tensor to backpropagate.
        optimizer: Steps after each batch; its parameters' gradients are
            zeroed before each backward pass.
        rng: Source of the per-epoch shuffle (one draw per epoch when
            ``shuffle`` is set, none otherwise).
        batch_size: Minibatch size (the final batch may be partial).
        epochs: Number of passes over the dataset.
        shuffle: Reshuffle the index permutation at the start of each epoch.
        gradient_clip: Global gradient-norm clip applied before each step
            (``<= 0`` disables clipping).
        log_every: Fire ``progress`` every N batches, plus always on the
            final (possibly partial) batch of each epoch; ``0`` disables the
            callback entirely.
        post_step: Optional hook run after every optimizer step (e.g.
            restoring frozen parameter dimensions).
        progress: Optional callback ``(epoch, batch_index, loss)``.

    Returns:
        Per-epoch mean losses plus wall-time/throughput counters.
    """
    if num_examples < 1:
        raise ValueError("the training loop needs at least one example")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    order = np.arange(num_examples)
    num_batches = (num_examples + batch_size - 1) // batch_size
    epoch_losses: List[float] = []
    start_time = time.perf_counter()
    for epoch in range(epochs):
        if shuffle:
            rng.shuffle(order)
        batch_losses: List[float] = []
        for batch_start in range(0, num_examples, batch_size):
            batch_indices = order[batch_start:batch_start + batch_size]
            loss = compute_batch_loss(batch_indices)
            optimizer.zero_grad()
            loss.backward()
            if gradient_clip > 0:
                optimizer.clip_grad_norm(gradient_clip)
            optimizer.step()
            if post_step is not None:
                post_step()
            batch_losses.append(loss.item())
            if progress is not None and log_every:
                batch_index = batch_start // batch_size
                is_final_batch = batch_index == num_batches - 1
                if batch_index % log_every == 0 or is_final_batch:
                    progress(epoch, batch_index, batch_losses[-1])
        epoch_losses.append(float(np.mean(batch_losses)))
    elapsed = time.perf_counter() - start_time
    return MinibatchLoopResult(epoch_losses=epoch_losses,
                               examples_processed=num_examples * epochs,
                               elapsed_seconds=elapsed)
