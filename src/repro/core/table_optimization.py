"""Phase two of DiffTune: optimizing the parameter table through the surrogate.

Solves Equation (3) of the paper: with the surrogate's weights frozen, the
parameter table itself becomes the trainable object.  It is initialized to a
random sample from the parameter sampling distribution, and trained with Adam
against the ground-truth dataset under MAPE loss.  During this phase the
absolute value of lower-bounded parameters is taken before they are passed to
the surrogate (Section IV, "Solving the optimization problems").

Like surrogate training (phase one), two execution paths produce the same
losses and gradients (pinned within 1e-9 by property tests):

* the **batched fast path** (default) featurizes every block once per run
  through a :class:`~repro.core.surrogate.FeaturizationCache`, packs each
  minibatch into one padded :class:`~repro.core.surrogate.PackedBlockBatch`,
  gathers the trainable table's rows for the whole batch with the scatter-add
  ``gather`` primitive (so gradients of repeated opcodes accumulate into the
  same table row), and advances the minibatch through the surrogate's
  ``forward_batch``;
* the **per-block path** (``TableOptimizationConfig(batched=False)``, or any
  surrogate without a batched forward) runs one block at a time — the
  original semantics, kept as the equivalence reference.

Both run on the shared :mod:`~repro.core.training_loop` implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.autodiff.modules import Parameter
from repro.autodiff.optim import Adam
from repro.autodiff.tensor import Tensor, gather
from repro.core.losses import surrogate_loss
from repro.core.parameters import ParameterArrays, ParameterSpec
from repro.core.surrogate import FeaturizationCache, PackedBlockBatch, _SurrogateBase
from repro.core.training_loop import run_minibatch_loop
from repro.isa.basic_block import BasicBlock


@dataclass
class TableOptimizationConfig:
    """Hyper-parameters for parameter-table training.

    The paper trains the table with Adam at learning rate 0.05 for one epoch
    over the ground-truth training set.  Because the learned values are
    normalized by their field scales before entering the surrogate here, the
    same relative step is achieved with a comparable learning rate in
    normalized space.

    ``batched`` selects the batch-major fast path (on by default); it falls
    back to the per-block loop automatically for surrogates that do not
    implement ``forward_batch``.  ``log_every`` throttles the progress
    callback (every N batches plus the final batch of each epoch; the default
    of 1 preserves the historical every-batch behaviour).
    """

    learning_rate: float = 0.05
    batch_size: int = 16
    epochs: int = 1
    gradient_clip: float = 5.0
    shuffle: bool = True
    seed: int = 0
    batched: bool = True
    log_every: int = 1


@dataclass
class TableOptimizationResult:
    """Outcome of parameter-table training."""

    learned_arrays: ParameterArrays
    epoch_losses: List[float]
    initial_arrays: ParameterArrays
    used_batched_path: bool = False
    examples_per_second: float = 0.0


class _TrainableTable:
    """The parameter table as trainable tensors in surrogate input space.

    The stored values live in the surrogate's *normalized, lower-bound-free*
    space; :meth:`to_parameter_arrays` undoes the normalization and restores
    the lower bounds (with the absolute-value convention) to produce values in
    the simulator's own units.
    """

    def __init__(self, spec: ParameterSpec, initial: ParameterArrays) -> None:
        self.spec = spec
        normalized = spec.normalize_for_surrogate_training(initial)
        self.per_instruction = Parameter(normalized.per_instruction_values,
                                         name="per_instruction_parameters")
        self.global_values = Parameter(normalized.global_values, name="global_parameters")

    def parameters(self) -> List[Parameter]:
        parameters = [self.per_instruction]
        if self.global_values.size > 0:
            parameters.append(self.global_values)
        return parameters

    def surrogate_inputs(self, opcode_indices: Sequence[int]) -> Tuple[Tensor, Tensor]:
        """Inputs for one block: |values| rows for its opcodes plus globals.

        The absolute value enforces the lower bound as in the paper; the upper
        clamp at 1 (the top of the normalized sampling range) keeps the inputs
        inside the region the surrogate was trained on — the paper's Section
        VII notes that the surrogate cannot be trusted to extrapolate outside
        its sampling distribution, and at this reproduction's scale the
        optimizer readily wanders there without the clamp.
        """
        rows = self.per_instruction[list(opcode_indices)].abs().clamp(0.0, 1.0)
        global_vector = self.global_values.abs().clamp(0.0, 1.0)
        return rows, global_vector

    def surrogate_inputs_batch(self, batch: PackedBlockBatch) -> Tuple[Tensor, Tensor]:
        """Batch-major inputs: gathered ``(B, I, D)`` rows plus ``(B, G)`` globals.

        ``gather`` scatter-adds gradients, so every occurrence of an opcode —
        across instructions and across blocks of the minibatch — accumulates
        into the same trainable row, exactly like the per-block path's
        repeated fancy-indexing.  Padded instruction slots gather row 0, but
        the surrogate's masked reductions route zero gradient to them.
        """
        rows = gather(self.per_instruction, batch.opcode_indices).abs().clamp(0.0, 1.0)
        global_vector = self.global_values.abs().clamp(0.0, 1.0)
        global_matrix = global_vector.reshape(1, global_vector.size).broadcast_to(
            (batch.batch_size, global_vector.size))
        return rows, global_matrix

    def to_parameter_arrays(self) -> ParameterArrays:
        """Convert back to simulator units: clamp(|x|, 0, 1) * scale + lower_bound."""
        spec = self.spec
        per_instruction = (np.clip(np.abs(self.per_instruction.data), 0.0, 1.0)
                           * spec.per_instruction_scales()
                           + spec.per_instruction_lower_bounds())
        global_values = (np.clip(np.abs(self.global_values.data), 0.0, 1.0)
                         * spec.global_scales()
                         + spec.global_lower_bounds())
        return ParameterArrays(global_values=global_values,
                               per_instruction_values=per_instruction)


def optimize_parameter_table(surrogate: _SurrogateBase,
                             blocks: Sequence[BasicBlock],
                             true_timings: np.ndarray,
                             config: TableOptimizationConfig,
                             initial_arrays: Optional[ParameterArrays] = None,
                             progress: Optional[Callable[[int, int, float], None]] = None,
                             frozen_per_instruction_mask: Optional[np.ndarray] = None,
                             frozen_global_mask: Optional[np.ndarray] = None
                             ) -> TableOptimizationResult:
    """Optimize the simulator's parameter table through the frozen surrogate.

    Args:
        surrogate: A trained surrogate; its weights are *not* updated.
        blocks: Ground-truth training blocks.
        true_timings: Measured timings aligned with ``blocks``.
        config: Optimization hyper-parameters.
        initial_arrays: Starting point; defaults to a random sample from the
            parameter sampling distribution, as in the paper.
        progress: Optional callback ``(epoch, batch, loss)``.
        frozen_per_instruction_mask: Optional boolean mask over per-instruction
            parameter dimensions; ``True`` dimensions are held at their initial
            values.  Used when only a subset of fields is learned (e.g. the
            WriteLatency-only experiment), so the optimizer cannot "spend" its
            loss reduction on fields the extracted table will not use.
        frozen_global_mask: Same, for the global parameter vector.
    """
    if len(blocks) != len(true_timings):
        raise ValueError("blocks and true_timings must be aligned")
    if len(blocks) == 0:
        raise ValueError("cannot optimize the table against an empty dataset")
    spec = surrogate.spec
    rng = np.random.default_rng(config.seed)
    if initial_arrays is None:
        initial_arrays = spec.sample(rng)
    table = _TrainableTable(spec, initial_arrays)
    optimizer = Adam(table.parameters(), lr=config.learning_rate)
    frozen_per_instruction_values = table.per_instruction.data.copy()
    frozen_global_values = table.global_values.data.copy()

    def restore_frozen() -> None:
        if frozen_per_instruction_mask is not None:
            table.per_instruction.data[:, frozen_per_instruction_mask] = \
                frozen_per_instruction_values[:, frozen_per_instruction_mask]
        if frozen_global_mask is not None and table.global_values.size > 0:
            table.global_values.data[frozen_global_mask] = \
                frozen_global_values[frozen_global_mask]

    surrogate.eval()
    use_batched = bool(config.batched) and surrogate.supports_batched_forward
    targets = np.asarray(true_timings, dtype=np.float64)
    # Featurize each distinct block once for the whole run — on *both* paths.
    # The per-block path used to re-featurize inside the batch loop on every
    # epoch, which was quadratically wasteful for multi-epoch runs.
    cache = FeaturizationCache(surrogate.featurizer)
    featurized = [cache.featurize(block) for block in blocks]

    def _batched_loss(batch_indices: np.ndarray):
        rows = [int(index) for index in batch_indices]
        packed = cache.pack([featurized[row] for row in rows])
        per_instruction, global_matrix = table.surrogate_inputs_batch(packed)
        predictions = surrogate.forward_batch(packed, per_instruction, global_matrix)
        return surrogate_loss(predictions, [float(targets[row]) for row in rows])

    def _per_block_loss(batch_indices: np.ndarray):
        predictions = []
        batch_targets = []
        for block_index in batch_indices:
            block_featurized = featurized[int(block_index)]
            rows, global_vector = table.surrogate_inputs(block_featurized.opcode_indices)
            predictions.append(surrogate.forward(block_featurized, rows, global_vector))
            batch_targets.append(float(targets[int(block_index)]))
        return surrogate_loss(predictions, batch_targets)

    loop = run_minibatch_loop(
        len(blocks), _batched_loss if use_batched else _per_block_loss,
        optimizer, rng,
        batch_size=config.batch_size, epochs=config.epochs,
        shuffle=config.shuffle, gradient_clip=config.gradient_clip,
        log_every=config.log_every, post_step=restore_frozen, progress=progress)

    return TableOptimizationResult(learned_arrays=table.to_parameter_arrays(),
                                   epoch_losses=loop.epoch_losses,
                                   initial_arrays=initial_arrays,
                                   used_batched_path=use_batched,
                                   examples_per_second=loop.examples_per_second)
