"""Phase two of DiffTune: optimizing the parameter table through the surrogate.

Solves Equation (3) of the paper: with the surrogate's weights frozen, the
parameter table itself becomes the trainable object.  It is initialized to a
random sample from the parameter sampling distribution, and trained with Adam
against the ground-truth dataset under MAPE loss.  During this phase the
absolute value of lower-bounded parameters is taken before they are passed to
the surrogate (Section IV, "Solving the optimization problems").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.autodiff.modules import Parameter
from repro.autodiff.optim import Adam
from repro.autodiff.tensor import Tensor
from repro.core.losses import surrogate_loss
from repro.core.parameters import ParameterArrays, ParameterSpec
from repro.core.surrogate import _SurrogateBase
from repro.isa.basic_block import BasicBlock


@dataclass
class TableOptimizationConfig:
    """Hyper-parameters for parameter-table training.

    The paper trains the table with Adam at learning rate 0.05 for one epoch
    over the ground-truth training set.  Because the learned values are
    normalized by their field scales before entering the surrogate here, the
    same relative step is achieved with a comparable learning rate in
    normalized space.
    """

    learning_rate: float = 0.05
    batch_size: int = 16
    epochs: int = 1
    gradient_clip: float = 5.0
    shuffle: bool = True
    seed: int = 0


@dataclass
class TableOptimizationResult:
    """Outcome of parameter-table training."""

    learned_arrays: ParameterArrays
    epoch_losses: List[float]
    initial_arrays: ParameterArrays


class _TrainableTable:
    """The parameter table as trainable tensors in surrogate input space.

    The stored values live in the surrogate's *normalized, lower-bound-free*
    space; :meth:`to_parameter_arrays` undoes the normalization and restores
    the lower bounds (with the absolute-value convention) to produce values in
    the simulator's own units.
    """

    def __init__(self, spec: ParameterSpec, initial: ParameterArrays) -> None:
        self.spec = spec
        normalized = spec.normalize_for_surrogate_training(initial)
        self.per_instruction = Parameter(normalized.per_instruction_values,
                                         name="per_instruction_parameters")
        self.global_values = Parameter(normalized.global_values, name="global_parameters")

    def parameters(self) -> List[Parameter]:
        parameters = [self.per_instruction]
        if self.global_values.size > 0:
            parameters.append(self.global_values)
        return parameters

    def surrogate_inputs(self, opcode_indices: Sequence[int]) -> Tuple[Tensor, Tensor]:
        """Inputs for one block: |values| rows for its opcodes plus globals.

        The absolute value enforces the lower bound as in the paper; the upper
        clamp at 1 (the top of the normalized sampling range) keeps the inputs
        inside the region the surrogate was trained on — the paper's Section
        VII notes that the surrogate cannot be trusted to extrapolate outside
        its sampling distribution, and at this reproduction's scale the
        optimizer readily wanders there without the clamp.
        """
        rows = self.per_instruction[list(opcode_indices)].abs().clamp(0.0, 1.0)
        global_vector = self.global_values.abs().clamp(0.0, 1.0)
        return rows, global_vector

    def to_parameter_arrays(self) -> ParameterArrays:
        """Convert back to simulator units: clamp(|x|, 0, 1) * scale + lower_bound."""
        spec = self.spec
        per_instruction = (np.clip(np.abs(self.per_instruction.data), 0.0, 1.0)
                           * spec.per_instruction_scales()
                           + spec.per_instruction_lower_bounds())
        global_values = (np.clip(np.abs(self.global_values.data), 0.0, 1.0)
                         * spec.global_scales()
                         + spec.global_lower_bounds())
        return ParameterArrays(global_values=global_values,
                               per_instruction_values=per_instruction)


def optimize_parameter_table(surrogate: _SurrogateBase,
                             blocks: Sequence[BasicBlock],
                             true_timings: np.ndarray,
                             config: TableOptimizationConfig,
                             initial_arrays: Optional[ParameterArrays] = None,
                             progress: Optional[Callable[[int, int, float], None]] = None,
                             frozen_per_instruction_mask: Optional[np.ndarray] = None,
                             frozen_global_mask: Optional[np.ndarray] = None
                             ) -> TableOptimizationResult:
    """Optimize the simulator's parameter table through the frozen surrogate.

    Args:
        surrogate: A trained surrogate; its weights are *not* updated.
        blocks: Ground-truth training blocks.
        true_timings: Measured timings aligned with ``blocks``.
        config: Optimization hyper-parameters.
        initial_arrays: Starting point; defaults to a random sample from the
            parameter sampling distribution, as in the paper.
        progress: Optional callback ``(epoch, batch, loss)``.
        frozen_per_instruction_mask: Optional boolean mask over per-instruction
            parameter dimensions; ``True`` dimensions are held at their initial
            values.  Used when only a subset of fields is learned (e.g. the
            WriteLatency-only experiment), so the optimizer cannot "spend" its
            loss reduction on fields the extracted table will not use.
        frozen_global_mask: Same, for the global parameter vector.
    """
    if len(blocks) != len(true_timings):
        raise ValueError("blocks and true_timings must be aligned")
    if len(blocks) == 0:
        raise ValueError("cannot optimize the table against an empty dataset")
    spec = surrogate.spec
    rng = np.random.default_rng(config.seed)
    if initial_arrays is None:
        initial_arrays = spec.sample(rng)
    table = _TrainableTable(spec, initial_arrays)
    optimizer = Adam(table.parameters(), lr=config.learning_rate)
    frozen_per_instruction_values = table.per_instruction.data.copy()
    frozen_global_values = table.global_values.data.copy()

    def restore_frozen() -> None:
        if frozen_per_instruction_mask is not None:
            table.per_instruction.data[:, frozen_per_instruction_mask] = \
                frozen_per_instruction_values[:, frozen_per_instruction_mask]
        if frozen_global_mask is not None and table.global_values.size > 0:
            table.global_values.data[frozen_global_mask] = \
                frozen_global_values[frozen_global_mask]

    surrogate.eval()
    order = np.arange(len(blocks))
    epoch_losses: List[float] = []
    for epoch in range(config.epochs):
        if config.shuffle:
            rng.shuffle(order)
        batch_losses: List[float] = []
        for batch_start in range(0, len(order), config.batch_size):
            batch_indices = order[batch_start:batch_start + config.batch_size]
            predictions = []
            targets = []
            for block_index in batch_indices:
                block = blocks[int(block_index)]
                featurized = surrogate.featurizer.featurize(block)
                rows, global_vector = table.surrogate_inputs(featurized.opcode_indices)
                predictions.append(surrogate.forward(featurized, rows, global_vector))
                targets.append(float(true_timings[int(block_index)]))
            loss = surrogate_loss(predictions, targets)
            optimizer.zero_grad()
            loss.backward()
            optimizer.clip_grad_norm(config.gradient_clip)
            optimizer.step()
            restore_frozen()
            batch_losses.append(loss.item())
            if progress is not None:
                progress(epoch, batch_start // config.batch_size, batch_losses[-1])
        epoch_losses.append(float(np.mean(batch_losses)))

    return TableOptimizationResult(learned_arrays=table.to_parameter_arrays(),
                                   epoch_losses=epoch_losses,
                                   initial_arrays=initial_arrays)
