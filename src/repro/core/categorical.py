"""Categorical and boolean parameter support.

The paper's DiffTune implementation only handles *ordinal* parameters
(Section VII, "Non-ordinal parameters"): integers relaxed to reals during
optimization and rounded back afterwards.  The same section identifies
categorical and boolean parameters as the natural next step and names one-hot
encoding as a candidate relaxation.  This module implements that extension:

* :class:`CategoricalField` describes one categorical (or boolean) parameter:
  its name, its legal choices, and whether it is global or per-instruction.
* :class:`CategoricalRelaxation` maps between discrete choices and continuous
  *logit* vectors.  During optimization a categorical parameter is represented
  by a real-valued logit per choice; the surrogate receives the softmax of the
  logits (a point on the probability simplex), so gradients flow into every
  logit.  Extraction takes the arg-max choice, mirroring how ordinal
  parameters are rounded.
* :class:`CategoricalTable` holds the logits for a set of fields and supports
  sampling (uniform or Dirichlet-concentrated), extraction, and simulator-side
  encoding.

The llvm-mca model in this repository has no categorical parameters, so the
extension is exercised by the custom-simulator example and its tests; it is
deliberately independent of :class:`~repro.core.parameters.ParameterSpec` so
that it can wrap any simulator adapter that needs mixed parameter types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

Choice = Union[str, bool, int]


@dataclass(frozen=True)
class CategoricalField:
    """One categorical parameter.

    Attributes:
        name: Field name (e.g. ``"SchedulerPolicy"``).
        choices: The legal values, in a fixed order.  Booleans are expressed
            as ``(False, True)``.
        per_instruction: Whether the field has one value per opcode (``True``)
            or a single global value (``False``).
    """

    name: str
    choices: Tuple[Choice, ...]
    per_instruction: bool = False

    def __post_init__(self) -> None:
        if len(self.choices) < 2:
            raise ValueError(f"{self.name}: a categorical field needs >= 2 choices")
        if len(set(self.choices)) != len(self.choices):
            raise ValueError(f"{self.name}: choices must be unique")

    @property
    def num_choices(self) -> int:
        return len(self.choices)

    def index_of(self, choice: Choice) -> int:
        """Position of ``choice`` in the choice tuple."""
        try:
            return self.choices.index(choice)
        except ValueError:
            raise KeyError(f"{self.name}: unknown choice {choice!r}") from None

    @classmethod
    def boolean(cls, name: str, per_instruction: bool = False) -> "CategoricalField":
        """A boolean parameter encoded as the two-way categorical (False, True)."""
        return cls(name=name, choices=(False, True), per_instruction=per_instruction)


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exponentials = np.exp(shifted)
    return exponentials / np.sum(exponentials, axis=axis, keepdims=True)


def one_hot(index: int, num_choices: int) -> np.ndarray:
    """A one-hot vector of length ``num_choices`` with a 1 at ``index``."""
    if not 0 <= index < num_choices:
        raise IndexError(f"index {index} out of range for {num_choices} choices")
    vector = np.zeros(num_choices, dtype=np.float64)
    vector[index] = 1.0
    return vector


class CategoricalRelaxation:
    """Continuous relaxation of one categorical field.

    The relaxation stores one logit per choice (per opcode for
    per-instruction fields).  ``probabilities()`` is what the surrogate sees;
    ``extract()`` is what the simulator receives.
    """

    def __init__(self, field_: CategoricalField, num_opcodes: int = 1,
                 temperature: float = 1.0) -> None:
        if num_opcodes < 1:
            raise ValueError("num_opcodes must be >= 1")
        if temperature <= 0.0:
            raise ValueError("temperature must be positive")
        self.field = field_
        self.num_opcodes = num_opcodes if field_.per_instruction else 1
        self.temperature = temperature

    @property
    def logit_shape(self) -> Tuple[int, int]:
        return (self.num_opcodes, self.field.num_choices)

    def initial_logits(self, rng: np.random.Generator, scale: float = 0.1) -> np.ndarray:
        """Small random logits — a nearly uniform starting distribution."""
        return rng.normal(0.0, scale, size=self.logit_shape)

    def logits_for_choices(self, choices: Sequence[Choice], confidence: float = 4.0
                           ) -> np.ndarray:
        """Logits that put most probability mass on the given choices."""
        if len(choices) != self.num_opcodes:
            raise ValueError(
                f"{self.field.name}: expected {self.num_opcodes} choices, got {len(choices)}")
        logits = np.zeros(self.logit_shape)
        for row, choice in enumerate(choices):
            logits[row, self.field.index_of(choice)] = confidence
        return logits

    def probabilities(self, logits: np.ndarray) -> np.ndarray:
        """Simplex encoding the surrogate receives (softmax with temperature)."""
        logits = np.asarray(logits, dtype=np.float64).reshape(self.logit_shape)
        return softmax(logits / self.temperature, axis=-1)

    def extract(self, logits: np.ndarray) -> List[Choice]:
        """Discrete choices (arg-max per row), mirroring ordinal rounding."""
        logits = np.asarray(logits, dtype=np.float64).reshape(self.logit_shape)
        indices = np.argmax(logits, axis=-1)
        return [self.field.choices[int(index)] for index in indices]

    def sample_choices(self, rng: np.random.Generator) -> List[Choice]:
        """Uniformly sample a discrete choice per row (the 𝐷 distribution)."""
        indices = rng.integers(0, self.field.num_choices, size=self.num_opcodes)
        return [self.field.choices[int(index)] for index in indices]

    def encode_choices(self, choices: Sequence[Choice]) -> np.ndarray:
        """One-hot encoding of discrete choices (surrogate-training inputs)."""
        if len(choices) != self.num_opcodes:
            raise ValueError(
                f"{self.field.name}: expected {self.num_opcodes} choices, got {len(choices)}")
        return np.stack([one_hot(self.field.index_of(choice), self.field.num_choices)
                         for choice in choices])


class CategoricalTable:
    """The logits for a set of categorical fields, with sampling and extraction.

    This plays the same role for categorical parameters that
    :class:`~repro.core.parameters.ParameterArrays` plays for ordinal ones:
    a concrete assignment in optimization layout.
    """

    def __init__(self, fields: Sequence[CategoricalField], num_opcodes: int = 1,
                 temperature: float = 1.0) -> None:
        names = [field_.name for field_ in fields]
        if len(set(names)) != len(names):
            raise ValueError("categorical field names must be unique")
        self.fields: List[CategoricalField] = list(fields)
        self.num_opcodes = num_opcodes
        self.relaxations: Dict[str, CategoricalRelaxation] = {
            field_.name: CategoricalRelaxation(field_, num_opcodes, temperature)
            for field_ in fields}
        self.logits: Dict[str, np.ndarray] = {
            name: np.zeros(relaxation.logit_shape)
            for name, relaxation in self.relaxations.items()}

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def field_names(self) -> List[str]:
        return [field_.name for field_ in self.fields]

    def relaxation(self, name: str) -> CategoricalRelaxation:
        if name not in self.relaxations:
            raise KeyError(f"unknown categorical field: {name}")
        return self.relaxations[name]

    def set_logits(self, name: str, logits: np.ndarray) -> None:
        relaxation = self.relaxation(name)
        logits = np.asarray(logits, dtype=np.float64).reshape(relaxation.logit_shape)
        self.logits[name] = logits.copy()

    def set_choices(self, name: str, choices: Sequence[Choice]) -> None:
        """Pin a field to concrete discrete choices (high-confidence logits)."""
        relaxation = self.relaxation(name)
        self.logits[name] = relaxation.logits_for_choices(choices)

    # ------------------------------------------------------------------
    # Sampling, surrogate inputs and extraction
    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> Dict[str, List[Choice]]:
        """Sample discrete choices for every field (for simulated datasets)."""
        return {name: relaxation.sample_choices(rng)
                for name, relaxation in self.relaxations.items()}

    def randomize_logits(self, rng: np.random.Generator, scale: float = 0.1) -> None:
        """Re-initialize every field's logits near the uniform distribution."""
        for name, relaxation in self.relaxations.items():
            self.logits[name] = relaxation.initial_logits(rng, scale=scale)

    def surrogate_inputs(self) -> Dict[str, np.ndarray]:
        """Simplex encodings of the current logits, keyed by field name."""
        return {name: relaxation.probabilities(self.logits[name])
                for name, relaxation in self.relaxations.items()}

    def encode_assignment(self, assignment: Mapping[str, Sequence[Choice]]
                          ) -> Dict[str, np.ndarray]:
        """One-hot encodings of a discrete assignment (surrogate training)."""
        encoded = {}
        for name, relaxation in self.relaxations.items():
            if name not in assignment:
                raise KeyError(f"assignment missing categorical field {name}")
            encoded[name] = relaxation.encode_choices(assignment[name])
        return encoded

    def extract(self) -> Dict[str, List[Choice]]:
        """Discrete choices for every field from the current logits."""
        return {name: relaxation.extract(self.logits[name])
                for name, relaxation in self.relaxations.items()}

    def flat_vector(self) -> np.ndarray:
        """All logits flattened in field order (for black-box baselines)."""
        return np.concatenate([self.logits[field_.name].ravel() for field_ in self.fields]) \
            if self.fields else np.zeros(0)

    def load_flat_vector(self, vector: np.ndarray) -> None:
        """Inverse of :meth:`flat_vector`."""
        vector = np.asarray(vector, dtype=np.float64)
        expected = sum(int(np.prod(self.relaxations[field_.name].logit_shape))
                       for field_ in self.fields)
        if vector.size != expected:
            raise ValueError(f"expected {expected} values, got {vector.size}")
        cursor = 0
        for field_ in self.fields:
            relaxation = self.relaxations[field_.name]
            size = int(np.prod(relaxation.logit_shape))
            self.logits[field_.name] = vector[cursor:cursor + size].reshape(
                relaxation.logit_shape).copy()
            cursor += size
