"""Loss functions used by the two DiffTune optimization phases.

Both phases optimize the mean absolute percentage error (MAPE), matching the
error definition of Section V-A.  During surrogate training the target is the
*simulated* timing; during parameter-table training the target is the
*measured* (ground-truth) timing.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.autodiff import functional as F
from repro.autodiff.tensor import Tensor, stack


def mape_loss_value(predictions: np.ndarray, targets: np.ndarray,
                    epsilon: float = 1e-9) -> float:
    """Plain NumPy MAPE (for evaluation, not differentiation)."""
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    return float(np.mean(np.abs(predictions - targets) / np.maximum(np.abs(targets), epsilon)))


def surrogate_loss(predictions, targets: Sequence[float],
                   epsilon: float = 1e-6) -> Tensor:
    """Differentiable MAPE over a batch of predictions.

    ``predictions`` is either a sequence of scalar tensors (the per-example
    path stacks them) or a single 1-D :class:`Tensor` of shape ``(B,)`` (the
    batched fast path hands the whole minibatch over at once).  Both routes
    compute the identical loss expression.
    """
    if isinstance(predictions, Tensor):
        if predictions.ndim != 1:
            raise ValueError(
                f"batched surrogate loss expects a 1-D prediction tensor, "
                f"got shape {predictions.shape}")
        prediction_vector = predictions
    else:
        if not predictions:
            raise ValueError("cannot compute a loss over an empty batch")
        prediction_vector = stack(list(predictions))
    if len(prediction_vector) != len(targets):
        raise ValueError("predictions and targets must have the same length")
    target_array = np.maximum(np.abs(np.asarray(targets, dtype=np.float64)), epsilon)
    diff = (prediction_vector - Tensor(target_array)).abs()
    return (diff / Tensor(target_array)).mean()
