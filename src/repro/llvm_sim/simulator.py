"""The llvm_sim-style micro-op-level simulator.

Pipeline (Appendix A of the paper):

1. instructions are fetched and decoded into micro-ops (frontend modeled);
2. registers are renamed with an unlimited physical register file — so only
   true (read-after-write) dependencies matter;
3. micro-ops dispatch out of order once their instruction's register sources
   are ready;
4. micro-ops execute on their assigned execution port (one micro-op per port
   per cycle);
5. instructions retire in order once all of their micro-ops have executed.

Timing follows the same convention as the llvm-mca simulator: steady-state
cycles per iteration of the block executed in a loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.binding import LLVMSimBoundBlock, bind_llvm_sim_block
from repro.engine.compile import BlockCompiler
from repro.isa.basic_block import BasicBlock
from repro.llvm_sim.frontend import Frontend
from repro.llvm_sim.params import LLVMSimParameterTable, NUM_PORTS


@dataclass
class LLVMSimResult:
    """Outcome of an llvm_sim simulation."""

    cycles_per_iteration: float
    total_cycles: int
    iterations_simulated: int

    @property
    def timing(self) -> float:
        return self.cycles_per_iteration


def simulate_bound_llvm_sim(bound: LLVMSimBoundBlock, frontend_uops_per_cycle: int,
                            warmup: int, measure: int) -> LLVMSimResult:
    """Execute one compiled-and-bound block through the llvm_sim pipeline.

    The simulation kernel shared by :class:`LLVMSimSimulator` and the engine
    layer; registers are block-local integer ids (see
    :mod:`repro.engine.compile`), so the scoreboard is a flat list.  The
    cycle-level semantics are identical to the original per-call
    implementation.
    """
    total_iterations = warmup + measure
    frontend = Frontend(uops_per_cycle=frontend_uops_per_cycle)

    # Port availability: next free cycle per port.
    port_free = [0] * NUM_PORTS
    register_ready = [0] * bound.compiled.num_registers
    previous_retire = 0
    iteration_end_cycles: List[int] = []

    for _ in range(total_iterations):
        for sources, destinations, latency, micro_op_ports in bound.instructions:
            # Frontend: all the instruction's micro-ops must be delivered.
            delivery = 0
            for _ in micro_op_ports:
                delivery = max(delivery, frontend.next_delivery_cycle())

            # Rename/dispatch: wait for the instruction's register sources.
            ready = delivery
            for register in sources:
                ready = max(ready, register_ready[register])

            # Execute micro-ops: each occupies its port for one cycle;
            # the instruction's result is available WriteLatency cycles
            # after its last micro-op starts executing.
            last_start = ready
            for port in micro_op_ports:
                if port < 0:
                    start = ready
                else:
                    start = max(ready, port_free[port])
                    port_free[port] = start + 1
                last_start = max(last_start, start)
            write_back = last_start + latency
            for register in destinations:
                register_ready[register] = write_back

            # Retire in order once every micro-op has finished.
            completion = max(write_back, last_start + 1)
            previous_retire = max(previous_retire, completion)
        iteration_end_cycles.append(previous_retire)

    if total_iterations > warmup:
        start_cycle = iteration_end_cycles[warmup - 1] if warmup > 0 else 0
        cycles_per_iteration = (iteration_end_cycles[-1] - start_cycle) / measure
    else:
        cycles_per_iteration = iteration_end_cycles[-1] / max(1, total_iterations)
    return LLVMSimResult(
        cycles_per_iteration=float(max(cycles_per_iteration, 0.01)),
        total_cycles=int(iteration_end_cycles[-1]),
        iterations_simulated=total_iterations,
    )


class LLVMSimSimulator:
    """Simulates basic blocks under an :class:`LLVMSimParameterTable`."""

    def __init__(self, parameters: LLVMSimParameterTable,
                 frontend_uops_per_cycle: int = 4,
                 warmup_iterations: int = 4,
                 measure_iterations: int = 8,
                 max_dynamic_instructions: int = 2048,
                 compiler: Optional[BlockCompiler] = None) -> None:
        self.parameters = parameters
        self.frontend_uops_per_cycle = frontend_uops_per_cycle
        self.warmup_iterations = warmup_iterations
        self.measure_iterations = measure_iterations
        self.max_dynamic_instructions = max_dynamic_instructions
        self.compiler = compiler or BlockCompiler(parameters.opcode_table)

    def _iteration_counts(self, block_length: int) -> Tuple[int, int]:
        warmup = self.warmup_iterations
        measure = self.measure_iterations
        while (warmup + measure) * block_length > self.max_dynamic_instructions and measure > 2:
            measure -= 1
        while (warmup + measure) * block_length > self.max_dynamic_instructions and warmup > 1:
            warmup -= 1
        return warmup, measure

    def simulate(self, block: BasicBlock) -> LLVMSimResult:
        compiled = self.compiler.compile(block)
        bound = bind_llvm_sim_block(self.parameters, compiled)
        warmup, measure = self._iteration_counts(len(block))
        return simulate_bound_llvm_sim(bound, self.frontend_uops_per_cycle, warmup, measure)

    def predict_timing(self, block: BasicBlock) -> float:
        return self.simulate(block).cycles_per_iteration

    def predict_timing_batch(self, blocks: Sequence[BasicBlock],
                             chunk_size: Optional[int] = None,
                             compiled: Optional[Sequence] = None) -> np.ndarray:
        """Predict timings for ``blocks`` through the megabatch kernel.

        Bit-identical to calling :meth:`predict_timing` per block (see
        :mod:`repro.llvm_sim.megabatch`).  Degenerate iteration windows
        (``measure_iterations < 1``) fall back to the scalar path, whose
        averaging semantics the megabatch kernel does not model.  Callers
        that already hold the blocks' compiled forms (the engine does) pass
        them via ``compiled`` to skip the compile-cache lookups.
        """
        from repro.engine.megabatch import (DEFAULT_MEGABATCH_CHUNK,
                                            megabatch_timings,
                                            shrink_iteration_counts)
        from repro.llvm_sim.megabatch import simulate_packed_llvm_sim

        blocks = list(blocks)
        if self.measure_iterations < 1 or self.warmup_iterations < 0:
            return np.array([self.predict_timing(block) for block in blocks],
                            dtype=np.float64)
        frontend = Frontend(uops_per_cycle=self.frontend_uops_per_cycle)
        if compiled is None:
            compiled = [self.compiler.compile(block) for block in blocks]
        lengths = np.fromiter((block.length for block in compiled),
                              dtype=np.int64, count=len(compiled))
        warmup, measure = shrink_iteration_counts(
            lengths, self.warmup_iterations, self.measure_iterations,
            self.max_dynamic_instructions)

        def kernel(corpus, chunk_warmup, chunk_measure):
            return simulate_packed_llvm_sim(
                self.parameters, corpus, frontend.uops_per_cycle,
                frontend.decode_latency, chunk_warmup, chunk_measure)

        def scalar_kernel(block, block_warmup, block_measure):
            bound = bind_llvm_sim_block(self.parameters, block)
            return simulate_bound_llvm_sim(
                bound, self.frontend_uops_per_cycle, block_warmup,
                block_measure).cycles_per_iteration

        return megabatch_timings(compiled, warmup, measure, kernel,
                                 chunk_size=chunk_size or DEFAULT_MEGABATCH_CHUNK,
                                 scalar_kernel=scalar_kernel)

    def predict_many(self, blocks: Sequence[BasicBlock]) -> np.ndarray:
        from repro.engine.megabatch import predict_timings_megabatch

        return predict_timings_megabatch(self, blocks)
