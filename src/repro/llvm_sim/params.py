"""Parameters of the llvm_sim model.

Following Table VII of the paper, llvm_sim reads two per-instruction parameter
families from LLVM: ``WriteLatency`` (cycles before destinations can be read)
and a 10-entry ``PortMap`` interpreted as *the number of micro-ops dispatched
to each port* (not occupancy cycles, as in llvm-mca).  Global machine
structure (frontend width, retirement) is fixed by the Haswell model.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.isa.opcodes import DEFAULT_OPCODE_TABLE, OpcodeTable

#: llvm_sim uses the same 10-port layout as the llvm-mca Haswell model.
NUM_PORTS = 10


@dataclass
class LLVMSimParameterTable:
    """Per-instruction parameters read by llvm_sim.

    Attributes:
        opcode_table: Opcode universe the arrays index.
        write_latency: ``(num_opcodes,)`` destination latency in cycles (>= 0).
        port_uops: ``(num_opcodes, 10)`` number of micro-ops dispatched to
            each port (>= 0).  An instruction's total micro-op count is the
            row sum (at least one micro-op is always issued).
    """

    opcode_table: OpcodeTable
    write_latency: np.ndarray
    port_uops: np.ndarray

    def __post_init__(self) -> None:
        count = len(self.opcode_table)
        self.write_latency = np.asarray(self.write_latency, dtype=np.int64)
        self.port_uops = np.asarray(self.port_uops, dtype=np.int64)
        if self.write_latency.shape != (count,):
            raise ValueError(f"write_latency must have shape ({count},)")
        if self.port_uops.shape != (count, NUM_PORTS):
            raise ValueError(f"port_uops must have shape ({count}, {NUM_PORTS})")
        self.validate()

    def validate(self) -> None:
        if np.any(self.write_latency < 0):
            raise ValueError("WriteLatency must be >= 0")
        if np.any(self.port_uops < 0):
            raise ValueError("PortMap micro-op counts must be >= 0")

    @classmethod
    def zeros(cls, opcode_table: Optional[OpcodeTable] = None) -> "LLVMSimParameterTable":
        opcode_table = opcode_table or DEFAULT_OPCODE_TABLE
        count = len(opcode_table)
        return cls(opcode_table=opcode_table,
                   write_latency=np.zeros(count, dtype=np.int64),
                   port_uops=np.zeros((count, NUM_PORTS), dtype=np.int64))

    def copy(self) -> "LLVMSimParameterTable":
        return LLVMSimParameterTable(opcode_table=self.opcode_table,
                                     write_latency=self.write_latency.copy(),
                                     port_uops=self.port_uops.copy())

    @property
    def num_opcodes(self) -> int:
        return len(self.opcode_table)

    @property
    def num_parameters(self) -> int:
        return self.num_opcodes * (1 + NUM_PORTS)

    # ------------------------------------------------------------------
    # Flattening (used by DiffTune and the black-box baselines)
    # ------------------------------------------------------------------
    def to_vector(self) -> np.ndarray:
        return np.concatenate([
            self.write_latency.astype(np.float64),
            self.port_uops.astype(np.float64).ravel(),
        ])

    @classmethod
    def from_vector(cls, vector: np.ndarray,
                    opcode_table: Optional[OpcodeTable] = None) -> "LLVMSimParameterTable":
        opcode_table = opcode_table or DEFAULT_OPCODE_TABLE
        count = len(opcode_table)
        expected = count * (1 + NUM_PORTS)
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (expected,):
            raise ValueError(f"expected vector of length {expected}, got {vector.shape}")
        write_latency = np.clip(np.round(vector[:count]), 0, None).astype(np.int64)
        port_uops = np.clip(np.round(vector[count:]), 0, None).astype(np.int64)
        return cls(opcode_table=opcode_table, write_latency=write_latency,
                   port_uops=port_uops.reshape(count, NUM_PORTS))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "opcodes": {
                opcode.name: {
                    "write_latency": int(self.write_latency[index]),
                    "port_uops": self.port_uops[index].tolist(),
                }
                for index, opcode in enumerate(self.opcode_table)
            }
        }

    def save_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    @classmethod
    def from_dict(cls, payload: Dict,
                  opcode_table: Optional[OpcodeTable] = None) -> "LLVMSimParameterTable":
        """Inverse of :meth:`to_dict`; opcodes absent from ``payload`` stay zero."""
        opcode_table = opcode_table or DEFAULT_OPCODE_TABLE
        table = cls.zeros(opcode_table)
        entries = payload["opcodes"]
        for index, opcode in enumerate(opcode_table):
            entry = entries.get(opcode.name)
            if entry is None:
                continue
            table.write_latency[index] = int(entry["write_latency"])
            table.port_uops[index] = np.asarray(entry["port_uops"], dtype=np.int64)
        table.validate()
        return table

    @classmethod
    def load_json(cls, path: str,
                  opcode_table: Optional[OpcodeTable] = None) -> "LLVMSimParameterTable":
        with open(path) as handle:
            return cls.from_dict(json.load(handle), opcode_table)
