"""Numpy-vectorized llvm_sim timing kernel over a whole packed corpus.

The lockstep counterpart of
:func:`repro.llvm_sim.simulator.simulate_bound_llvm_sim`: every block of a
:class:`~repro.engine.megabatch.PackedCorpus` advances one dynamic
instruction per step, with the frontend delivery counter, register
scoreboard, and per-port next-free cycles held in int64 arrays.

Two scalar inner loops collapse into closed forms:

* **frontend** — per-micro-op delivery cycles are non-decreasing, so the
  instruction's delivery cycle is that of its *last* micro-op:
  ``decode_latency + (delivered + n - 1) // uops_per_cycle``;
* **port execution** — the decoded micro-op list groups micro-ops by port
  (``np.repeat`` order), so ``k`` micro-ops on port ``p`` start at
  ``max(ready, port_free[p])`` and serialize one per cycle: the last starts
  ``k - 1`` cycles later and the port frees ``k`` cycles after the base.
  The bookkeeping micro-op of a portless instruction contributes
  ``start == ready``, restored by a final ``max(last_start, ready)``.

The loop follows the same engineering rules as the llvm-mca kernel (see
:mod:`repro.llvm_mca.megabatch`): static schedules are precomputed
step-major / lane-minor so each step slices contiguous rows and reductions
run over the fast axis; lanes are permuted so runs of equal
(length, warmup, measure) keys are adjacent, each run's periodic schedule is
gathered once at pattern size and tiled down the horizon at memcpy speed;
the port axis is compressed to the few slots each opcode actually uses
(padded slots carry the dummy port and hugely negative counts, losing every
max and scattering only into the dummy row); finished lanes step on garbage
state instead of being masked — constant pad rows past a run's end freeze
their frontend and ports, operand reads redirect to a per-lane sentinel
slot, register writes stay confined to the lane's own scoreboard — and
iteration boundaries are snapshotted at each lane's last active step, before
garbage can reach them.

All arithmetic is int64 cycle math over the same integers the scalar kernel
produces, so timings are bit-identical (pinned by the property tests in
``tests/test_megabatch.py``).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.engine.megabatch import PackedCorpus
from repro.llvm_sim.params import LLVMSimParameterTable, NUM_PORTS

#: Ready cycle of the per-lane sentinel register slot; never wins an
#: operand max against a non-negative delivery cycle.
_NEVER_READY = np.int64(-(2 ** 40))


def _port_slot_tables(port_uops: np.ndarray) -> tuple:
    """Compress the ``(O, P)`` micro-op counts into per-opcode port slots.

    Returns ``(port_id, count_minus_one)``, each ``(O, U)`` with ``U`` the
    maximum number of ports any opcode uses (at least 1): slot ``u`` of
    opcode ``o`` names its ``u``-th used port and carries ``k - 1`` for its
    ``k`` micro-ops there.  Unused slots point at the dummy port
    ``NUM_PORTS`` with hugely negative counts, so they lose every max and
    scatter only into the dummy row of the port state.
    """
    port_uops = np.asarray(port_uops, dtype=np.int64)
    used = port_uops > 0
    max_used = max(int(used.sum(axis=1).max(initial=0)), 1)
    front = np.argsort(~used, axis=1, kind="stable")[:, :max_used]
    counts = np.take_along_axis(port_uops, front, axis=1)
    port_id = np.where(counts > 0, front, NUM_PORTS)
    count_minus_one = np.where(counts > 0, counts - 1, _NEVER_READY)
    return port_id, count_minus_one


def _lane_runs(lengths: np.ndarray, warmup: np.ndarray,
               measure: np.ndarray) -> List[tuple]:
    """Split lanes (sorted by key) into ``(c0, c1)`` runs of equal keys."""
    change = np.nonzero((np.diff(lengths) != 0) | (np.diff(warmup) != 0)
                        | (np.diff(measure) != 0))[0] + 1
    bounds = [0, *change.tolist(), int(lengths.shape[0])]
    return list(zip(bounds[:-1], bounds[1:]))


def _tile_rows(pattern: np.ndarray, repeats: int) -> np.ndarray:
    """Repeat ``pattern`` ``repeats`` times along axis 0 (memcpy speed)."""
    return np.tile(pattern, (repeats,) + (1,) * (pattern.ndim - 1))


def simulate_packed_llvm_sim(table: LLVMSimParameterTable, corpus: PackedCorpus,
                             uops_per_cycle: int, decode_latency: int,
                             warmup: np.ndarray, measure: np.ndarray
                             ) -> np.ndarray:
    """Steady-state cycles/iteration of every corpus block under ``table``.

    Args:
        table: The llvm_sim parameter table.
        corpus: Packed blocks (see :func:`repro.engine.megabatch.pack_corpus`).
        uops_per_cycle: Frontend delivery throughput.
        decode_latency: Fixed frontend pipeline depth in cycles.
        warmup: ``(B,)`` warmup iterations per block (>= 0).
        measure: ``(B,)`` measurement iterations per block (>= 1).

    Returns:
        ``(B,)`` float64 timings, bit-identical to running
        :func:`~repro.llvm_sim.simulator.simulate_bound_llvm_sim` per block.
    """
    num_blocks = corpus.num_blocks
    if num_blocks == 0:
        return np.empty(0, dtype=np.float64)
    warmup = np.asarray(warmup, dtype=np.int64)
    measure = np.asarray(measure, dtype=np.int64)
    if np.any(measure < 1):
        raise ValueError("megabatch kernel requires measure >= 1 per block")
    if uops_per_cycle < 1:
        raise ValueError("frontend must deliver at least one micro-op per cycle")
    uops_per_cycle = np.int64(uops_per_cycle)
    decode_latency = np.int64(decode_latency)

    # Lanes permuted so equal (length, warmup, measure) keys form adjacent
    # runs; schedules are built once per run and tiled (see module docs).
    perm = np.lexsort((measure, warmup, corpus.lengths))
    lengths = np.maximum(corpus.lengths[perm], 1)
    warmup = warmup[perm]
    measure = measure[perm]
    opcode_rows = corpus.opcode_indices[perm]
    source_rows = corpus.source_ids[perm]
    destination_rows = corpus.destination_ids[perm]

    total_steps = (warmup + measure) * lengths
    warmup_steps = warmup * lengths
    horizon = int(total_steps.max(initial=1))
    rows = np.arange(num_blocks)
    runs = _lane_runs(lengths, warmup, measure)

    # Per-opcode tables, gathered per run at pattern size below.  A zero
    # PortMap row still decodes one bookkeeping micro-op.
    port_counts = np.asarray(table.port_uops, dtype=np.int64)
    decoded_table = np.maximum(port_counts.sum(axis=1), 1)
    latency_table = np.asarray(table.write_latency, dtype=np.int64)
    # Retire lower-bounds completion by last_start + 1, so fold the clamp
    # into the latency: completion = last_start + max(latency, 1).
    retire_table = np.maximum(latency_table, 1)
    port_id_table, count_table = _port_slot_tables(table.port_uops)
    num_slots = port_id_table.shape[1]
    scaled_port_table = port_id_table.T * num_blocks              # (U, O)
    count_table = count_table.T                                   # (U, O)
    num_sources = source_rows.shape[2]
    num_destinations = destination_rows.shape[2]

    # Register file: per-lane real slots plus a sentinel slot (invalid
    # reads, hugely negative) and a sink slot (invalid writes).
    registers = max(int(corpus.num_registers.max(initial=0)), 1) + 2
    lane_base = rows * registers
    sentinel = lane_base + registers - 2
    sink = lane_base + registers - 1

    # Step-major schedules, filled run by run.
    decoded_uops = np.empty((horizon, num_blocks), dtype=np.int64)
    uops_minus_one = np.empty((horizon, num_blocks), dtype=np.int64)
    write_latency = np.empty((horizon, num_blocks), dtype=np.int64)
    retire_latency = np.empty((horizon, num_blocks), dtype=np.int64)
    port_index = np.empty((horizon, num_slots, num_blocks), dtype=np.int64)
    count_minus_one = np.empty((horizon, num_slots, num_blocks),
                               dtype=np.int64)
    flat_sources = np.empty((horizon, num_sources, num_blocks), dtype=np.int64)
    flat_destinations = np.empty((horizon, num_destinations, num_blocks),
                                 dtype=np.int64)
    warm_parts: Dict[int, List[np.ndarray]] = {}
    final_parts: Dict[int, List[np.ndarray]] = {}

    for c0, c1 in runs:
        length = int(lengths[c0])
        iterations = int(warmup[c0] + measure[c0])
        run_end = iterations * length
        cols = rows[c0:c1]
        opcode_pat = np.ascontiguousarray(opcode_rows[c0:c1, :length].T)
        decoded_pat = decoded_table[opcode_pat]
        decoded_uops[:run_end, c0:c1] = _tile_rows(decoded_pat, iterations)
        uops_minus_one[:run_end, c0:c1] = _tile_rows(decoded_pat - 1,
                                                     iterations)
        write_latency[:run_end, c0:c1] = _tile_rows(latency_table[opcode_pat],
                                                    iterations)
        retire_latency[:run_end, c0:c1] = _tile_rows(retire_table[opcode_pat],
                                                     iterations)
        port_index_pat = (scaled_port_table[:, opcode_pat].transpose(1, 0, 2)
                          + cols[None, None, :])
        port_index[:run_end, :, c0:c1] = _tile_rows(port_index_pat, iterations)
        count_pat = count_table[:, opcode_pat].transpose(1, 0, 2)
        count_minus_one[:run_end, :, c0:c1] = _tile_rows(count_pat, iterations)

        # Operand ids: -1 padding redirects to the sentinel / sink slots on
        # the pattern, before tiling.
        source_pat = np.where(
            source_rows[c0:c1, :length] >= 0,
            source_rows[c0:c1, :length] + lane_base[c0:c1, None, None],
            sentinel[c0:c1, None, None]).transpose(1, 2, 0)
        flat_sources[:run_end, :, c0:c1] = _tile_rows(source_pat, iterations)
        destination_pat = np.where(
            destination_rows[c0:c1, :length] >= 0,
            destination_rows[c0:c1, :length] + lane_base[c0:c1, None, None],
            sink[c0:c1, None, None]).transpose(1, 2, 0)
        flat_destinations[:run_end, :, c0:c1] = _tile_rows(destination_pat,
                                                           iterations)

        # Pad rows past the run's end: zero micro-ops, dummy ports, sentinel
        # reads, sink writes — finished lanes' bookkeeping freezes and their
        # garbage stays confined to their own state, snapshotted at their
        # last active step.
        if run_end < horizon:
            decoded_uops[run_end:, c0:c1] = 0
            uops_minus_one[run_end:, c0:c1] = -1
            write_latency[run_end:, c0:c1] = 0
            retire_latency[run_end:, c0:c1] = 1
            port_index[run_end:, :, c0:c1] = (NUM_PORTS * num_blocks
                                              + cols)[None, None, :]
            count_minus_one[run_end:, :, c0:c1] = _NEVER_READY
            flat_sources[run_end:, :, c0:c1] = sentinel[c0:c1][None, None, :]
            flat_destinations[run_end:, :, c0:c1] = sink[c0:c1][None, None, :]

        warm_end = int(warmup_steps[c0])
        if warm_end > 0:
            warm_parts.setdefault(warm_end - 1, []).append(cols)
        final_parts.setdefault(run_end - 1, []).append(cols)

    warm_map = {step: np.concatenate(parts)
                for step, parts in warm_parts.items()}
    final_map = {step: np.concatenate(parts)
                 for step, parts in final_parts.items()}

    register_ready = np.zeros(num_blocks * registers, dtype=np.int64)
    register_ready[sentinel] = _NEVER_READY
    port_free = np.zeros((NUM_PORTS + 1) * num_blocks, dtype=np.int64)
    delivered = np.zeros(num_blocks, dtype=np.int64)
    previous_retire = np.zeros(num_blocks, dtype=np.int64)
    warmup_end = np.zeros(num_blocks, dtype=np.int64)
    final_end = np.zeros(num_blocks, dtype=np.int64)

    # Scratch buffers so the step loop allocates nothing.
    lane_i64 = np.empty(num_blocks, dtype=np.int64)
    ready = np.empty(num_blocks, dtype=np.int64)
    last_start = np.empty(num_blocks, dtype=np.int64)
    source_ready = np.empty((num_sources, num_blocks), dtype=np.int64)
    slot_scratch = np.empty((num_slots, num_blocks), dtype=np.int64)

    take = np.take
    maximum = np.maximum
    add = np.add

    for step in range(horizon):
        # Frontend: the instruction waits for its last micro-op's delivery.
        add(delivered, uops_minus_one[step], out=lane_i64)
        np.floor_divide(lane_i64, uops_per_cycle, out=lane_i64)
        add(lane_i64, decode_latency, out=lane_i64)
        add(delivered, decoded_uops[step], out=delivered)

        # Rename/dispatch: wait for the instruction's register sources.
        take(register_ready, flat_sources[step], out=source_ready,
             mode="clip")
        maximum.reduce(source_ready, axis=0, out=ready)
        maximum(ready, lane_i64, out=ready)

        # Execute: k micro-ops on one port serialize one per cycle starting
        # at max(ready, port_free); the last starts k - 1 cycles later and
        # the port frees one cycle after that.  Pad slots go hugely
        # negative (losing every max) and scatter into the dummy row.
        indices = port_index[step]
        take(port_free, indices, out=slot_scratch, mode="clip")
        maximum(slot_scratch, ready, out=slot_scratch)
        add(slot_scratch, count_minus_one[step], out=slot_scratch)
        maximum.reduce(slot_scratch, axis=0, out=last_start)
        maximum(last_start, ready, out=last_start)
        add(slot_scratch, 1, out=slot_scratch)
        port_free[indices] = slot_scratch

        # Destinations become readable WriteLatency cycles after the last
        # micro-op starts.
        add(last_start, write_latency[step], out=lane_i64)
        register_ready[flat_destinations[step]] = lane_i64

        # Retire in order once every micro-op has finished.
        add(last_start, retire_latency[step], out=lane_i64)
        maximum(previous_retire, lane_i64, out=previous_retire)

        lanes = warm_map.get(step)
        if lanes is not None:
            warmup_end[lanes] = previous_retire[lanes]
        lanes = final_map.get(step)
        if lanes is not None:
            final_end[lanes] = previous_retire[lanes]

    cycles_per_iteration = (final_end - warmup_end) / measure
    np.maximum(cycles_per_iteration, 0.01, out=cycles_per_iteration)
    timings = np.empty(num_blocks, dtype=np.float64)
    timings[perm] = cycles_per_iteration
    return timings


__all__ = ["simulate_packed_llvm_sim"]
