"""Frontend (fetch / parse / decode) model for llvm_sim.

Unlike llvm-mca, llvm_sim models the processor frontend: instructions are
fetched and decoded into micro-ops at a bounded rate before they reach the
out-of-order backend.  The model here is a simple throughput limiter — the
Haswell frontend delivers up to four micro-ops per cycle from the decoders /
uop cache — which is the level of detail llvm_sim itself implements for
straight-line code (no branch prediction is needed for basic blocks).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Frontend:
    """Tracks when each decoded micro-op becomes available to the backend.

    Attributes:
        uops_per_cycle: Decode/delivery throughput of the frontend.
        decode_latency: Fixed pipeline depth (cycles) between fetch and the
            first cycle a micro-op may dispatch; affects only the first
            iterations, not the steady state.
    """

    uops_per_cycle: int = 4
    decode_latency: int = 3

    def __post_init__(self) -> None:
        if self.uops_per_cycle < 1:
            raise ValueError("frontend must deliver at least one micro-op per cycle")
        if self.decode_latency < 0:
            raise ValueError("decode latency cannot be negative")
        self._delivered = 0

    def reset(self) -> None:
        self._delivered = 0

    def delivery_cycle(self, micro_op_sequence_number: int) -> int:
        """Cycle at which the ``n``-th micro-op (0-based) exits the frontend."""
        return self.decode_latency + micro_op_sequence_number // self.uops_per_cycle

    def next_delivery_cycle(self) -> int:
        """Delivery cycle of the next micro-op in program order."""
        cycle = self.delivery_cycle(self._delivered)
        self._delivered += 1
        return cycle
