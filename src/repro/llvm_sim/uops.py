"""Micro-op decomposition for the llvm_sim model.

llvm_sim decodes each instruction into micro-ops before dispatch and
simulates the micro-ops individually.  The decomposition here is driven by
the instruction's PortMap row in the :class:`LLVMSimParameterTable`: the
entry for port ``p`` says how many micro-ops of the instruction are
dispatched to port ``p``.  The last micro-op to finish defines when the
instruction's destinations become readable (after ``WriteLatency`` cycles)
and when the instruction may retire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.isa.instruction import Instruction
from repro.llvm_sim.params import LLVMSimParameterTable, NUM_PORTS


@dataclass(frozen=True)
class MicroOp:
    """A single micro-op of a decoded instruction.

    Attributes:
        instruction_index: Index of the parent dynamic instruction.
        port: Execution port the micro-op must execute on.
        latency: Execution latency of this micro-op in cycles.
    """

    instruction_index: int
    port: int
    latency: int


def decode_instruction(instruction: Instruction, instruction_index: int,
                       parameters: LLVMSimParameterTable) -> List[MicroOp]:
    """Decode one instruction into its micro-ops under ``parameters``.

    Each PortMap entry ``port_uops[opcode, p] = k`` produces ``k`` micro-ops
    on port ``p``.  Instructions whose PortMap row is all zero still produce
    a single bookkeeping micro-op with no port requirement (port ``-1``),
    because every instruction must flow through the pipeline to retire.
    The instruction's WriteLatency is attached to its micro-ops so the
    simulator can compute when the destination registers become available.
    """
    opcode_index = parameters.opcode_table.index_of(instruction.opcode.name)
    row = parameters.port_uops[opcode_index]
    latency = int(parameters.write_latency[opcode_index])
    micro_ops: List[MicroOp] = []
    for port in range(NUM_PORTS):
        for _ in range(int(row[port])):
            micro_ops.append(MicroOp(instruction_index=instruction_index, port=port,
                                     latency=latency))
    if not micro_ops:
        micro_ops.append(MicroOp(instruction_index=instruction_index, port=-1, latency=latency))
    return micro_ops
