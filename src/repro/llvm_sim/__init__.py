"""An llvm_sim-style micro-op-level basic-block simulator.

llvm_sim (from the EXEgesis project) exposes the same LLVM scheduling
parameters as llvm-mca but uses a different model of the CPU (Appendix A of
the paper): it models the frontend (fetch/decode), breaks instructions into
micro-ops before dispatch, and simulates the micro-ops individually.  Only a
Haswell model exists upstream, and the paper learns its ``WriteLatency`` and
``PortMap`` parameters (Table VII).

The Python reimplementation mirrors that pipeline:

* fetch/parse/decode with a frontend throughput limit,
* register renaming with unlimited physical registers,
* out-of-order dispatch of micro-ops once their dependencies are ready,
* execution of micro-ops on the port each was assigned to,
* in-order retirement of instructions once all their micro-ops finish.
"""

from repro.llvm_sim.params import LLVMSimParameterTable
from repro.llvm_sim.uops import MicroOp, decode_instruction
from repro.llvm_sim.simulator import LLVMSimSimulator

__all__ = [
    "LLVMSimParameterTable",
    "MicroOp",
    "decode_instruction",
    "LLVMSimSimulator",
]
