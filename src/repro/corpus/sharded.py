"""Sharded, disk-backed basic-block corpora.

A :class:`ShardedCorpus` streams :class:`~repro.bhive.generator.BlockGenerator`
output into fixed-size on-disk shards so corpus size is bounded by disk, not
RAM.  Layout of one corpus directory::

    <dir>/
      manifest.json            # uarch, seed, shard table, build-resume state
      shards/
        shard-00000.json       # [{assembly, applications, timing, digest}, ...]
        shard-00001.json
        ...

Every shard holds exactly ``shard_size`` kept blocks (the last may be
partial), written atomically (write-then-rename); the manifest records a
content digest per shard, the total block count, and — until the build
completes — the generator/harness rng states at the last shard boundary, so
an interrupted ``build`` resumes bit-identically to an uninterrupted one.

Reading never materializes the whole corpus: :meth:`ShardedCorpus.iter_blocks`
and :meth:`~ShardedCorpus.iter_shards` stream shard by shard, and random
access (``corpus[i]``) goes through two small LRU caches (raw shard entries,
parsed blocks).  Blocks parse back through :func:`repro.isa.parser.parse_block`,
so a corpus block is bit-identical in simulation to the generated original.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.bhive.generator import BlockGenerator
from repro.bhive.measurement import MeasurementHarness
from repro.isa.basic_block import BasicBlock
from repro.isa.opcodes import DEFAULT_OPCODE_TABLE, OpcodeTable
from repro.isa.parser import parse_block
from repro.targets import get_uarch
from repro.targets.hardware import HardwareModel

MANIFEST_NAME = "manifest.json"
SHARD_DIR = "shards"
CORPUS_VERSION = 1


class CorpusError(RuntimeError):
    """A corpus directory is missing, inconsistent, or corrupted."""


def block_content_digest(assembly: str, applications: Sequence[str]) -> str:
    """Content digest of one corpus entry (stable across processes)."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(assembly.encode())
    digest.update(b"\n")
    digest.update("\t".join(applications).encode())
    return digest.hexdigest()


def _dump_shard_bytes(entries: List[Dict[str, Any]]) -> bytes:
    """Canonical serialized form of a shard (what the digest covers)."""
    return json.dumps({"version": CORPUS_VERSION, "entries": entries},
                      sort_keys=True).encode()


def _atomic_write(path: str, payload: bytes) -> None:
    temp_path = path + ".tmp"
    with open(temp_path, "wb") as handle:
        handle.write(payload)
    os.replace(temp_path, path)


@dataclass
class CorpusShard:
    """One materialized shard: aligned parsed blocks and timings."""

    index: int
    start: int  #: global index of the shard's first block
    blocks: List[BasicBlock]
    timings: np.ndarray
    digests: List[str]

    def __len__(self) -> int:
        return len(self.blocks)


class ShardedCorpus:
    """A disk-backed block corpus with streaming and bounded random access."""

    def __init__(self, directory: str, opcode_table: Optional[OpcodeTable] = None,
                 cache_shards: int = 8, cache_blocks: int = 16384) -> None:
        self.directory = directory
        self.opcode_table = opcode_table or DEFAULT_OPCODE_TABLE
        self.cache_shards = max(1, int(cache_shards))
        self.cache_blocks = max(1, int(cache_blocks))
        self._manifest = self._read_manifest(directory)
        if not self._manifest.get("complete", False):
            raise CorpusError(
                f"corpus at {directory!r} is incomplete (interrupted build); "
                f"re-run ShardedCorpus.build(..., resume=True) to finish it")
        self._shard_entries: "OrderedDict[int, List[Dict[str, Any]]]" = OrderedDict()
        self._parsed_blocks: "OrderedDict[int, BasicBlock]" = OrderedDict()

    # ------------------------------------------------------------------
    # Manifest plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _manifest_path(directory: str) -> str:
        return os.path.join(directory, MANIFEST_NAME)

    @staticmethod
    def _read_manifest(directory: str) -> Dict[str, Any]:
        path = ShardedCorpus._manifest_path(directory)
        if not os.path.exists(path):
            raise CorpusError(f"no corpus manifest at {path!r}; "
                              f"build one with ShardedCorpus.build(...)")
        with open(path) as handle:
            manifest = json.load(handle)
        if manifest.get("version") != CORPUS_VERSION:
            raise CorpusError(f"unsupported corpus version "
                              f"{manifest.get('version')!r} at {path!r}")
        return manifest

    @staticmethod
    def _write_manifest(directory: str, manifest: Dict[str, Any]) -> None:
        os.makedirs(directory, exist_ok=True)
        payload = (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode()
        _atomic_write(ShardedCorpus._manifest_path(directory), payload)

    @property
    def manifest(self) -> Dict[str, Any]:
        return self._manifest

    @property
    def uarch_name(self) -> str:
        return self._manifest["uarch"]

    @property
    def seed(self) -> int:
        return int(self._manifest["seed"])

    @property
    def shard_size(self) -> int:
        return int(self._manifest["shard_size"])

    @property
    def num_shards(self) -> int:
        return len(self._manifest["shards"])

    def __len__(self) -> int:
        return int(self._manifest["num_blocks"])

    def content_fingerprint(self) -> str:
        """Digest of the corpus content, computed from the manifest alone.

        Covers the uarch, block count, and every shard's content digest —
        the shard digests in turn cover each entry's assembly, applications,
        and timing, so any content change changes the fingerprint.
        """
        digest = hashlib.sha256()
        digest.update(self.uarch_name.encode())
        digest.update(str(len(self)).encode())
        for shard in self._manifest["shards"]:
            digest.update(shard["digest"].encode())
        return digest.hexdigest()

    def describe(self) -> Dict[str, Any]:
        """Summary payload for ``repro corpus stat``."""
        timings = self.timings()
        lengths = np.fromiter((len(entry["assembly"].splitlines())
                               for entry in self.iter_entries()),
                              dtype=np.int64, count=len(self))
        return {
            "directory": self.directory,
            "uarch": self.uarch_name,
            "seed": self.seed,
            "num_blocks": len(self),
            "num_generated": int(self._manifest["num_generated"]),
            "num_shards": self.num_shards,
            "shard_size": self.shard_size,
            "content_fingerprint": self.content_fingerprint(),
            "block_length_median": float(np.median(lengths)),
            "block_length_mean": float(lengths.mean()),
            "block_length_max": int(lengths.max()),
            "median_timing": float(np.median(timings)),
            "splits": {name: len(indices)
                       for name, indices in self.split_indices().items()},
        }

    # ------------------------------------------------------------------
    # Shard access
    # ------------------------------------------------------------------
    def _shard_path(self, shard_index: int) -> str:
        name = self._manifest["shards"][shard_index]["name"]
        return os.path.join(self.directory, SHARD_DIR, name)

    def _load_shard_entries(self, shard_index: int,
                            verify: bool = False) -> List[Dict[str, Any]]:
        cached = self._shard_entries.get(shard_index)
        if cached is not None:
            self._shard_entries.move_to_end(shard_index)
            return cached
        path = self._shard_path(shard_index)
        with open(path, "rb") as handle:
            payload = handle.read()
        record = self._manifest["shards"][shard_index]
        if verify:
            digest = hashlib.sha256(payload).hexdigest()
            if digest != record["digest"]:
                raise CorpusError(
                    f"shard {record['name']!r} is corrupted: content digest "
                    f"{digest} != manifest digest {record['digest']}")
        entries = json.loads(payload)["entries"]
        if len(entries) != record["num_blocks"]:
            raise CorpusError(f"shard {record['name']!r} holds {len(entries)} "
                              f"entries; manifest says {record['num_blocks']}")
        self._shard_entries[shard_index] = entries
        while len(self._shard_entries) > self.cache_shards:
            self._shard_entries.popitem(last=False)
        return entries

    def _locate(self, global_index: int) -> "tuple[int, int]":
        if not 0 <= global_index < len(self):
            raise IndexError(f"block index {global_index} out of range "
                             f"[0, {len(self)})")
        return global_index // self.shard_size, global_index % self.shard_size

    def _parse_entry(self, entry: Dict[str, Any]) -> BasicBlock:
        return parse_block(entry["assembly"], self.opcode_table,
                           source_applications=tuple(entry.get("applications", ())))

    # ------------------------------------------------------------------
    # Streaming iteration (never materializes the corpus)
    # ------------------------------------------------------------------
    def iter_entries(self) -> Iterator[Dict[str, Any]]:
        """Stream raw entries shard by shard (no parsing, no caching)."""
        for shard_index in range(self.num_shards):
            yield from self._load_shard_entries(shard_index)

    def iter_blocks(self) -> Iterator[BasicBlock]:
        """Stream parsed blocks shard by shard."""
        for entry in self.iter_entries():
            yield self._parse_entry(entry)

    def iter_shards(self) -> Iterator[CorpusShard]:
        """Stream fully parsed shards (bounded by ``shard_size`` blocks)."""
        start = 0
        for shard_index in range(self.num_shards):
            entries = self._load_shard_entries(shard_index)
            shard = CorpusShard(
                index=shard_index, start=start,
                blocks=[self._parse_entry(entry) for entry in entries],
                timings=np.array([entry["timing"] for entry in entries],
                                 dtype=np.float64),
                digests=[entry["digest"] for entry in entries])
            start += len(entries)
            yield shard

    # ------------------------------------------------------------------
    # Random access (LRU-bounded)
    # ------------------------------------------------------------------
    def block(self, global_index: int) -> BasicBlock:
        cached = self._parsed_blocks.get(global_index)
        if cached is not None:
            self._parsed_blocks.move_to_end(global_index)
            return cached
        shard_index, local = self._locate(global_index)
        block = self._parse_entry(self._load_shard_entries(shard_index)[local])
        self._parsed_blocks[global_index] = block
        while len(self._parsed_blocks) > self.cache_blocks:
            self._parsed_blocks.popitem(last=False)
        return block

    def __getitem__(self, global_index: int) -> BasicBlock:
        return self.block(int(global_index))

    def timing(self, global_index: int) -> float:
        shard_index, local = self._locate(global_index)
        return float(self._load_shard_entries(shard_index)[local]["timing"])

    def digest(self, global_index: int) -> str:
        shard_index, local = self._locate(global_index)
        return self._load_shard_entries(shard_index)[local]["digest"]

    def timings(self) -> np.ndarray:
        """All timings, in corpus order (floats only — safe to materialize)."""
        return np.fromiter((entry["timing"] for entry in self.iter_entries()),
                           dtype=np.float64, count=len(self))

    # ------------------------------------------------------------------
    # Splits and views
    # ------------------------------------------------------------------
    def split_indices(self) -> Dict[str, List[int]]:
        """Deterministic 80/10/10 split on block content digests.

        Identical block text shares a digest, so the buckets are block-wise
        disjoint (the property the dataset layer's splits guarantee), and the
        assignment is a pure function of content — stable across processes
        and resumed builds.
        """
        train: List[int] = []
        validation: List[int] = []
        test: List[int] = []
        for index, entry in enumerate(self.iter_entries()):
            bucket = int(entry["digest"], 16) % 10
            if bucket < 8:
                train.append(index)
            elif bucket == 8:
                validation.append(index)
            else:
                test.append(index)
        if not train:
            raise CorpusError("corpus too small: empty train split")
        if not validation:
            validation = train[-1:]
        if not test:
            test = train[-1:]
        return {"train": train, "validation": validation, "test": test}

    def view(self, indices: Sequence[int]) -> "CorpusView":
        return CorpusView(self, indices)

    def split_view(self, which: str) -> "CorpusView":
        indices = self.split_indices()
        if which not in indices:
            raise ValueError(f"unknown split {which!r}; expected one of "
                             f"{sorted(indices)}")
        return self.view(indices[which])

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify(self) -> Dict[str, Any]:
        """Re-hash every shard against the manifest; raise on corruption."""
        self._shard_entries.clear()
        checked_blocks = 0
        for shard_index in range(self.num_shards):
            entries = self._load_shard_entries(shard_index, verify=True)
            for entry in entries:
                digest = block_content_digest(entry["assembly"],
                                              entry.get("applications", ()))
                if digest != entry["digest"]:
                    raise CorpusError(
                        f"entry {checked_blocks} in shard {shard_index} is "
                        f"corrupted: digest {digest} != {entry['digest']}")
                checked_blocks += 1
        if checked_blocks != len(self):
            raise CorpusError(f"manifest claims {len(self)} blocks; shards "
                              f"hold {checked_blocks}")
        return {"num_shards": self.num_shards, "num_blocks": checked_blocks}

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, directory: str, uarch_name: str = "haswell",
              num_blocks: int = 2000, seed: int = 0, shard_size: int = 1024,
              opcode_table: Optional[OpcodeTable] = None, resume: bool = False,
              progress: Optional[Callable[[int, int], None]] = None,
              **open_kwargs: Any) -> "ShardedCorpus":
        """Generate, measure, and shard ``num_blocks`` blocks to disk.

        Generation and measurement stream one block at a time — drawing from
        the same two rng streams :func:`repro.bhive.dataset.build_dataset`
        uses (generator ``seed``, hardware ``seed + 1``, harness ``seed + 2``)
        — so the kept blocks and timings are bit-identical to the in-memory
        builder's.  Unstable measurements are dropped, mirroring BHive.

        ``num_blocks`` counts *generated* blocks (the build's work budget);
        the kept count is slightly lower after the stability screen.  With
        ``resume=True`` an interrupted build continues from the last
        completed shard by restoring the pinned rng states; the finished
        corpus is bit-identical to an uninterrupted build.
        """
        if num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        # Deferred: keeps repro.corpus importable without the pipeline layer.
        from repro.pipeline.checkpoint import (_jsonify_rng_state,
                                               _unjsonify_rng_state)

        spec = get_uarch(uarch_name)
        generator = BlockGenerator(opcode_table=opcode_table, seed=seed)
        hardware = HardwareModel(spec, seed=seed + 1)
        harness = MeasurementHarness(hardware, seed=seed + 2)

        manifest_path = cls._manifest_path(directory)
        if os.path.exists(manifest_path):
            manifest = cls._read_manifest(directory)
            if manifest.get("complete", False):
                cls._check_build_params(manifest, spec.name, seed, shard_size,
                                        num_blocks, directory)
                return cls(directory, opcode_table=opcode_table, **open_kwargs)
            if not resume:
                raise CorpusError(
                    f"corpus at {directory!r} has an interrupted build; pass "
                    f"resume=True to finish it or delete the directory")
            cls._check_build_params(manifest, spec.name, seed, shard_size,
                                    num_blocks, directory)
            state = manifest["build_state"]
            generator._rng.bit_generator.state = _unjsonify_rng_state(
                state["generator_rng"])
            harness._rng.bit_generator.state = _unjsonify_rng_state(
                state["harness_rng"])
        else:
            manifest = {
                "version": CORPUS_VERSION,
                "uarch": spec.name,
                "seed": int(seed),
                "shard_size": int(shard_size),
                "num_requested": int(num_blocks),
                "num_generated": 0,
                "num_blocks": 0,
                "complete": False,
                "shards": [],
                "build_state": {
                    "generator_rng": _jsonify_rng_state(
                        generator._rng.bit_generator.state),
                    "harness_rng": _jsonify_rng_state(
                        harness._rng.bit_generator.state),
                },
            }

        os.makedirs(os.path.join(directory, SHARD_DIR), exist_ok=True)
        pending: List[Dict[str, Any]] = []

        def flush(complete: bool) -> None:
            if pending:
                shard_index = len(manifest["shards"])
                name = f"shard-{shard_index:05d}.json"
                payload = _dump_shard_bytes(pending)
                _atomic_write(os.path.join(directory, SHARD_DIR, name), payload)
                manifest["shards"].append({
                    "name": name,
                    "num_blocks": len(pending),
                    "digest": hashlib.sha256(payload).hexdigest(),
                })
                manifest["num_blocks"] += len(pending)
                pending.clear()
            manifest["build_state"] = {
                "generator_rng": _jsonify_rng_state(
                    generator._rng.bit_generator.state),
                "harness_rng": _jsonify_rng_state(
                    harness._rng.bit_generator.state),
            }
            manifest["complete"] = complete
            cls._write_manifest(directory, manifest)

        remaining = num_blocks - int(manifest["num_generated"])
        for block in generator.iter_blocks(remaining):
            manifest["num_generated"] += 1
            result = harness.measure_block(block)
            if result.stable:
                assembly = block.to_assembly()
                applications = list(block.source_applications)
                pending.append({
                    "assembly": assembly,
                    "applications": applications,
                    "timing": float(result.timing),
                    "digest": block_content_digest(assembly, applications),
                })
            if len(pending) == shard_size:
                flush(complete=False)
                if progress is not None:
                    progress(int(manifest["num_generated"]), num_blocks)
        flush(complete=True)
        if progress is not None:
            progress(num_blocks, num_blocks)
        return cls(directory, opcode_table=opcode_table, **open_kwargs)

    @staticmethod
    def _check_build_params(manifest: Dict[str, Any], uarch: str, seed: int,
                            shard_size: int, num_blocks: int,
                            directory: str) -> None:
        recorded = (manifest["uarch"], int(manifest["seed"]),
                    int(manifest["shard_size"]), int(manifest["num_requested"]))
        requested = (uarch, int(seed), int(shard_size), int(num_blocks))
        if recorded != requested:
            raise CorpusError(
                f"corpus at {directory!r} was built with "
                f"(uarch, seed, shard_size, num_blocks)={recorded}; "
                f"requested {requested} — delete it or pick another directory")


class CorpusView(Sequence):
    """A lazy, index-remapped window onto a corpus (e.g. one split).

    Implements the read-only ``Sequence[BasicBlock]`` protocol the collection
    and pipeline layers expect of a block list, without parsing anything
    until an index is touched; parsed blocks come from the corpus's bounded
    caches.
    """

    def __init__(self, corpus: ShardedCorpus, indices: Sequence[int]) -> None:
        self.corpus = corpus
        self.indices = np.asarray(indices, dtype=np.int64)
        if len(self.indices) and not (0 <= int(self.indices.min())
                                      and int(self.indices.max()) < len(corpus)):
            raise IndexError("view indices out of corpus range")

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, position):
        if isinstance(position, slice):
            # Slicing stays lazy: `view[:max_blocks]` narrows the index map
            # without parsing a single block.
            return CorpusView(self.corpus, self.indices[position])
        return self.corpus.block(int(self.indices[int(position)]))

    def __iter__(self) -> Iterator[BasicBlock]:
        for index in self.indices:
            yield self.corpus.block(int(index))

    def global_index(self, position: int) -> int:
        return int(self.indices[int(position)])

    def timings(self) -> np.ndarray:
        all_timings = self.corpus.timings()
        return all_timings[self.indices]

    def content_fingerprint(self) -> str:
        """Digest of (corpus content, selected indices)."""
        digest = hashlib.sha256()
        digest.update(self.corpus.content_fingerprint().encode())
        digest.update(self.indices.tobytes())
        return digest.hexdigest()
