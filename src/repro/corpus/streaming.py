"""Streaming simulated-dataset collection and shard-backed training sources.

Three pieces turn phase one of DiffTune into a corpus-scale streaming
pipeline:

* :class:`StreamingSimulatedDataset` — the simulated dataset held as flat
  index/timing arrays plus one table list (never a per-example object list);
  converts losslessly to/from the exact ``simulated_dataset.npz`` layout the
  pipeline's :class:`~repro.pipeline.stages.CollectDatasetStage` archives.
* :func:`collect_simulated_dataset_streaming` — drives
  :func:`repro.core.simulated_dataset.iter_simulated_rounds` over any
  random-access block source (a list, a :class:`~repro.corpus.sharded.CorpusView`),
  appending rounds to a :class:`StreamingSimulatedDataset` and checkpointing
  every ``checkpoint_every`` examples through a
  :class:`CollectionCheckpoint`.  The rng stream is pinned per checkpoint, so
  a killed run resumes **bit-identically**: the final dataset equals an
  uninterrupted run's byte for byte.
* :class:`StreamingExamples` — the duck-typed example source
  :func:`repro.core.surrogate_training.train_surrogate` streams from:
  per-example timings/tables by index, per-block packed arrays served from a
  :class:`~repro.corpus.store.ShardedFeaturizationStore` mmap when available
  (falling back to bounded in-memory featurization).
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.parameters import ParameterArrays
from repro.core.simulated_dataset import SimulatedExample, iter_simulated_rounds
from repro.core.surrogate import FeaturizationCache

PROGRESS_NAME = "progress.json"
PARTIAL_NAME = "partial_dataset.npz"


class StreamingSimulatedDataset:
    """A simulated dataset as flat arrays: tables + (table, block, timing) rows.

    Memory is proportional to the number of sampled *tables* plus three
    scalars per example — no per-example Python objects, no block
    references — so a million-example dataset costs megabytes, not
    gigabytes.
    """

    def __init__(self, tables: Optional[List[ParameterArrays]] = None,
                 example_table: Optional[List[int]] = None,
                 example_block: Optional[List[int]] = None,
                 example_timing: Optional[List[float]] = None) -> None:
        self.tables: List[ParameterArrays] = tables if tables is not None else []
        self.example_table: List[int] = (example_table if example_table is not None
                                         else [])
        self.example_block: List[int] = (example_block if example_block is not None
                                         else [])
        self.example_timing: List[float] = (example_timing
                                            if example_timing is not None else [])

    def __len__(self) -> int:
        return len(self.example_timing)

    def append_round(self, arrays: ParameterArrays, block_indices: np.ndarray,
                     timings: np.ndarray) -> None:
        """Append one sampled table and the examples drawn with it."""
        table_index = len(self.tables)
        self.tables.append(arrays)
        for block_index, timing in zip(block_indices, timings):
            self.example_table.append(table_index)
            self.example_block.append(int(block_index))
            self.example_timing.append(float(timing))

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The exact array layout of the pipeline's ``simulated_dataset.npz``.

        Byte-identical to ``_examples_to_arrays`` over the equivalent
        in-memory example list: tables appear in sampling order (which is
        first-appearance order there too) and the per-example rows align.
        """
        if not self.tables:
            raise ValueError("cannot serialize an empty simulated dataset")
        return {
            "table_global_values": np.stack(
                [table.global_values for table in self.tables]),
            "table_per_instruction_values": np.stack(
                [table.per_instruction_values for table in self.tables]),
            "example_table": np.asarray(self.example_table, dtype=np.int64),
            "example_block": np.asarray(self.example_block, dtype=np.int64),
            "example_timing": np.asarray(self.example_timing, dtype=np.float64),
        }

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray],
                    truncate_to: Optional[int] = None) -> "StreamingSimulatedDataset":
        """Rebuild from the npz layout, optionally truncated to a row count.

        Truncation drops the tables no surviving example references — the
        recovery path for a partial checkpoint whose array file is newer
        than its progress record.
        """
        example_table = np.asarray(arrays["example_table"], dtype=np.int64)
        example_block = np.asarray(arrays["example_block"], dtype=np.int64)
        example_timing = np.asarray(arrays["example_timing"], dtype=np.float64)
        if truncate_to is not None:
            example_table = example_table[:truncate_to]
            example_block = example_block[:truncate_to]
            example_timing = example_timing[:truncate_to]
        num_tables = int(example_table.max()) + 1 if len(example_table) else 0
        tables = [ParameterArrays(
            global_values=np.asarray(arrays["table_global_values"][index]),
            per_instruction_values=np.asarray(
                arrays["table_per_instruction_values"][index]))
            for index in range(num_tables)]
        return cls(tables=tables,
                   example_table=[int(value) for value in example_table],
                   example_block=[int(value) for value in example_block],
                   example_timing=[float(value) for value in example_timing])

    def materialize(self, blocks: Sequence[Any]) -> List[SimulatedExample]:
        """Expand into the classic per-example object list (small datasets)."""
        return [SimulatedExample(arrays=self.tables[table_index],
                                 block_index=block_index,
                                 block=blocks[block_index],
                                 simulated_timing=timing)
                for table_index, block_index, timing in zip(
                    self.example_table, self.example_block, self.example_timing)]


class CollectionCheckpoint:
    """Atomic partial-collection checkpoint (arrays + rng position).

    Two files under ``directory``: the partial dataset npz and a progress
    record holding the example count and the rng bit-generator state *after*
    that count.  Both are written write-then-rename, arrays first — a kill
    between the two leaves a progress record older than the arrays, which
    :meth:`load` reconciles by truncating to the recorded count.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory

    @property
    def arrays_path(self) -> str:
        return os.path.join(self.directory, PARTIAL_NAME)

    @property
    def progress_path(self) -> str:
        return os.path.join(self.directory, PROGRESS_NAME)

    def save(self, dataset: StreamingSimulatedDataset, rng: np.random.Generator,
             num_examples: int) -> None:
        from repro.pipeline.checkpoint import _jsonify_rng_state

        os.makedirs(self.directory, exist_ok=True)
        temp_arrays = self.arrays_path + ".tmp.npz"
        np.savez(temp_arrays, **dataset.to_arrays())
        os.replace(temp_arrays, self.arrays_path)
        temp_progress = self.progress_path + ".tmp"
        with open(temp_progress, "w") as handle:
            json.dump({
                "num_collected": len(dataset),
                "num_examples": int(num_examples),
                "rng_state": _jsonify_rng_state(rng.bit_generator.state),
            }, handle)
        os.replace(temp_progress, self.progress_path)

    def load(self) -> Optional["tuple[StreamingSimulatedDataset, Any, int]"]:
        """The saved partial dataset, rng state, and target example count."""
        from repro.pipeline.checkpoint import _unjsonify_rng_state

        if not (os.path.exists(self.progress_path)
                and os.path.exists(self.arrays_path)):
            return None
        with open(self.progress_path) as handle:
            progress = json.load(handle)
        with np.load(self.arrays_path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        collected = int(progress["num_collected"])
        if len(arrays["example_timing"]) < collected:
            # The inverse skew (arrays older than progress) cannot happen —
            # arrays are written first — so treat it as corruption.
            raise RuntimeError(
                f"collection checkpoint at {self.directory!r} is corrupted: "
                f"{len(arrays['example_timing'])} rows on disk but progress "
                f"records {collected}")
        dataset = StreamingSimulatedDataset.from_arrays(arrays,
                                                        truncate_to=collected)
        return (dataset, _unjsonify_rng_state(progress["rng_state"]),
                int(progress["num_examples"]))

    def clear(self) -> None:
        for path in (self.arrays_path, self.progress_path):
            if os.path.exists(path):
                os.remove(path)


def collect_simulated_dataset_streaming(
        adapter: Any, blocks: Sequence[Any], num_examples: int,
        rng: np.random.Generator, blocks_per_table: int = 16,
        table_sampler: Optional[Callable[[np.random.Generator],
                                         ParameterArrays]] = None,
        checkpoint: Optional[CollectionCheckpoint] = None,
        checkpoint_every: int = 0,
        progress: Optional[Callable[[int, int], None]] = None
        ) -> StreamingSimulatedDataset:
    """Collect the simulated dataset as flat arrays, checkpointing mid-stage.

    Draw-stream equivalent to
    :func:`repro.core.simulated_dataset.collect_simulated_dataset` — the
    returned dataset's :meth:`~StreamingSimulatedDataset.to_arrays` is
    byte-identical to archiving the in-memory collector's output — but
    memory stays flat in ``num_examples`` and the engine's parallel
    megabatch path is fed round by round.

    With a ``checkpoint``, progress is persisted every ``checkpoint_every``
    collected examples (and the rng stream position with it); a later call
    with the same arguments resumes mid-collection bit-identically.
    """
    dataset = StreamingSimulatedDataset()
    if checkpoint is not None:
        loaded = checkpoint.load()
        if loaded is not None:
            dataset, rng_state, recorded_target = loaded
            if recorded_target != num_examples:
                raise ValueError(
                    f"collection checkpoint targets {recorded_target} "
                    f"examples; this run asks for {num_examples} — clear the "
                    f"checkpoint or match the configuration")
            if len(dataset) > num_examples:
                raise ValueError("collection checkpoint is ahead of the "
                                 "requested example count")
            rng.bit_generator.state = rng_state
    last_saved = len(dataset)
    for arrays, block_indices, _selected, timings in iter_simulated_rounds(
            adapter, blocks, num_examples, rng,
            blocks_per_table=blocks_per_table, table_sampler=table_sampler,
            already_collected=len(dataset)):
        dataset.append_round(arrays, block_indices, timings)
        if progress is not None:
            progress(len(dataset), num_examples)
        if (checkpoint is not None and checkpoint_every > 0
                and len(dataset) - last_saved >= checkpoint_every
                and len(dataset) < num_examples):
            checkpoint.save(dataset, rng, num_examples)
            last_saved = len(dataset)
    return dataset


class StreamingExamples:
    """Shard-streaming example source for surrogate training/evaluation.

    Presents a :class:`StreamingSimulatedDataset` to
    :func:`~repro.core.surrogate_training.train_surrogate` through the
    index-addressed protocol its streaming branch consumes (``__len__``,
    ``timing``, ``table``, ``block_arrays``, ``opcode_indices``,
    ``featurized``) — per-block arrays come from the featurization store's
    memory maps when one is attached, otherwise from bounded on-the-fly
    featurization of the (lazily parsed) blocks.
    """

    def __init__(self, dataset: StreamingSimulatedDataset, blocks: Sequence[Any],
                 cache: FeaturizationCache,
                 store: Optional[Any] = None) -> None:
        self.dataset = dataset
        self.blocks = blocks
        self.cache = cache
        self.store = store

    def __len__(self) -> int:
        return len(self.dataset)

    def _block_position(self, index: int) -> int:
        return int(self.dataset.example_block[int(index)])

    def _global_block_index(self, position: int) -> int:
        # A CorpusView remaps positions to corpus-global indices (what the
        # store is addressed by); a plain list or whole corpus is identity.
        if hasattr(self.blocks, "global_index"):
            return self.blocks.global_index(position)
        return position

    def timing(self, index: int) -> float:
        return float(self.dataset.example_timing[int(index)])

    def table(self, index: int) -> ParameterArrays:
        return self.dataset.tables[int(self.dataset.example_table[int(index)])]

    def block_arrays(self, index: int) -> Dict[str, np.ndarray]:
        position = self._block_position(index)
        if self.store is not None:
            return self.store.arrays_for_index(self._global_block_index(position))
        return self.cache.arrays_for(self.cache.featurize(self.blocks[position]))

    def opcode_indices(self, index: int) -> np.ndarray:
        return np.asarray(self.block_arrays(index)["opcode_indices"],
                          dtype=np.int64)

    def featurized(self, index: int):
        """The :class:`FeaturizedBlock` (per-example fallback path)."""
        return self.cache.featurize(self.blocks[self._block_position(index)])
