"""On-disk, memory-mapped featurization store keyed by content digest.

A :class:`ShardedFeaturizationStore` extends the in-memory
:class:`~repro.core.surrogate.FeaturizationCache` idea to disk: the per-block
packed arrays (token ids, masks, structural features, dependency masks) of
every corpus block are computed **once ever**, written into flat per-shard
blobs, and served back as read-only ``numpy`` memory-mapped views — shared
across every process that opens the store, with per-process resident memory
bounded by the pages the OS keeps warm rather than the corpus size.

Layout of one store directory::

    <dir>/
      manifest.json                  # vocabulary digest + shard table
      shard-00000/
        int_blob.npy                 # int64:  token_ids (L*T) + opcodes (L) per block
        float_blob.npy               # float64: token_mask (L*T) + structural (5L)
                                     #          + dependency (L*L) + loop (L) per block
        meta.npy                     # int64 (num_blocks, 4):
                                     #   int_offset, float_offset, length, max_tokens
        digests.json                 # featurized-content digest per local index

Blob values are byte-identical to :func:`repro.core.surrogate.build_block_arrays`
output, so training through the store is bit-identical to in-memory
featurization.  Store shards mirror the corpus's shards one-to-one.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.surrogate import (BlockFeaturizer, build_block_arrays,
                                  featurized_block_digest)
from repro.corpus.sharded import CorpusError, ShardedCorpus, _atomic_write

STORE_MANIFEST_NAME = "manifest.json"
STORE_VERSION = 1
NUM_STRUCTURAL = 5  # mirrors surrogate.NUM_STRUCTURAL_FEATURES


def vocabulary_digest(featurizer: BlockFeaturizer) -> str:
    """Digest of the featurizer's token vocabulary (store compatibility key)."""
    vocabulary = featurizer.vocabulary
    digest = hashlib.blake2b(digest_size=16)
    for token_id in range(len(vocabulary)):
        digest.update(vocabulary.token(token_id).encode())
        digest.update(b"\n")
    return digest.hexdigest()


def _save_npy_atomic(path: str, array: np.ndarray) -> None:
    temp_path = path + ".tmp.npy"
    np.save(temp_path, array)
    os.replace(temp_path, path)


class ShardedFeaturizationStore:
    """Digest-keyed, mmap-backed featurized arrays for a sharded corpus."""

    def __init__(self, directory: str, featurizer: BlockFeaturizer,
                 cache_shards: int = 8) -> None:
        self.directory = directory
        self.featurizer = featurizer
        self.cache_shards = max(1, int(cache_shards))
        self._vocabulary_digest = vocabulary_digest(featurizer)
        self._manifest = self._read_or_init_manifest()
        #: shard index -> {"int": memmap, "float": memmap, "meta": ndarray}
        self._open: "OrderedDict[int, Dict[str, np.ndarray]]" = OrderedDict()
        #: featurized digest -> (shard index, local index); built lazily.
        self._digest_index: Optional[Dict[str, "tuple[int, int]"]] = None

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    @property
    def _manifest_path(self) -> str:
        return os.path.join(self.directory, STORE_MANIFEST_NAME)

    def _read_or_init_manifest(self) -> Dict[str, Any]:
        if os.path.exists(self._manifest_path):
            with open(self._manifest_path) as handle:
                manifest = json.load(handle)
            if manifest.get("version") != STORE_VERSION:
                raise CorpusError(f"unsupported featurization-store version "
                                  f"{manifest.get('version')!r}")
            if manifest["vocabulary_digest"] != self._vocabulary_digest:
                raise CorpusError(
                    f"featurization store at {self.directory!r} was built "
                    f"with a different token vocabulary; delete it or use a "
                    f"matching opcode table")
            return manifest
        return {"version": STORE_VERSION,
                "vocabulary_digest": self._vocabulary_digest,
                "shards": []}

    def _write_manifest(self) -> None:
        os.makedirs(self.directory, exist_ok=True)
        payload = (json.dumps(self._manifest, indent=2, sort_keys=True)
                   + "\n").encode()
        _atomic_write(self._manifest_path, payload)

    @property
    def num_shards(self) -> int:
        return len(self._manifest["shards"])

    def __len__(self) -> int:
        return sum(int(shard["num_blocks"]) for shard in self._manifest["shards"])

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def ensure(self, corpus: ShardedCorpus,
               progress: Optional[Any] = None) -> "ShardedFeaturizationStore":
        """Featurize every corpus shard not yet in the store (resumable).

        Shards already recorded in the store manifest are skipped, so a
        killed featurization run resumes where it left off, and a second
        process (or a later session) pays nothing for blocks already done.
        """
        for shard in corpus.iter_shards():
            if shard.index < self.num_shards:
                recorded = self._manifest["shards"][shard.index]
                if int(recorded["num_blocks"]) != len(shard):
                    raise CorpusError(
                        f"store shard {shard.index} holds "
                        f"{recorded['num_blocks']} blocks; corpus shard holds "
                        f"{len(shard)} — the store belongs to another corpus")
                continue
            self._build_shard(shard)
            if progress is not None:
                progress(shard.index + 1, corpus.num_shards)
        return self

    def _shard_dir(self, shard_index: int) -> str:
        return os.path.join(self.directory, f"shard-{shard_index:05d}")

    def _build_shard(self, shard) -> None:
        int_parts: List[np.ndarray] = []
        float_parts: List[np.ndarray] = []
        meta = np.zeros((len(shard.blocks), 4), dtype=np.int64)
        digests: List[str] = []
        int_offset = 0
        float_offset = 0
        for local, block in enumerate(shard.blocks):
            featurized = self.featurizer.featurize(block)
            arrays = build_block_arrays(featurized)
            digests.append(featurized_block_digest(featurized))
            length, max_tokens = arrays["token_ids"].shape
            meta[local] = (int_offset, float_offset, length, max_tokens)
            int_parts.append(arrays["token_ids"].reshape(-1))
            int_parts.append(arrays["opcode_indices"])
            float_parts.append(arrays["token_mask"].reshape(-1))
            float_parts.append(arrays["structural_features"].reshape(-1))
            float_parts.append(arrays["dependency_mask"].reshape(-1))
            float_parts.append(arrays["loop_carried_mask"])
            int_offset += length * max_tokens + length
            float_offset += (length * max_tokens + NUM_STRUCTURAL * length
                             + length * length + length)
        shard_dir = self._shard_dir(shard.index)
        os.makedirs(shard_dir, exist_ok=True)
        _save_npy_atomic(os.path.join(shard_dir, "int_blob.npy"),
                         np.concatenate(int_parts) if int_parts
                         else np.zeros(0, dtype=np.int64))
        _save_npy_atomic(os.path.join(shard_dir, "float_blob.npy"),
                         np.concatenate(float_parts) if float_parts
                         else np.zeros(0, dtype=np.float64))
        _save_npy_atomic(os.path.join(shard_dir, "meta.npy"), meta)
        _atomic_write(os.path.join(shard_dir, "digests.json"),
                      json.dumps(digests).encode())
        # The manifest entry lands only after every blob is on disk, so a
        # kill mid-shard leaves the store resumable at this shard.
        self._manifest["shards"].append({
            "name": os.path.basename(shard_dir),
            "num_blocks": len(shard.blocks),
            "start": int(shard.start),
        })
        self._write_manifest()

    # ------------------------------------------------------------------
    # Memory-mapped reads
    # ------------------------------------------------------------------
    def _open_shard(self, shard_index: int) -> Dict[str, np.ndarray]:
        cached = self._open.get(shard_index)
        if cached is not None:
            self._open.move_to_end(shard_index)
            return cached
        if not 0 <= shard_index < self.num_shards:
            raise IndexError(f"store shard {shard_index} out of range "
                             f"[0, {self.num_shards})")
        shard_dir = self._shard_dir(shard_index)
        opened = {
            "int": np.load(os.path.join(shard_dir, "int_blob.npy"),
                           mmap_mode="r"),
            "float": np.load(os.path.join(shard_dir, "float_blob.npy"),
                             mmap_mode="r"),
            "meta": np.load(os.path.join(shard_dir, "meta.npy")),
        }
        self._open[shard_index] = opened
        while len(self._open) > self.cache_shards:
            self._open.popitem(last=False)
        return opened

    def _locate(self, global_index: int) -> "tuple[int, int]":
        for shard_index, shard in enumerate(self._manifest["shards"]):
            start = int(shard["start"])
            if start <= global_index < start + int(shard["num_blocks"]):
                return shard_index, global_index - start
        raise IndexError(f"block index {global_index} not covered by the "
                         f"featurization store")

    def arrays_for_local(self, shard_index: int,
                         local_index: int) -> Dict[str, np.ndarray]:
        """Memory-mapped per-block arrays, same keys as ``build_block_arrays``."""
        opened = self._open_shard(shard_index)
        int_offset, float_offset, length, max_tokens = (
            int(value) for value in opened["meta"][local_index])
        ints = opened["int"]
        floats = opened["float"]
        tokens = length * max_tokens
        cursor = float_offset
        token_mask = floats[cursor:cursor + tokens].reshape(length, max_tokens)
        cursor += tokens
        structural = floats[cursor:cursor + NUM_STRUCTURAL * length].reshape(
            length, NUM_STRUCTURAL)
        cursor += NUM_STRUCTURAL * length
        dependency = floats[cursor:cursor + length * length].reshape(length, length)
        cursor += length * length
        loop_carried = floats[cursor:cursor + length]
        return {
            "token_ids": ints[int_offset:int_offset + tokens].reshape(
                length, max_tokens),
            "token_mask": token_mask,
            "opcode_indices": ints[int_offset + tokens:
                                   int_offset + tokens + length],
            "structural_features": structural,
            "dependency_mask": dependency,
            "loop_carried_mask": loop_carried,
        }

    def arrays_for_index(self, global_index: int) -> Dict[str, np.ndarray]:
        shard_index, local_index = self._locate(int(global_index))
        return self.arrays_for_local(shard_index, local_index)

    def arrays_for_digest(self, digest: str) -> Dict[str, np.ndarray]:
        """Look up a block's arrays by its featurized-content digest."""
        if self._digest_index is None:
            index: Dict[str, "tuple[int, int]"] = {}
            for shard_index in range(self.num_shards):
                path = os.path.join(self._shard_dir(shard_index), "digests.json")
                with open(path) as handle:
                    for local, entry in enumerate(json.load(handle)):
                        index.setdefault(entry, (shard_index, local))
            self._digest_index = index
        located = self._digest_index.get(digest)
        if located is None:
            raise KeyError(f"no featurized block with digest {digest!r} "
                           f"in the store")
        return self.arrays_for_local(*located)
