"""Corpus-scale streaming dataset layer.

Sharded, disk-backed block corpora (:mod:`repro.corpus.sharded`), a
digest-keyed memory-mapped featurization store (:mod:`repro.corpus.store`),
and streaming simulated-dataset collection with mid-stage checkpoints
(:mod:`repro.corpus.streaming`).  Together they let generation, collection,
and surrogate training run at 10^5–10^6+ blocks with flat peak RSS, shared
featurization across processes, and bit-identical ``--resume`` at every
shard/checkpoint boundary.
"""

from repro.corpus.sharded import (CorpusError, CorpusShard, CorpusView,
                                  ShardedCorpus, block_content_digest)
from repro.corpus.store import ShardedFeaturizationStore, vocabulary_digest
from repro.corpus.streaming import (CollectionCheckpoint, StreamingExamples,
                                    StreamingSimulatedDataset,
                                    collect_simulated_dataset_streaming)

__all__ = [
    "CorpusError",
    "CorpusShard",
    "CorpusView",
    "ShardedCorpus",
    "block_content_digest",
    "ShardedFeaturizationStore",
    "vocabulary_digest",
    "CollectionCheckpoint",
    "StreamingExamples",
    "StreamingSimulatedDataset",
    "collect_simulated_dataset_streaming",
]
