"""Tests for the categorical/boolean parameter relaxation (Future Work, Section VII)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.categorical import (CategoricalField, CategoricalRelaxation,
                                    CategoricalTable, one_hot, softmax)


# ----------------------------------------------------------------------
# Fields
# ----------------------------------------------------------------------
class TestCategoricalField:
    def test_requires_at_least_two_choices(self):
        with pytest.raises(ValueError):
            CategoricalField("Policy", choices=("only",))

    def test_rejects_duplicate_choices(self):
        with pytest.raises(ValueError):
            CategoricalField("Policy", choices=("a", "b", "a"))

    def test_index_of_known_and_unknown_choice(self):
        field = CategoricalField("Policy", choices=("in_order", "out_of_order", "hybrid"))
        assert field.index_of("out_of_order") == 1
        with pytest.raises(KeyError):
            field.index_of("missing")

    def test_boolean_factory(self):
        field = CategoricalField.boolean("EnableZeroIdioms")
        assert field.choices == (False, True)
        assert field.num_choices == 2
        assert field.index_of(True) == 1


# ----------------------------------------------------------------------
# Softmax / one-hot helpers
# ----------------------------------------------------------------------
class TestEncodingHelpers:
    def test_softmax_rows_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0], [100.0, 100.0, 100.0]])
        probabilities = softmax(logits)
        np.testing.assert_allclose(probabilities.sum(axis=-1), 1.0)
        assert probabilities[1, 0] == pytest.approx(1.0 / 3.0)

    def test_softmax_is_shift_invariant(self):
        logits = np.array([0.5, -1.0, 2.0])
        np.testing.assert_allclose(softmax(logits), softmax(logits + 50.0), atol=1e-12)

    def test_softmax_handles_extreme_logits(self):
        probabilities = softmax(np.array([1000.0, -1000.0]))
        assert np.isfinite(probabilities).all()
        assert probabilities[0] == pytest.approx(1.0)

    def test_one_hot_basic_and_bounds(self):
        np.testing.assert_array_equal(one_hot(2, 4), [0.0, 0.0, 1.0, 0.0])
        with pytest.raises(IndexError):
            one_hot(4, 4)
        with pytest.raises(IndexError):
            one_hot(-1, 4)


# ----------------------------------------------------------------------
# Relaxation
# ----------------------------------------------------------------------
class TestCategoricalRelaxation:
    @pytest.fixture
    def field(self):
        return CategoricalField("Scheduler", choices=("fifo", "age", "critical"),
                                per_instruction=False)

    def test_global_field_has_single_row(self, field):
        relaxation = CategoricalRelaxation(field, num_opcodes=25)
        assert relaxation.logit_shape == (1, 3)

    def test_per_instruction_field_has_row_per_opcode(self):
        field = CategoricalField.boolean("IsFused", per_instruction=True)
        relaxation = CategoricalRelaxation(field, num_opcodes=7)
        assert relaxation.logit_shape == (7, 2)

    def test_probabilities_live_on_the_simplex(self, field):
        relaxation = CategoricalRelaxation(field)
        rng = np.random.default_rng(0)
        probabilities = relaxation.probabilities(relaxation.initial_logits(rng))
        assert probabilities.shape == (1, 3)
        np.testing.assert_allclose(probabilities.sum(axis=-1), 1.0)
        assert np.all(probabilities >= 0.0)

    def test_temperature_sharpens_distribution(self, field):
        logits = np.array([[2.0, 1.0, 0.0]])
        soft = CategoricalRelaxation(field, temperature=5.0).probabilities(logits)
        sharp = CategoricalRelaxation(field, temperature=0.2).probabilities(logits)
        assert sharp[0, 0] > soft[0, 0]

    def test_extract_takes_argmax(self, field):
        relaxation = CategoricalRelaxation(field)
        assert relaxation.extract(np.array([[0.1, 3.0, -1.0]])) == ["age"]

    def test_logits_for_choices_round_trips_through_extract(self, field):
        relaxation = CategoricalRelaxation(field)
        logits = relaxation.logits_for_choices(["critical"])
        assert relaxation.extract(logits) == ["critical"]

    def test_logits_for_choices_validates_length(self):
        field = CategoricalField.boolean("Flag", per_instruction=True)
        relaxation = CategoricalRelaxation(field, num_opcodes=3)
        with pytest.raises(ValueError):
            relaxation.logits_for_choices([True])

    def test_sample_choices_only_produces_legal_values(self, field):
        relaxation = CategoricalRelaxation(field)
        rng = np.random.default_rng(1)
        for _ in range(20):
            choices = relaxation.sample_choices(rng)
            assert len(choices) == 1
            assert choices[0] in field.choices

    def test_encode_choices_is_one_hot(self):
        field = CategoricalField("Mode", choices=("a", "b", "c"), per_instruction=True)
        relaxation = CategoricalRelaxation(field, num_opcodes=2)
        encoded = relaxation.encode_choices(["c", "a"])
        np.testing.assert_array_equal(encoded, [[0, 0, 1], [1, 0, 0]])

    def test_invalid_construction_arguments(self, field):
        with pytest.raises(ValueError):
            CategoricalRelaxation(field, num_opcodes=0)
        with pytest.raises(ValueError):
            CategoricalRelaxation(field, temperature=0.0)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=10_000))
    def test_extraction_inverts_confident_logits_property(self, num_choices, num_opcodes, seed):
        """For any confident assignment, extract(logits_for_choices(x)) == x."""
        choices = tuple(f"option{i}" for i in range(num_choices))
        field = CategoricalField("Any", choices=choices, per_instruction=True)
        relaxation = CategoricalRelaxation(field, num_opcodes=num_opcodes)
        rng = np.random.default_rng(seed)
        assignment = relaxation.sample_choices(rng)
        assert relaxation.extract(relaxation.logits_for_choices(assignment)) == assignment


# ----------------------------------------------------------------------
# Table of several categorical fields
# ----------------------------------------------------------------------
class TestCategoricalTable:
    @pytest.fixture
    def table(self):
        fields = [
            CategoricalField("SchedulerPolicy", choices=("fifo", "age", "critical")),
            CategoricalField.boolean("EnableZeroIdioms"),
            CategoricalField.boolean("IsFused", per_instruction=True),
        ]
        return CategoricalTable(fields, num_opcodes=4)

    def test_rejects_duplicate_field_names(self):
        fields = [CategoricalField.boolean("X"), CategoricalField.boolean("X")]
        with pytest.raises(ValueError):
            CategoricalTable(fields)

    def test_field_names_and_unknown_lookup(self, table):
        assert table.field_names() == ["SchedulerPolicy", "EnableZeroIdioms", "IsFused"]
        with pytest.raises(KeyError):
            table.relaxation("Missing")

    def test_default_extraction_is_first_choice(self, table):
        extracted = table.extract()
        assert extracted["SchedulerPolicy"] == ["fifo"]
        assert extracted["EnableZeroIdioms"] == [False]
        assert extracted["IsFused"] == [False] * 4

    def test_set_choices_then_extract(self, table):
        table.set_choices("SchedulerPolicy", ["critical"])
        table.set_choices("IsFused", [True, False, True, False])
        extracted = table.extract()
        assert extracted["SchedulerPolicy"] == ["critical"]
        assert extracted["IsFused"] == [True, False, True, False]

    def test_sample_produces_legal_assignment(self, table):
        rng = np.random.default_rng(3)
        assignment = table.sample(rng)
        assert set(assignment) == set(table.field_names())
        assert len(assignment["IsFused"]) == 4
        encoded = table.encode_assignment(assignment)
        assert encoded["IsFused"].shape == (4, 2)
        np.testing.assert_allclose(encoded["SchedulerPolicy"].sum(), 1.0)

    def test_encode_assignment_requires_every_field(self, table):
        with pytest.raises(KeyError):
            table.encode_assignment({"SchedulerPolicy": ["fifo"]})

    def test_surrogate_inputs_are_simplex_rows(self, table):
        rng = np.random.default_rng(4)
        table.randomize_logits(rng)
        inputs = table.surrogate_inputs()
        for name, probabilities in inputs.items():
            np.testing.assert_allclose(probabilities.sum(axis=-1), 1.0, err_msg=name)

    def test_flat_vector_round_trip(self, table):
        rng = np.random.default_rng(5)
        table.randomize_logits(rng, scale=1.0)
        vector = table.flat_vector()
        assert vector.shape == (3 + 2 + 4 * 2,)
        clone = CategoricalTable(table.fields, num_opcodes=4)
        clone.load_flat_vector(vector)
        assert clone.extract() == table.extract()

    def test_load_flat_vector_validates_length(self, table):
        with pytest.raises(ValueError):
            table.load_flat_vector(np.zeros(3))

    def test_set_logits_reshapes_and_copies(self, table):
        logits = np.array([0.0, 5.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0])
        table.set_logits("IsFused", logits)
        assert table.extract()["IsFused"] == [True, False, True, False]

    def test_gradient_style_update_moves_extraction(self, table):
        """Simulate a few ascent steps on one logit and watch the choice flip."""
        table.set_choices("EnableZeroIdioms", [False])
        logits = table.logits["EnableZeroIdioms"].copy()
        for _ in range(10):
            logits[0, 1] += 1.0  # gradient pushing towards True
            table.set_logits("EnableZeroIdioms", logits)
        assert table.extract()["EnableZeroIdioms"] == [True]
