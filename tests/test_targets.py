"""Tests for target specs, default tables, the hardware model, and measured tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bhive import BlockGenerator
from repro.isa.opcodes import UopClass
from repro.isa.parser import parse_block
from repro.llvm_mca import MCASimulator
from repro.targets import (ALL_UARCHES, HASWELL, IVY_BRIDGE, SKYLAKE, ZEN2, HardwareModel,
                           build_default_llvm_sim_table, build_default_mca_table,
                           build_measured_latency_table, get_uarch)
from repro.targets.defaults import default_opcode_parameters


class TestUarchSpecs:
    def test_registry_contains_all_four(self):
        assert set(ALL_UARCHES) == {"ivybridge", "haswell", "skylake", "zen2"}

    @pytest.mark.parametrize("name,expected", [
        ("haswell", "Haswell"), ("hsw", "Haswell"),
        ("ivybridge", "Ivy Bridge"), ("ivb", "Ivy Bridge"),
        ("skylake", "Skylake"), ("SKL", "Skylake"),
        ("zen2", "Zen 2"), ("znver2", "Zen 2"), ("Zen 2", "Zen 2"),
    ])
    def test_alias_lookup(self, name, expected):
        assert get_uarch(name).name == expected

    def test_unknown_uarch(self):
        with pytest.raises(KeyError):
            get_uarch("pentium4")

    def test_vendor_flags(self):
        assert HASWELL.vendor == "intel"
        assert ZEN2.vendor == "amd"

    def test_specs_cover_every_uop_class(self):
        for spec in ALL_UARCHES.values():
            for uop_class in UopClass:
                assert uop_class in spec.documented, (spec.name, uop_class)
                assert uop_class in spec.true, (spec.name, uop_class)

    def test_documented_globals_match_paper_shape(self):
        assert HASWELL.dispatch_width == 4
        assert HASWELL.reorder_buffer_size == 192
        assert SKYLAKE.reorder_buffer_size > IVY_BRIDGE.reorder_buffer_size


class TestDefaultTables:
    @pytest.mark.parametrize("spec", [HASWELL, IVY_BRIDGE, SKYLAKE, ZEN2])
    def test_default_table_valid(self, spec):
        table = build_default_mca_table(spec)
        table.validate()
        assert table.dispatch_width == spec.dispatch_width
        assert table.reorder_buffer_size == spec.reorder_buffer_size

    def test_vzeroupper_latency_zero(self, haswell_default_table):
        assert haswell_default_table.latency_of("VZEROUPPER") == 0

    def test_load_forms_include_load_latency(self, haswell_default_table):
        assert haswell_default_table.latency_of("MOV64rm") >= HASWELL.load_latency
        assert haswell_default_table.latency_of("ADD64rm") > \
            haswell_default_table.latency_of("ADD64rr")

    def test_push_latency_matches_paper_default(self, haswell_default_table):
        # The paper reports the Haswell default WriteLatency for PUSH64r is 2.
        assert haswell_default_table.latency_of("PUSH64r") == 2

    def test_xor_latency_matches_paper_default(self, haswell_default_table):
        # The paper reports the Haswell default WriteLatency for XOR32rr is 1.
        assert haswell_default_table.latency_of("XOR32rr") == 1

    def test_stores_occupy_store_data_port(self, haswell_default_table):
        port_map = haswell_default_table.port_map_of("MOV64mr")
        assert port_map[4] >= 1

    def test_rmw_forms_occupy_store_port(self, haswell_default_table):
        assert haswell_default_table.port_map_of("ADD32mr")[4] >= 1

    def test_divider_occupies_port_zero(self, haswell_default_table):
        assert haswell_default_table.port_map_of("DIV64r")[0] > 1

    def test_most_port_maps_are_sparse(self, haswell_default_table):
        # Port groups are zeroed (Section V-A), so most entries should be 0.
        fraction_zero = float((haswell_default_table.port_map == 0).mean())
        assert fraction_zero > 0.8

    def test_default_opcode_parameters_keys(self, opcode_table):
        values = default_opcode_parameters(opcode_table["ADD32rr"], HASWELL)
        assert set(values) == {"num_micro_ops", "write_latency", "read_advance_cycles",
                               "port_map"}

    def test_llvm_sim_default_table(self):
        table = build_default_llvm_sim_table(HASWELL)
        table.validate()
        assert table.port_uops.max() <= 3


class TestHardwareModel:
    def test_measurement_positive_and_finite(self, haswell_hardware, sample_blocks):
        timings = haswell_hardware.measure_many(sample_blocks[:10], noisy=False)
        assert np.all(timings > 0)
        assert np.all(np.isfinite(timings))

    def test_noise_bounded(self, haswell_hardware, simple_block):
        noiseless = haswell_hardware.measure(simple_block, noisy=False)
        noisy = [haswell_hardware.measure(simple_block, noisy=True) for _ in range(20)]
        assert all(0.8 * noiseless <= value <= 1.2 * noiseless for value in noisy)

    def test_zero_idiom_fast(self, haswell_hardware):
        zero_idiom = parse_block("xorl %r13d, %r13d")
        regular_xor = parse_block("xorl %eax, %ebx\naddl %ebx, %eax")
        assert haswell_hardware.measure(zero_idiom, noisy=False) < \
            haswell_hardware.measure(regular_xor, noisy=False)

    def test_push_chain_hidden_by_stack_engine(self, haswell_hardware):
        block = parse_block("pushq %rbx\ntestl %r8d, %r8d")
        timing = haswell_hardware.measure(block, noisy=False)
        assert timing < 1.6  # the paper's measured value is ~1.01 cycles

    def test_memory_rmw_chain_modeled(self, haswell_hardware):
        block = parse_block("addl %eax, 16(%rsp)")
        timing = haswell_hardware.measure(block, noisy=False)
        assert timing > 3.0  # the paper's measured value is ~5.97 cycles

    def test_dependency_chain_slower_than_independent(self, haswell_hardware):
        chained = parse_block("imulq %rcx, %rdx\nimulq %rdx, %rcx")
        independent = parse_block("imulq %rcx, %rdx\nimulq %rsi, %rdi")
        assert haswell_hardware.measure(chained, noisy=False) > \
            haswell_hardware.measure(independent, noisy=False)

    def test_case_study_magnitudes_match_paper_shape(self, haswell_hardware,
                                                     haswell_default_table):
        """Default llvm-mca over-predicts push/xor blocks and under-predicts
        the memory read-modify-write block, as in Section VI-C."""
        simulator = MCASimulator(haswell_default_table)
        push_block = parse_block("pushq %rbx\ntestl %r8d, %r8d")
        xor_block = parse_block("xorl %r13d, %r13d")
        rmw_block = parse_block("addl %eax, 16(%rsp)")
        assert simulator.predict_timing(push_block) > \
            haswell_hardware.measure(push_block, noisy=False) * 1.4
        assert simulator.predict_timing(xor_block) > \
            haswell_hardware.measure(xor_block, noisy=False) * 1.5
        assert simulator.predict_timing(rmw_block) < \
            haswell_hardware.measure(rmw_block, noisy=False) * 0.6

    def test_default_error_in_paper_regime(self, haswell_hardware, block_generator):
        """Average default-table error should sit in the paper's 20–60% band."""
        blocks = block_generator.generate_blocks(120)
        simulator = MCASimulator(build_default_mca_table(HASWELL))
        truths = haswell_hardware.measure_many(blocks, noisy=False)
        predictions = simulator.predict_many(blocks)
        error = float(np.mean(np.abs(predictions - truths) / truths))
        assert 0.10 < error < 0.60

    def test_different_uarches_give_different_timings(self, sample_blocks):
        haswell = HardwareModel(HASWELL, seed=0).measure_many(sample_blocks[:10], noisy=False)
        zen2 = HardwareModel(ZEN2, seed=0).measure_many(sample_blocks[:10], noisy=False)
        assert not np.allclose(haswell, zen2)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_measurement_always_positive(self, seed):
        block = BlockGenerator(seed=seed).generate_block()
        model = HardwareModel(HASWELL, seed=1)
        assert model.measure(block, noisy=False) > 0


class TestMeasuredTables:
    def test_statistics_ordering(self):
        minimum = build_measured_latency_table(HASWELL, "min")
        median = build_measured_latency_table(HASWELL, "median")
        maximum = build_measured_latency_table(HASWELL, "max")
        assert minimum.write_latency.sum() <= median.write_latency.sum() \
            <= maximum.write_latency.sum()

    def test_invalid_statistic(self):
        with pytest.raises(ValueError):
            build_measured_latency_table(HASWELL, "mean")

    def test_memory_forms_overcounted(self):
        """Measured latencies include the memory round-trip the simulator
        models separately — the Section II-B measurability mismatch."""
        maximum = build_measured_latency_table(HASWELL, "max")
        default = build_default_mca_table(HASWELL)
        assert maximum.latency_of("ADD32mr") > default.latency_of("ADD32mr")

    def test_measured_tables_degrade_error(self, haswell_hardware, block_generator):
        """Plugging measured max latencies into llvm-mca should be much worse
        than the defaults (the paper reports 218% vs 25%)."""
        blocks = block_generator.generate_blocks(60)
        truths = haswell_hardware.measure_many(blocks, noisy=False)
        default_error = np.mean(np.abs(
            MCASimulator(build_default_mca_table(HASWELL)).predict_many(blocks) - truths) / truths)
        measured_error = np.mean(np.abs(
            MCASimulator(build_measured_latency_table(HASWELL, "max")).predict_many(blocks)
            - truths) / truths)
        assert measured_error > default_error * 1.5
