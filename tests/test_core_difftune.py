"""Tests for the end-to-end DiffTune driver, extraction, and config presets."""

import numpy as np
import pytest

from repro.core.adapters import LLVMSimAdapter, MCAAdapter
from repro.core.config import fast_config, paper_config
from repro.core.difftune import DiffTune, DiffTuneConfig
from repro.core.config import test_config as tiny_config
from repro.core.extraction import extract_native_table, extract_parameter_arrays
from repro.core.parameters import ParameterArrays
from repro.llvm_mca.params import MCAParameterTable
from repro.llvm_sim.params import LLVMSimParameterTable
from repro.targets import HASWELL


@pytest.fixture(scope="module")
def small_training_data(small_dataset):
    train = small_dataset.train_examples[:60]
    blocks = [example.block for example in train]
    timings = np.array([example.timing for example in train])
    return blocks, timings


class TestConfigs:
    def test_presets_build(self):
        for preset in (paper_config(), fast_config(), tiny_config()):
            assert isinstance(preset, DiffTuneConfig)
            assert preset.simulated_dataset_size > 0

    def test_paper_config_uses_ithemal_surrogate(self):
        preset = paper_config()
        assert preset.surrogate.kind == "ithemal"
        assert preset.surrogate.num_lstm_layers == 4
        assert preset.table_optimization.learning_rate == pytest.approx(0.05)
        assert preset.surrogate_training.learning_rate == pytest.approx(0.001)

    def test_fast_config_enables_refinement(self):
        preset = fast_config()
        assert preset.refinement_rounds >= 1

    def test_test_config_is_tiny(self):
        preset = tiny_config()
        assert preset.simulated_dataset_size <= 200


class TestExtraction:
    def test_extract_rounds_and_clips(self, mca_adapter):
        spec = mca_adapter.parameter_spec()
        arrays = ParameterArrays(
            global_values=np.array([3.6, -10.0]),
            per_instruction_values=np.full((spec.num_opcodes, spec.per_instruction_dim), 1.4))
        extracted = extract_parameter_arrays(spec, arrays)
        assert extracted.global_values[0] == 4
        assert extracted.global_values[1] == 1  # clipped to lower bound
        assert np.all(extracted.per_instruction_values == 1)

    def test_extract_native_table_types(self, mca_adapter, llvm_sim_adapter, rng):
        mca_table = extract_native_table(mca_adapter,
                                         mca_adapter.parameter_spec().sample(rng))
        assert isinstance(mca_table, MCAParameterTable)
        mca_table.validate()
        sim_table = extract_native_table(llvm_sim_adapter,
                                         llvm_sim_adapter.parameter_spec().sample(rng))
        assert isinstance(sim_table, LLVMSimParameterTable)
        sim_table.validate()


class TestDiffTuneEndToEnd:
    def test_learn_produces_valid_table(self, small_training_data):
        blocks, timings = small_training_data
        adapter = MCAAdapter(HASWELL, narrow_sampling=True)
        difftune = DiffTune(adapter, tiny_config())
        result = difftune.learn(blocks, timings)
        table = adapter.table_from_arrays(result.learned_arrays)
        table.validate()
        assert result.simulated_dataset_size == tiny_config().simulated_dataset_size
        assert result.train_error > 0
        assert result.elapsed_seconds > 0
        assert len(result.surrogate_result.epoch_losses) >= 1

    def test_learn_validates_alignment(self, small_training_data):
        blocks, timings = small_training_data
        difftune = DiffTune(MCAAdapter(HASWELL), tiny_config())
        with pytest.raises(ValueError):
            difftune.learn(blocks, timings[:-3])

    def test_learned_much_better_than_random_tables(self, small_training_data, rng):
        """The learned table must beat the average random-table regime
        (the paper: ~24% learned vs ~171% random)."""
        blocks, timings = small_training_data
        adapter = MCAAdapter(HASWELL, narrow_sampling=True)
        config = tiny_config()
        config.simulated_dataset_size = 400
        config.surrogate_training.epochs = 2
        config.table_optimization.epochs = 6
        difftune = DiffTune(adapter, config)
        result = difftune.learn(blocks, timings)
        random_errors = [difftune.evaluate(adapter.parameter_spec().sample(rng), blocks, timings)
                         for _ in range(4)]
        assert result.train_error < float(np.mean(random_errors)) + 0.1

    def test_refinement_rounds_run(self, small_training_data):
        blocks, timings = small_training_data
        adapter = MCAAdapter(HASWELL, narrow_sampling=True)
        config = tiny_config()
        config.refinement_rounds = 1
        config.refinement_dataset_size = 48
        messages = []
        difftune = DiffTune(adapter, config, log=messages.append)
        difftune.learn(blocks, timings)
        assert any("refinement round 1" in message for message in messages)

    def test_precollected_simulated_dataset(self, small_training_data, rng):
        blocks, timings = small_training_data
        adapter = MCAAdapter(HASWELL, narrow_sampling=True)
        difftune = DiffTune(adapter, tiny_config())
        simulated = difftune.collect_simulated_dataset(blocks, rng)
        result = difftune.learn(blocks, timings, simulated_examples=simulated)
        assert result.simulated_dataset_size == len(simulated)

    def test_evaluate_matches_direct_computation(self, small_training_data):
        blocks, timings = small_training_data
        adapter = MCAAdapter(HASWELL)
        difftune = DiffTune(adapter, tiny_config())
        error = difftune.evaluate(adapter.default_arrays(), blocks, timings)
        predictions = adapter.predict_timings(adapter.default_arrays(), blocks)
        expected = float(np.mean(np.abs(predictions - timings) / timings))
        assert error == pytest.approx(expected)

    def test_writelatency_only_learning_respects_defaults(self, small_training_data):
        blocks, timings = small_training_data
        adapter = MCAAdapter(HASWELL, learn_fields=["WriteLatency"], narrow_sampling=True)
        difftune = DiffTune(adapter, tiny_config())
        result = difftune.learn(blocks, timings)
        learned_table = adapter.table_from_arrays(result.learned_arrays)
        default_table = adapter.default_table()
        np.testing.assert_array_equal(learned_table.num_micro_ops, default_table.num_micro_ops)
        np.testing.assert_array_equal(learned_table.port_map, default_table.port_map)
        assert learned_table.dispatch_width == default_table.dispatch_width

    def test_llvm_sim_adapter_end_to_end(self, small_training_data):
        blocks, timings = small_training_data
        adapter = LLVMSimAdapter(HASWELL)
        difftune = DiffTune(adapter, tiny_config())
        result = difftune.learn(blocks, timings)
        table = adapter.table_from_arrays(result.learned_arrays)
        table.validate()
        assert result.train_error > 0
