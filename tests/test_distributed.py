"""Tests for the distributed matrix-campaign subsystem (repro.distributed).

The headline contracts are the acceptance criteria of the subsystem:

* the aggregate ``matrix_report.json`` is byte-identical across executors
  (inline / pool / remote) and across kill-at-any-cell-boundary + resume;
* a cell that fails transiently is retried with backoff and succeeds; a
  cell that always fails lands in the failed-cell ledger *without* sinking
  its sibling cells;
* a remote worker that disconnects mid-cell is detected and the cell fails
  over to the ledger instead of hanging the matrix.
"""

import json
import os
import threading
import time

import pytest

from repro import cli
from repro.api import (EXECUTORS, MatrixCampaignSpec, Session,
                       SpecValidationError)
from repro.api.registries import same_target
from repro.distributed import (CampaignWorker, cell_key, format_matrix_report,
                               matrix_fingerprint, run_matrix)
from repro.pipeline.checkpoint import CheckpointMismatchError

#: Shared campaign body: per-opcode axis so both simulators can sweep it.
CAMPAIGN = {"axes": [{"field": "WriteLatency", "opcode": "ADD32rr",
                      "values": [1, 3]}],
            "num_blocks": 24, "seed": 3, "chunk_size": 8}
CELLS = [{"target": "haswell", "simulator": "mca"},
         {"target": "haswell", "simulator": "llvm_sim"}]
MCA_CELL = cell_key("haswell", "mca")
SIM_CELL = cell_key("haswell", "llvm_sim")


def make_matrix(corpus_root, **overrides):
    payload = {"campaign": dict(CAMPAIGN), "cells": [dict(c) for c in CELLS],
               "corpus_dir": corpus_root, "retry_backoff_seconds": 0.0}
    payload.update(overrides)
    return MatrixCampaignSpec.from_dict(payload)


@pytest.fixture(scope="module")
def corpus_root(tmp_path_factory):
    """One shared corpus directory: every matrix in the module reuses the
    haswell corpus built by the first run (ShardedCorpus resume)."""
    return str(tmp_path_factory.mktemp("matrix-corpora"))


@pytest.fixture(scope="module")
def reference(corpus_root, tmp_path_factory):
    """The uninterrupted inline run every other execution path must match."""
    report_path = os.path.join(tmp_path_factory.mktemp("matrix-ref"),
                               "matrix_report.json")
    result = run_matrix(make_matrix(corpus_root, report_path=report_path))
    assert result.status == "complete"
    with open(report_path, "rb") as stream:
        report_bytes = stream.read()
    return result, report_bytes


class TestSpecValidation:
    def test_reserved_campaign_field_rejected(self, corpus_root):
        # from_dict validates eagerly, like every repro.api spec.
        with pytest.raises(SpecValidationError, match="campaign.target"):
            make_matrix(corpus_root, campaign=dict(CAMPAIGN, target="haswell"))

    def test_unknown_executor_suggests(self, corpus_root):
        with pytest.raises(SpecValidationError, match="executor.*pool"):
            make_matrix(corpus_root, executor="pooll").validate()

    def test_remote_requires_worker_urls(self, corpus_root):
        with pytest.raises(SpecValidationError, match="worker_urls"):
            make_matrix(corpus_root, executor="remote").validate()

    def test_resume_requires_checkpoint_dir(self, corpus_root):
        with pytest.raises(SpecValidationError, match="requires checkpoint_dir"):
            make_matrix(corpus_root, resume=True).validate()

    def test_fail_cells_must_name_real_cells(self, corpus_root):
        with pytest.raises(SpecValidationError, match="names no cell"):
            make_matrix(corpus_root, fail_cells={"haswell__nope": 1})

    def test_duplicate_cells_rejected(self, corpus_root):
        with pytest.raises(SpecValidationError, match="duplicate cell"):
            make_matrix(corpus_root, cells=[CELLS[0], dict(CELLS[0])])

    def test_unsweepable_axis_names_offending_cell(self, corpus_root):
        # DispatchWidth is a global field llvm_sim cannot sweep: validation
        # must fail up front naming the cell, before anything executes.
        with pytest.raises(SpecValidationError, match=SIM_CELL):
            make_matrix(
                corpus_root,
                campaign={"axes": [{"field": "DispatchWidth",
                                    "values": [1, 2]}],
                          "num_blocks": 24, "seed": 3})

    def test_default_grid_is_full_registry_cross(self):
        pairs = MatrixCampaignSpec(campaign=dict(CAMPAIGN)).resolve_cells()
        targets = {target for target, _ in pairs}
        simulators = {simulator for _, simulator in pairs}
        assert len(pairs) == len(targets) * len(simulators)
        assert {"haswell", "zen2"} <= targets
        assert simulators == {"mca", "llvm_sim"}

    def test_json_round_trip(self, corpus_root):
        spec = make_matrix(corpus_root, executor="pool", workers=4,
                           fail_cells={MCA_CELL: 1})
        assert MatrixCampaignSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))) == spec

    def test_fingerprint_excludes_execution_knobs(self, corpus_root):
        base = matrix_fingerprint(make_matrix(corpus_root))
        assert matrix_fingerprint(make_matrix(
            corpus_root, executor="pool", workers=8,
            retry_backoff_seconds=9.0, cell_timeout_seconds=60.0,
            delay_cells={MCA_CELL: 1.0}, corpus_dir=None)) == base
        # Injected failures are result data (ledger entries): identity.
        assert matrix_fingerprint(make_matrix(
            corpus_root, fail_cells={MCA_CELL: -1})) != base
        assert matrix_fingerprint(make_matrix(
            corpus_root, max_retries=5)) != base

    def test_executors_registered(self):
        assert sorted(EXECUTORS.names()) == ["inline", "pool", "remote"]
        assert EXECUTORS.resolve("processes") == "pool"
        assert EXECUTORS.resolve("workers") == "remote"


class TestMatrixRun:
    def test_inline_report_structure(self, reference):
        result, _ = reference
        report = result.report
        assert report["schema_version"] == 1
        assert report["status"] == "complete"
        assert report["num_cells"] == report["num_completed_cells"] == 2
        assert set(report["cells"]) == {MCA_CELL, SIM_CELL}
        assert report["failed_cells"] == []
        assert {row["cell"] for row in report["comparison"]} == {MCA_CELL,
                                                                 SIM_CELL}
        for row in report["comparison"]:
            assert row["best_error"] <= row["baseline_error"] + 1e-12
        assert set(report["best_variant_per_cell"]) == {MCA_CELL, SIM_CELL}
        for cell in report["cells"].values():
            assert cell["attempts"] == 1
            assert set(cell["error_stats"]) >= {"count", "mean", "quantiles"}

    def test_pool_byte_identical_to_inline(self, corpus_root, reference):
        _, report_bytes = reference
        pooled = run_matrix(make_matrix(corpus_root, executor="pool",
                                        workers=2))
        assert json.dumps(pooled.report, sort_keys=True) == json.dumps(
            json.loads(report_bytes), sort_keys=True)

    def test_session_run_matrix(self, corpus_root, reference):
        from repro.api import EvaluateSpec

        result, _ = reference
        session = Session.from_spec(EvaluateSpec(target="haswell",
                                                 num_blocks=24, seed=3))
        via_session = session.run_matrix(campaign=dict(CAMPAIGN),
                                         cells=[dict(c) for c in CELLS],
                                         corpus_dir=corpus_root)
        assert via_session.report == result.report

    def test_format_matrix_report_renders_tables(self, reference):
        result, _ = reference
        rendered = format_matrix_report(result.report)
        assert "matrix report" in rendered
        assert "cell comparison" in rendered
        assert MCA_CELL in rendered and SIM_CELL in rendered
        assert "p50" in rendered

    def test_same_target_matches_display_names(self):
        # The shared-corpus guard must accept the corpus's display name
        # ("Zen 2") against the registry key ("zen2") the matrix uses.
        assert same_target("Zen 2", "zen2")
        assert same_target("hsw", "haswell")  # aliases resolve too
        assert not same_target("Zen 2", "haswell")


class TestFaultTolerance:
    def test_transient_failure_retried_then_succeeds(self, corpus_root,
                                                     reference):
        result, _ = reference
        spec = make_matrix(corpus_root, fail_cells={MCA_CELL: 1})
        retried = run_matrix(spec)
        assert retried.status == "complete"
        assert retried.report["cells"][MCA_CELL]["attempts"] == 2
        assert retried.report["cells"][SIM_CELL]["attempts"] == 1
        # Apart from the attempt count, results match the clean reference.
        assert (retried.cell_outcomes[MCA_CELL]["report"]
                == result.cell_outcomes[MCA_CELL]["report"])

    def test_always_failing_cell_lands_in_ledger(self, corpus_root, reference):
        result, _ = reference
        spec = make_matrix(corpus_root, fail_cells={SIM_CELL: -1},
                           max_retries=1)
        partial = run_matrix(spec)
        assert partial.status == "partial"
        assert [entry["cell"] for entry in partial.failed_cells] == [SIM_CELL]
        entry = partial.failed_cells[0]
        assert entry["attempts"] == 2  # max_retries + 1
        assert "InjectedCellFault" in entry["error"]
        assert "Traceback" in entry["traceback"]
        # The sibling cell is unaffected — byte-identical to the reference.
        assert (partial.report["cells"][MCA_CELL]
                == result.report["cells"][MCA_CELL])

    def test_slow_cell_cancelled_on_timeout(self, corpus_root):
        spec = make_matrix(corpus_root, executor="pool", workers=1,
                           cells=[dict(CELLS[0])],
                           delay_cells={MCA_CELL: 30.0},
                           cell_timeout_seconds=0.2, max_retries=0)
        result = run_matrix(spec)
        assert result.status == "partial"
        entry = result.failed_cells[0]
        assert "CellCancelled" in entry["error"]
        assert "timeout" in entry["error"]


class TestResume:
    def test_kill_at_every_cell_boundary_resumes_byte_identical(
            self, corpus_root, reference, tmp_path):
        _, report_bytes = reference
        for boundary in range(1, len(CELLS)):
            checkpoint_dir = str(tmp_path / f"boundary-{boundary}")
            report_path = str(tmp_path / f"boundary-{boundary}.json")

            def spec_for(resume):
                return make_matrix(corpus_root, checkpoint_dir=checkpoint_dir,
                                   report_path=report_path, resume=resume)

            killed = run_matrix(spec_for(False), max_cells=boundary)
            assert killed.status == "interrupted"
            assert len(killed.executed_cells) == boundary
            resumed = run_matrix(spec_for(True))
            assert resumed.status == "complete"
            assert resumed.resumed_cells == killed.executed_cells
            assert set(resumed.executed_cells).isdisjoint(killed.executed_cells)
            with open(report_path, "rb") as stream:
                assert stream.read() == report_bytes, \
                    f"resume at boundary {boundary} diverged"

    def test_resume_writes_per_cell_reports(self, corpus_root, tmp_path):
        checkpoint_dir = str(tmp_path / "ckpt")
        run_matrix(make_matrix(corpus_root, checkpoint_dir=checkpoint_dir))
        for key in (MCA_CELL, SIM_CELL):
            path = os.path.join(checkpoint_dir, "cell_reports",
                                f"{key}.campaign_report.json")
            with open(path) as stream:
                assert json.load(stream)["spec"]["target"] == "haswell"

    def test_checkpoint_refuses_different_matrix(self, corpus_root, tmp_path):
        checkpoint_dir = str(tmp_path / "ckpt")
        run_matrix(make_matrix(corpus_root, checkpoint_dir=checkpoint_dir),
                   max_cells=1)
        other = make_matrix(
            corpus_root, checkpoint_dir=checkpoint_dir, resume=True,
            campaign=dict(CAMPAIGN, axes=[{"field": "WriteLatency",
                                           "opcode": "ADD32rr",
                                           "values": [1, 5]}]))
        with pytest.raises(CheckpointMismatchError, match="different matrix"):
            run_matrix(other)


class TestRemote:
    def test_remote_byte_identical_to_inline(self, corpus_root, reference):
        result, _ = reference
        worker = CampaignWorker(port=0)
        handle = worker.start_in_thread()
        try:
            remote = run_matrix(make_matrix(corpus_root, executor="remote",
                                            worker_urls=[handle.url]))
        finally:
            handle.stop()
        assert remote.status == "complete"
        assert remote.report == result.report

    def test_worker_disconnect_mid_cell_lands_in_ledger(self, corpus_root):
        worker = CampaignWorker(port=0, drain_seconds=0.2)
        handle = worker.start_in_thread()
        # The delay must outlive the disconnect but stay under the server
        # handle's stop timeout (the worker's executor thread sleeps it out).
        spec = make_matrix(corpus_root, executor="remote",
                           worker_urls=[handle.url], cells=[dict(CELLS[0])],
                           delay_cells={MCA_CELL: 3.0}, max_retries=0,
                           heartbeat_seconds=0.1)
        results = []
        runner = threading.Thread(
            target=lambda: results.append(run_matrix(spec)), daemon=True)
        runner.start()
        time.sleep(0.5)  # let the cell reach the worker, then kill it
        handle.stop()
        runner.join(timeout=30.0)
        assert not runner.is_alive(), "matrix hung on a dead worker"
        result = results[0]
        assert result.status == "partial"
        entry = result.failed_cells[0]
        assert entry["cell"] == MCA_CELL
        assert "WorkerUnreachable" in entry["error"]


class TestCli:
    def test_matrix_list(self, capsys):
        assert cli.main(["matrix", "list"]) == 0
        out = capsys.readouterr().out
        assert "inline" in out and "pool" in out and "remote" in out
        assert "haswell__mca" in out

    def test_matrix_run_and_report_round_trip(self, corpus_root, tmp_path,
                                              capsys):
        report_path = str(tmp_path / "matrix_report.json")
        assert cli.main([
            "matrix", "run", "--targets", "haswell",
            "--simulators", "mca", "llvm_sim",
            "--axis", "WriteLatency@ADD32rr=1,3",
            "--blocks", "24", "--seed", "3", "--chunk-size", "8",
            "--corpus-dir", corpus_root, "--output", report_path]) == 0
        capsys.readouterr()
        assert cli.main(["matrix", "report", report_path]) == 0
        out = capsys.readouterr().out
        assert MCA_CELL in out and SIM_CELL in out
        assert cli.main(["matrix", "report", report_path, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["schema_version"] == 1

    def test_matrix_run_exit_code_on_failed_cells(self, corpus_root, tmp_path):
        spec_path = str(tmp_path / "spec.json")
        spec = make_matrix(corpus_root, fail_cells={SIM_CELL: -1},
                           max_retries=0)
        with open(spec_path, "w") as stream:
            json.dump(spec.to_dict(), stream)
        assert cli.main(["matrix", "run", "--spec", spec_path]) == 1
