"""Tests for the reverse-mode autodiff tensor engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff.tensor import Tensor, concat, maximum, no_grad, stack


def numeric_gradient(function, point, epsilon=1e-6):
    """Central-difference numeric gradient of a scalar function."""
    point = np.asarray(point, dtype=np.float64)
    gradient = np.zeros_like(point)
    flat = point.ravel()
    gradient_flat = gradient.ravel()
    for index in range(flat.size):
        plus = flat.copy()
        minus = flat.copy()
        plus[index] += epsilon
        minus[index] -= epsilon
        gradient_flat[index] = (function(plus.reshape(point.shape))
                                - function(minus.reshape(point.shape))) / (2 * epsilon)
    return gradient


def analytic_gradient(builder, point):
    """Gradient computed by the autodiff engine for the same scalar function."""
    tensor = Tensor(point, requires_grad=True)
    output = builder(tensor)
    output.backward()
    return tensor.grad


class TestBasicOps:
    def test_addition_forward(self):
        result = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(result.data, [4.0, 6.0])

    def test_addition_with_scalar(self):
        result = Tensor([1.0, 2.0]) + 5.0
        np.testing.assert_allclose(result.data, [6.0, 7.0])

    def test_raddition(self):
        result = 5.0 + Tensor([1.0, 2.0])
        np.testing.assert_allclose(result.data, [6.0, 7.0])

    def test_subtraction(self):
        result = Tensor([5.0]) - Tensor([2.0])
        assert result.item() == pytest.approx(3.0)

    def test_rsubtraction(self):
        result = 10.0 - Tensor([4.0])
        assert result.item() == pytest.approx(6.0)

    def test_multiplication(self):
        result = Tensor([2.0, 3.0]) * Tensor([4.0, 5.0])
        np.testing.assert_allclose(result.data, [8.0, 15.0])

    def test_division(self):
        result = Tensor([8.0]) / Tensor([2.0])
        assert result.item() == pytest.approx(4.0)

    def test_rdivision(self):
        result = 8.0 / Tensor([2.0])
        assert result.item() == pytest.approx(4.0)

    def test_negation(self):
        result = -Tensor([3.0])
        assert result.item() == pytest.approx(-3.0)

    def test_power(self):
        result = Tensor([3.0]) ** 2
        assert result.item() == pytest.approx(9.0)

    def test_matmul_2d(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[5.0, 6.0], [7.0, 8.0]])
        np.testing.assert_allclose((a @ b).data, [[19.0, 22.0], [43.0, 50.0]])

    def test_matmul_vector(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([[1.0, 0.0], [0.0, 1.0]])
        np.testing.assert_allclose(a.matmul(b).data, [1.0, 2.0])

    def test_comparison_returns_numpy(self):
        result = Tensor([1.0, 3.0]) > 2.0
        assert isinstance(result, np.ndarray)
        assert list(result) == [False, True]

    def test_len_and_shape(self):
        tensor = Tensor(np.zeros((3, 4)))
        assert len(tensor) == 3
        assert tensor.shape == (3, 4)
        assert tensor.ndim == 2
        assert tensor.size == 12


class TestGradients:
    def test_add_gradient(self):
        point = np.array([1.0, -2.0, 3.0])
        grad = analytic_gradient(lambda t: (t + 2.0).sum(), point)
        np.testing.assert_allclose(grad, np.ones(3))

    def test_mul_gradient(self):
        point = np.array([1.5, -2.0])
        grad = analytic_gradient(lambda t: (t * t).sum(), point)
        np.testing.assert_allclose(grad, 2 * point)

    def test_division_gradient_matches_numeric(self):
        point = np.array([1.0, 2.0, 4.0])
        builder = lambda t: (t / (t + 3.0)).sum()
        numeric = numeric_gradient(lambda p: (p / (p + 3.0)).sum(), point)
        np.testing.assert_allclose(analytic_gradient(builder, point), numeric, atol=1e-6)

    def test_exp_log_gradient(self):
        point = np.array([0.5, 1.5])
        builder = lambda t: (t.exp() + (t + 2.0).log()).sum()
        numeric = numeric_gradient(lambda p: (np.exp(p) + np.log(p + 2.0)).sum(), point)
        np.testing.assert_allclose(analytic_gradient(builder, point), numeric, atol=1e-6)

    def test_tanh_sigmoid_gradient(self):
        point = np.array([-1.0, 0.3, 2.0])
        builder = lambda t: (t.tanh() * t.sigmoid()).sum()
        numeric = numeric_gradient(
            lambda p: (np.tanh(p) / (1 + np.exp(-p))).sum(), point)
        np.testing.assert_allclose(analytic_gradient(builder, point), numeric, atol=1e-6)

    def test_relu_gradient(self):
        point = np.array([-1.0, 2.0, 3.0])
        grad = analytic_gradient(lambda t: t.relu().sum(), point)
        np.testing.assert_allclose(grad, [0.0, 1.0, 1.0])

    def test_abs_gradient(self):
        point = np.array([-2.0, 3.0])
        grad = analytic_gradient(lambda t: t.abs().sum(), point)
        np.testing.assert_allclose(grad, [-1.0, 1.0])

    def test_sqrt_gradient(self):
        point = np.array([4.0, 9.0])
        grad = analytic_gradient(lambda t: t.sqrt().sum(), point)
        np.testing.assert_allclose(grad, [0.25, 1.0 / 6.0])

    def test_softplus_gradient(self):
        point = np.array([-3.0, 0.0, 3.0])
        numeric = numeric_gradient(lambda p: np.logaddexp(0, p).sum(), point)
        np.testing.assert_allclose(analytic_gradient(lambda t: t.softplus().sum(), point),
                                   numeric, atol=1e-6)

    def test_matmul_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))

        def builder(t):
            return (t.matmul(Tensor(b)) * Tensor(np.ones((3, 2)))).sum()

        numeric = numeric_gradient(lambda p: (p @ b).sum(), a)
        np.testing.assert_allclose(analytic_gradient(builder, a), numeric, atol=1e-6)

    def test_broadcast_add_gradient(self):
        point = np.array([1.0, 2.0, 3.0])

        def builder(t):
            matrix = Tensor(np.ones((4, 3)))
            return (matrix + t).sum()

        grad = analytic_gradient(builder, point)
        np.testing.assert_allclose(grad, [4.0, 4.0, 4.0])

    def test_mean_gradient(self):
        point = np.array([1.0, 2.0, 3.0, 4.0])
        grad = analytic_gradient(lambda t: t.mean(), point)
        np.testing.assert_allclose(grad, np.full(4, 0.25))

    def test_sum_axis_gradient(self):
        point = np.arange(6.0).reshape(2, 3)
        grad = analytic_gradient(lambda t: (t.sum(axis=0) * Tensor([1.0, 2.0, 3.0])).sum(),
                                 point)
        np.testing.assert_allclose(grad, np.tile([1.0, 2.0, 3.0], (2, 1)))

    def test_getitem_gradient_accumulates_repeats(self):
        point = np.array([1.0, 2.0, 3.0])
        grad = analytic_gradient(lambda t: t[[0, 0, 2]].sum(), point)
        np.testing.assert_allclose(grad, [2.0, 0.0, 1.0])

    def test_reshape_gradient(self):
        point = np.arange(6.0)
        grad = analytic_gradient(lambda t: (t.reshape(2, 3) * Tensor(np.ones((2, 3)))).sum(),
                                 point)
        np.testing.assert_allclose(grad, np.ones(6))

    def test_clamp_gradient(self):
        point = np.array([-0.5, 0.5, 1.5])
        grad = analytic_gradient(lambda t: t.clamp(0.0, 1.0).sum(), point)
        np.testing.assert_allclose(grad, [0.0, 1.0, 0.0])

    def test_clamp_min_gradient(self):
        point = np.array([-0.5, 0.5])
        grad = analytic_gradient(lambda t: t.clamp_min(0.0).sum(), point)
        np.testing.assert_allclose(grad, [0.0, 1.0])

    def test_gradient_accumulates_across_uses(self):
        tensor = Tensor([2.0], requires_grad=True)
        out = (tensor * 3.0 + tensor * 4.0).sum()
        out.backward()
        np.testing.assert_allclose(tensor.grad, [7.0])

    def test_backward_requires_scalar_without_seed(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (tensor * 2.0).backward()

    def test_backward_with_explicit_seed(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        (tensor * 2.0).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(tensor.grad, [2.0, 20.0])

    def test_clamp_invalid_range_raises(self):
        with pytest.raises(ValueError):
            Tensor([1.0]).clamp(2.0, 1.0)


class TestMaximumConcatStack:
    def test_maximum_forward(self):
        result = maximum(Tensor([1.0, 5.0]), Tensor([3.0, 2.0]))
        np.testing.assert_allclose(result.data, [3.0, 5.0])

    def test_maximum_gradient_routes_to_winner(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([3.0, 2.0], requires_grad=True)
        maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])

    def test_concat_forward_and_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        out = concat([a, b])
        np.testing.assert_allclose(out.data, [1.0, 2.0, 3.0])
        (out * Tensor([1.0, 2.0, 3.0])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])
        np.testing.assert_allclose(b.grad, [3.0])

    def test_stack_forward_and_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = stack([a, b])
        assert out.shape == (2, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        with no_grad():
            tensor = Tensor([1.0], requires_grad=True)
            out = tensor * 2.0
        assert not out.requires_grad
        assert not tensor.requires_grad

    def test_detach(self):
        tensor = Tensor([1.0], requires_grad=True)
        detached = (tensor * 2.0).detach()
        assert not detached.requires_grad

    def test_zero_grad(self):
        tensor = Tensor([1.0], requires_grad=True)
        (tensor * 2.0).sum().backward()
        assert tensor.grad is not None
        tensor.zero_grad()
        assert tensor.grad is None


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=-5, max_value=5), min_size=1, max_size=8))
    def test_composite_gradient_matches_numeric(self, values):
        point = np.array(values, dtype=np.float64)

        def scalar(p):
            return float(np.tanh((p * p).sum() * 0.1) + np.logaddexp(0, p).sum() * 0.05)

        def builder(t):
            return ((t * t).sum() * 0.1).tanh() + t.softplus().sum() * 0.05

        numeric = numeric_gradient(scalar, point)
        analytic = analytic_gradient(builder, point)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=-3, max_value=3), min_size=2, max_size=6),
           st.lists(st.floats(min_value=-3, max_value=3), min_size=2, max_size=6))
    def test_addition_commutes(self, left, right):
        size = min(len(left), len(right))
        a = Tensor(np.array(left[:size]))
        b = Tensor(np.array(right[:size]))
        np.testing.assert_allclose((a + b).data, (b + a).data)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.1, max_value=10), min_size=1, max_size=8))
    def test_exp_log_roundtrip(self, values):
        point = np.array(values, dtype=np.float64)
        roundtrip = Tensor(point).log().exp()
        np.testing.assert_allclose(roundtrip.data, point, rtol=1e-9)
