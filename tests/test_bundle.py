"""Deployment-bundle tests: export / load round trips and verification.

The headline contract is the deployment path's acceptance criterion: a
session loaded with ``Session.from_bundle`` predicts bit-identically to the
live session the bundle was exported from, on every registered simulator.
The verification tests pin the failure modes: tampered member bytes, a
manifest/table digest disagreement, and a future schema version all fail
with a :class:`BundleError` naming the offending field.
"""

import json
import os
import zipfile

import numpy as np
import pytest

from repro.api import (BundleError, BundleSpec, PredictSpec, Session,
                       SpecValidationError, TuneSpec, inspect_bundle,
                       load_bundle)
from repro.api.bundle import (BUNDLE_SCHEMA_VERSION, MANIFEST_MEMBER,
                              TABLE_MEMBER, read_manifest)

SEED = 3


def _blocks(target, num_blocks=16):
    from repro.bhive import build_dataset

    return [example.block for example
            in build_dataset(target, num_blocks=num_blocks,
                             seed=SEED).train_examples]


def _rewrite_member(source, destination, member, payload):
    """Copy a zip archive, replacing one member's bytes."""
    with zipfile.ZipFile(source) as archive:
        members = {name: archive.read(name) for name in archive.namelist()}
    members[member] = payload
    with zipfile.ZipFile(destination, "w") as archive:
        for name, data in members.items():
            archive.writestr(name, data)


class TestExportRoundTrip:
    @pytest.mark.parametrize("simulator", ["mca", "llvm_sim"])
    def test_from_bundle_predicts_bit_identically(self, tmp_path, simulator):
        live = Session.from_spec(PredictSpec(target="haswell",
                                             simulator=simulator))
        path = os.path.join(tmp_path, f"{simulator}.bundle")
        manifest = live.export_bundle(path)
        assert manifest.target == "haswell"
        assert manifest.simulator == simulator

        blocks = _blocks("haswell")
        loaded = Session.from_bundle(path)
        assert np.array_equal(loaded.predict(blocks), live.predict(blocks))
        assert loaded.bundle_manifest.table_digest == manifest.table_digest

    def test_exports_learned_table_and_surrogate_after_tune(self, tmp_path):
        session = Session.from_spec(TuneSpec(target="haswell", preset="test",
                                             num_blocks=40, seed=SEED))
        outcome = session.tune()
        path = os.path.join(tmp_path, "tuned.bundle")
        manifest = session.export_bundle(path, table=outcome.learned_table)
        # The trained surrogate rides along by default after a tune() ...
        assert manifest.surrogate is not None
        loaded = Session.from_bundle(path)
        # ... and the bundled table is the learned one, not the default.
        blocks = _blocks("haswell", num_blocks=12)
        assert np.array_equal(loaded.predict(blocks),
                              session.predict(blocks, outcome.learned_table))
        # The surrogate weights rebuild bit-identically from the manifest's
        # config plus the embedded state dict.
        surrogate = loaded.bundle_surrogate()
        trained_state = session._last_surrogate.state_dict()
        rebuilt_state = surrogate.state_dict()
        assert sorted(rebuilt_state) == sorted(trained_state)
        for key, value in trained_state.items():
            assert np.array_equal(rebuilt_state[key], value), key

    def test_bundle_surrogate_unavailable_without_weights(self, tmp_path):
        path = os.path.join(tmp_path, "plain.bundle")
        Session.from_spec(PredictSpec(target="haswell")).export_bundle(path)
        loaded = Session.from_bundle(path)
        with pytest.raises(ValueError, match="no bundled surrogate"):
            loaded.bundle_surrogate()

    def test_export_from_table_path(self, tmp_path):
        live = Session.from_spec(PredictSpec(target="haswell"))
        table_path = os.path.join(tmp_path, "table.json")
        live.default_table().save_json(table_path)
        path = os.path.join(tmp_path, "from_path.bundle")
        manifest = live.export_bundle(path, table=table_path)
        assert load_bundle(path).manifest.table_digest == manifest.table_digest

    def test_from_bundle_overrides_engine_knobs(self, tmp_path):
        path = os.path.join(tmp_path, "hsw.bundle")
        Session.from_spec(PredictSpec(target="haswell")).export_bundle(path)
        loaded = Session.from_bundle(path, engine_megabatch=False)
        assert loaded.spec.engine_megabatch is False

    def test_inspect_reports_contents(self, tmp_path):
        path = os.path.join(tmp_path, "hsw.bundle")
        Session.from_spec(PredictSpec(target="haswell")).export_bundle(path)
        summary = inspect_bundle(path)
        assert summary["target"] == "haswell"
        assert summary["verified"] is True
        assert summary["has_surrogate"] is False
        assert TABLE_MEMBER in summary["members"]
        json.dumps(summary)  # plain data, JSON-serializable


class TestVerification:
    @pytest.fixture
    def bundle_path(self, tmp_path):
        path = os.path.join(tmp_path, "hsw.bundle")
        Session.from_spec(PredictSpec(target="haswell")).export_bundle(path)
        return path

    def test_tampered_member_rejected_naming_the_member(self, tmp_path,
                                                        bundle_path):
        tampered = os.path.join(tmp_path, "tampered.bundle")
        _rewrite_member(bundle_path, tampered, TABLE_MEMBER, b"garbage")
        with pytest.raises(BundleError, match="digest mismatch") as excinfo:
            load_bundle(tampered)
        assert excinfo.value.field == f"contents[{TABLE_MEMBER}]"

    def test_future_schema_version_rejected(self, tmp_path, bundle_path):
        manifest = json.loads(
            zipfile.ZipFile(bundle_path).read(MANIFEST_MEMBER))
        manifest["schema_version"] = BUNDLE_SCHEMA_VERSION + 1
        future = os.path.join(tmp_path, "future.bundle")
        _rewrite_member(bundle_path, future, MANIFEST_MEMBER,
                        json.dumps(manifest).encode())
        with pytest.raises(BundleError, match="schema_version") as excinfo:
            read_manifest(future)
        assert excinfo.value.field == "schema_version"
        assert "upgrade" in str(excinfo.value)

    def test_table_digest_disagreement_rejected(self, tmp_path, bundle_path):
        # Re-point table_digest at a wrong value and fix the member digest so
        # only the manifest/table consistency check can catch it.
        from repro.api.bundle import _member_digest

        with zipfile.ZipFile(bundle_path) as archive:
            manifest = json.loads(archive.read(MANIFEST_MEMBER))
            table_bytes = archive.read(TABLE_MEMBER)
        manifest["table_digest"] = "0" * len(manifest["table_digest"])
        manifest["contents"][TABLE_MEMBER] = _member_digest(table_bytes)
        bad = os.path.join(tmp_path, "bad_digest.bundle")
        _rewrite_member(bundle_path, bad, MANIFEST_MEMBER,
                        json.dumps(manifest).encode())
        with pytest.raises(BundleError, match="table_digest"):
            load_bundle(bad)

    def test_not_a_zip_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "not_a_bundle")
        with open(path, "w") as handle:
            handle.write("hello")
        with pytest.raises(BundleError, match="not a zip"):
            read_manifest(path)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_manifest(os.path.join(tmp_path, "absent.bundle"))

    def test_unknown_manifest_field_rejected(self, tmp_path, bundle_path):
        manifest = json.loads(
            zipfile.ZipFile(bundle_path).read(MANIFEST_MEMBER))
        manifest["extra_field"] = 1
        bad = os.path.join(tmp_path, "unknown_field.bundle")
        _rewrite_member(bundle_path, bad, MANIFEST_MEMBER,
                        json.dumps(manifest).encode())
        with pytest.raises(BundleError, match="extra_field"):
            read_manifest(bad)


class TestSpecs:
    def test_bundle_spec_validates_registry_keys(self):
        with pytest.raises(SpecValidationError, match="target"):
            BundleSpec(target="hasswell").validate()
        with pytest.raises(SpecValidationError, match="surrogate"):
            BundleSpec(surrogate="lstmm").validate()

    def test_serve_spec_rejects_bundle_plus_table(self):
        from repro.api import ServeSpec

        with pytest.raises(SpecValidationError, match="table_path"):
            ServeSpec(bundle_path="a.bundle", table_path="t.json").validate()

    def test_serve_spec_rejects_bad_port(self):
        from repro.api import ServeSpec

        with pytest.raises(SpecValidationError, match="port"):
            ServeSpec(port=70000).validate()


class TestCLI:
    def test_bundle_export_and_inspect(self, tmp_path, capsys):
        from repro import cli

        path = os.path.join(tmp_path, "cli.bundle")
        assert cli.main(["bundle", "export", "--uarch", "haswell",
                         "--output", path]) == 0
        out = capsys.readouterr().out
        assert "table digest" in out
        assert cli.main(["bundle", "inspect", path]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["verified"] is True

    def test_inspect_corrupted_bundle_exits_cleanly(self, tmp_path, capsys):
        from repro import cli

        path = os.path.join(tmp_path, "cli.bundle")
        cli.main(["bundle", "export", "--uarch", "haswell", "--output", path])
        capsys.readouterr()
        tampered = os.path.join(tmp_path, "tampered.bundle")
        _rewrite_member(path, tampered, TABLE_MEMBER, b"garbage")
        with pytest.raises(SystemExit, match="digest mismatch"):
            cli.main(["bundle", "inspect", tampered])
