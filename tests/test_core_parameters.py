"""Tests for the DiffTune parameter-space description and adapters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adapters import LLVMSimAdapter, MCAAdapter
from repro.core.parameters import ParameterArrays, ParameterField, ParameterSpec
from repro.core.parameters import PORT_MAP_FIELD_NAME
from repro.targets import HASWELL, ZEN2


def make_simple_spec(num_opcodes=5):
    return ParameterSpec(
        global_fields=[ParameterField("Width", 1, lower_bound=1, integer=True,
                                      sample_low=1, sample_high=8)],
        per_instruction_fields=[
            ParameterField("Latency", 1, lower_bound=0, integer=True,
                           sample_low=0, sample_high=5),
            ParameterField("Ports", 4, lower_bound=0, integer=True,
                           sample_low=0, sample_high=2),
        ],
        num_opcodes=num_opcodes)


class TestParameterField:
    def test_scale(self):
        field = ParameterField("X", 1, lower_bound=1, integer=True, sample_low=1, sample_high=9)
        assert field.scale == 8.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ParameterField("X", 0, 0, True, 0, 5)
        with pytest.raises(ValueError):
            ParameterField("X", 1, 0, True, 5, 1)
        with pytest.raises(ValueError):
            ParameterField("X", 1, 2, True, 0, 5)


class TestParameterSpec:
    def test_dimensions(self):
        spec = make_simple_spec()
        assert spec.global_dim == 1
        assert spec.per_instruction_dim == 5
        assert spec.num_parameters == 1 + 5 * 5

    def test_field_slices(self):
        spec = make_simple_spec()
        assert spec.per_instruction_field_slice("Latency") == slice(0, 1)
        assert spec.per_instruction_field_slice("Ports") == slice(1, 5)
        assert spec.global_field_slice("Width") == slice(0, 1)

    def test_field_by_name(self):
        spec = make_simple_spec()
        assert spec.field_by_name("Latency").lower_bound == 0
        with pytest.raises(KeyError):
            spec.field_by_name("Nope")

    def test_lower_bounds_and_scales(self):
        spec = make_simple_spec()
        np.testing.assert_allclose(spec.per_instruction_lower_bounds(), [0, 0, 0, 0, 0])
        np.testing.assert_allclose(spec.global_lower_bounds(), [1])
        assert spec.per_instruction_scales()[0] == 5.0

    def test_sampling_respects_ranges(self, rng):
        spec = make_simple_spec()
        arrays = spec.sample(rng)
        assert arrays.global_values.shape == (1,)
        assert arrays.per_instruction_values.shape == (5, 5)
        assert arrays.global_values[0] >= 1
        assert arrays.per_instruction_values.min() >= 0
        assert arrays.per_instruction_values[:, 0].max() <= 5

    def test_port_map_sampling_is_sparse(self, rng):
        spec = ParameterSpec(
            global_fields=[],
            per_instruction_fields=[ParameterField(PORT_MAP_FIELD_NAME, 10, 0, True, 0, 2)],
            num_opcodes=200)
        arrays = spec.sample(rng)
        # "0 to 2 cycles to between 0 and 2 randomly selected ports".
        per_row_nonzero = (arrays.per_instruction_values > 0).sum(axis=1)
        assert per_row_nonzero.max() <= 2
        assert (arrays.per_instruction_values <= 2).all()

    def test_sample_near_stays_in_range(self, rng):
        spec = make_simple_spec()
        center = spec.sample(rng)
        nearby = spec.sample_near(center, rng, spread=0.3)
        assert nearby.per_instruction_values.min() >= 0
        assert nearby.per_instruction_values[:, 0].max() <= 5 + 1e-9
        assert nearby.global_values[0] >= 1

    def test_normalize_for_surrogate_training(self, rng):
        spec = make_simple_spec()
        arrays = spec.sample(rng)
        normalized = spec.normalize_for_surrogate_training(arrays)
        assert normalized.per_instruction_values.min() >= 0
        assert normalized.per_instruction_values.max() <= 1 + 1e-9
        assert normalized.global_values.min() >= 0

    def test_clip_and_round(self):
        spec = make_simple_spec()
        arrays = ParameterArrays(global_values=np.array([-3.2]),
                                 per_instruction_values=np.full((5, 5), 2.6))
        cleaned = spec.round_to_integers(spec.clip_to_bounds(arrays))
        assert cleaned.global_values[0] == 1
        assert np.all(cleaned.per_instruction_values == 3)

    def test_flat_vector_roundtrip(self, rng):
        spec = make_simple_spec()
        arrays = spec.sample(rng)
        flat = arrays.to_flat_vector()
        restored = ParameterArrays.from_flat_vector(flat, spec.global_dim, spec.num_opcodes,
                                                    spec.per_instruction_dim)
        np.testing.assert_allclose(restored.global_values, arrays.global_values)
        np.testing.assert_allclose(restored.per_instruction_values,
                                   arrays.per_instruction_values)

    def test_flat_vector_length_check(self):
        with pytest.raises(ValueError):
            ParameterArrays.from_flat_vector(np.zeros(3), 1, 2, 2)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_sampled_tables_always_satisfy_bounds(self, seed):
        spec = make_simple_spec(num_opcodes=8)
        arrays = spec.sample(np.random.default_rng(seed))
        clipped = spec.clip_to_bounds(arrays)
        np.testing.assert_allclose(clipped.global_values, arrays.global_values)
        np.testing.assert_allclose(clipped.per_instruction_values,
                                   arrays.per_instruction_values)


class TestMCAAdapter:
    def test_spec_matches_paper_table2(self, mca_adapter):
        spec = mca_adapter.parameter_spec()
        names = [field.name for field in spec.per_instruction_fields]
        assert names == ["NumMicroOps", "WriteLatency", "ReadAdvanceCycles", "PortMap"]
        assert [field.name for field in spec.global_fields] == \
            ["DispatchWidth", "ReorderBufferSize"]
        assert spec.per_instruction_dim == 1 + 1 + 3 + 10

    def test_parameter_count_scale(self, mca_adapter):
        # The paper counts 11265 parameters for 837 opcodes (2 + 15 per opcode
        # minus the global double count); our opcode universe is smaller but
        # the per-opcode structure is identical.
        spec = mca_adapter.parameter_spec()
        assert spec.num_parameters == 2 + 15 * len(mca_adapter.opcode_table)

    def test_default_arrays_roundtrip(self, mca_adapter):
        arrays = mca_adapter.default_arrays()
        table = mca_adapter.table_from_arrays(arrays)
        np.testing.assert_array_equal(table.write_latency,
                                      mca_adapter.default_table().write_latency)
        assert table.dispatch_width == mca_adapter.default_table().dispatch_width

    def test_table_from_arrays_clips(self, mca_adapter):
        arrays = mca_adapter.default_arrays()
        arrays.per_instruction_values[:, :] = -5.0
        arrays.global_values[:] = -1.0
        table = mca_adapter.table_from_arrays(arrays)
        table.validate()

    def test_predict_timings_shape(self, mca_adapter, sample_blocks):
        timings = mca_adapter.predict_timings(mca_adapter.default_arrays(), sample_blocks[:4])
        assert timings.shape == (4,)
        assert np.all(timings > 0)

    def test_narrow_sampling_ranges(self):
        narrow = MCAAdapter(HASWELL, narrow_sampling=True)
        wide = MCAAdapter(HASWELL, narrow_sampling=False)
        assert narrow.parameter_spec().field_by_name("NumMicroOps").sample_high < \
            wide.parameter_spec().field_by_name("NumMicroOps").sample_high

    def test_learn_fields_freezing(self, sample_blocks):
        adapter = MCAAdapter(HASWELL, learn_fields=["WriteLatency"])
        spec = adapter.parameter_spec()
        arrays = spec.sample(np.random.default_rng(0))
        table = adapter.table_from_arrays(arrays)
        default = adapter.default_table()
        # Non-learned fields come back as defaults; WriteLatency is learned.
        np.testing.assert_array_equal(table.num_micro_ops, default.num_micro_ops)
        np.testing.assert_array_equal(table.port_map, default.port_map)
        assert table.dispatch_width == default.dispatch_width
        assert not np.array_equal(table.write_latency, default.write_latency)

    def test_freeze_unlearned_fields(self):
        adapter = MCAAdapter(HASWELL, learn_fields=["WriteLatency"])
        spec = adapter.parameter_spec()
        arrays = spec.sample(np.random.default_rng(1))
        frozen = adapter.freeze_unlearned_fields(arrays)
        default = adapter.default_arrays()
        uops_slice = spec.per_instruction_field_slice("NumMicroOps")
        np.testing.assert_allclose(frozen.per_instruction_values[:, uops_slice],
                                   default.per_instruction_values[:, uops_slice])
        latency_slice = spec.per_instruction_field_slice("WriteLatency")
        np.testing.assert_allclose(frozen.per_instruction_values[:, latency_slice],
                                   arrays.per_instruction_values[:, latency_slice])

    def test_unlearned_dimension_masks(self):
        adapter = MCAAdapter(HASWELL, learn_fields=["WriteLatency"])
        per_mask, global_mask = adapter.unlearned_dimension_masks()
        spec = adapter.parameter_spec()
        assert per_mask.sum() == spec.per_instruction_dim - 1
        assert global_mask.all()
        full = MCAAdapter(HASWELL)
        assert full.unlearned_dimension_masks() == (None, None)


class TestLLVMSimAdapter:
    def test_spec_matches_table7(self, llvm_sim_adapter):
        spec = llvm_sim_adapter.parameter_spec()
        assert [field.name for field in spec.per_instruction_fields] == \
            ["WriteLatency", "PortMap"]
        assert spec.global_dim == 0

    def test_default_roundtrip(self, llvm_sim_adapter):
        arrays = llvm_sim_adapter.default_arrays()
        table = llvm_sim_adapter.table_from_arrays(arrays)
        np.testing.assert_array_equal(table.write_latency,
                                      llvm_sim_adapter.default_table().write_latency)

    def test_predict_timings(self, llvm_sim_adapter, sample_blocks):
        timings = llvm_sim_adapter.predict_timings(llvm_sim_adapter.default_arrays(),
                                                   sample_blocks[:4])
        assert timings.shape == (4,) and np.all(timings > 0)

    def test_sampling_shapes(self, llvm_sim_adapter, rng):
        arrays = llvm_sim_adapter.parameter_spec().sample(rng)
        assert arrays.global_values.shape == (0,)
        assert arrays.per_instruction_values.shape == (
            len(llvm_sim_adapter.opcode_table), 11)
