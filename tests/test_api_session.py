"""Tests for the Session facade (repro.api.session).

The headline contract is the acceptance criterion of the API redesign:
``Session.tune()`` on the test preset is bit-identical to the pre-redesign
``DiffTune.learn`` trajectory (same adapter construction, same config, same
dataset, same rng streams).
"""

import os

import numpy as np
import pytest

from repro.api import (CapabilityError, EvaluateSpec, PredictSpec, Session,
                       SpecValidationError, TuneSpec)

NUM_BLOCKS = 60
SEED = 3


@pytest.fixture(scope="module")
def tune_session():
    return Session.from_spec(TuneSpec(target="haswell", preset="test",
                                      num_blocks=NUM_BLOCKS, seed=SEED))


class TestConstruction:
    def test_from_spec_kwargs_only(self):
        session = Session.from_spec(target="skylake", preset="test")
        assert session.target_name == "skylake"
        assert session.uarch.name == "Skylake"

    def test_from_spec_dict(self):
        session = Session.from_spec({"target": "zen2", "num_blocks": 50})
        assert session.target_name == "zen2"

    def test_from_spec_overrides(self):
        session = Session.from_spec(TuneSpec(target="haswell"), seed=9)
        assert session.spec.seed == 9

    def test_override_unknown_field_raises(self):
        with pytest.raises(SpecValidationError, match="bogus"):
            Session.from_spec(TuneSpec(), bogus=1)

    def test_invalid_spec_rejected_eagerly(self):
        with pytest.raises(SpecValidationError, match="target"):
            Session.from_spec(target="hasswell")

    def test_rejects_non_specs(self):
        with pytest.raises(TypeError):
            Session(object())

    def test_config_comes_from_preset_with_overrides(self):
        session = Session.from_spec(preset="test", surrogate="pooled",
                                    batch_training=False)
        assert session.config.surrogate.kind == "pooled"
        assert session.config.surrogate_training.batched is False

    def test_adapter_is_memoized(self, tune_session):
        assert tune_session.adapter is tune_session.adapter


class TestTuneBitIdentical:
    def test_matches_pre_redesign_difftune_learn(self, tune_session):
        # The exact construction path the CLI used before the redesign.
        from repro.bhive import build_dataset
        from repro.core.adapters import MCAAdapter
        from repro.core.config import test_config
        from repro.core.difftune import DiffTune
        from repro.targets import get_uarch

        dataset = build_dataset("haswell", num_blocks=NUM_BLOCKS, seed=SEED)
        train = dataset.train_examples
        blocks = [example.block for example in train]
        timings = np.array([example.timing for example in train])
        adapter = MCAAdapter(get_uarch("haswell"), narrow_sampling=True)
        config = test_config(SEED)
        config.surrogate_training.batched = True
        config.table_optimization.batched = True
        legacy = DiffTune(adapter, config).learn(blocks, timings)

        outcome = tune_session.tune()
        assert outcome.completed
        assert np.array_equal(legacy.learned_arrays.global_values,
                              outcome.learned_arrays.global_values)
        assert np.array_equal(legacy.learned_arrays.per_instruction_values,
                              outcome.learned_arrays.per_instruction_values)
        assert outcome.train_error == legacy.train_error
        # And the surrogate-training trajectory itself is identical.
        assert outcome.raw.surrogate_result.epoch_losses == \
            legacy.surrogate_result.epoch_losses

    def test_reports_test_metrics(self, tune_session):
        outcome = tune_session.tune()
        assert outcome.test_error is not None
        assert outcome.default_test_error is not None
        assert outcome.learned_table is not None
        outcome.learned_table.validate()

    def test_explicit_blocks_skip_test_metrics(self, tune_session):
        blocks, timings = tune_session.split("train")
        outcome = Session.from_spec(tune_session.spec).tune(blocks, timings)
        assert outcome.completed
        assert outcome.test_error is None


class TestTuneCheckpointing:
    def test_stop_after_and_resume(self, tmp_path):
        checkpoint_dir = os.path.join(tmp_path, "ckpt")
        base = dict(target="haswell", preset="test", num_blocks=NUM_BLOCKS,
                    seed=SEED, checkpoint_dir=checkpoint_dir)
        stopped = Session.from_spec(TuneSpec(stop_after="train_surrogate",
                                             **base)).tune()
        assert not stopped.completed
        assert stopped.stopped_after == "train_surrogate"
        resumed = Session.from_spec(TuneSpec(resume=True, **base)).tune()
        assert resumed.completed
        assert "train_surrogate" in resumed.resumed_stages
        uninterrupted = Session.from_spec(
            TuneSpec(target="haswell", preset="test",
                     num_blocks=NUM_BLOCKS, seed=SEED)).tune()
        assert np.array_equal(
            uninterrupted.learned_arrays.per_instruction_values,
            resumed.learned_arrays.per_instruction_values)


class TestEvaluatePredict:
    def test_evaluate_default_table(self):
        session = Session.from_spec(EvaluateSpec(target="haswell",
                                                 num_blocks=NUM_BLOCKS, seed=SEED))
        report = session.evaluate()
        assert report["simulator"] == "mca"
        assert report["split"] == "test"
        assert 0.0 <= report["error"] < 1.0
        assert report["num_blocks"] == len(session.dataset().test_examples)

    def test_evaluate_matches_direct_adapter(self):
        from repro.eval.metrics import error_and_tau

        session = Session.from_spec(EvaluateSpec(target="haswell",
                                                 num_blocks=NUM_BLOCKS, seed=SEED))
        blocks, timings = session.split("test")
        direct_error, direct_tau = error_and_tau(
            session.adapter.engine.run_one(session.default_table(), blocks), timings)
        report = session.evaluate()
        assert report["error"] == pytest.approx(direct_error)
        assert report["tau"] == pytest.approx(direct_tau)

    def test_predict_single_and_batch_shapes(self, tune_session):
        blocks, _timings = tune_session.split("test")
        single = tune_session.predict(blocks)
        assert single.shape == (len(blocks),)
        with pytest.warns(DeprecationWarning, match="sweep_tables.*deprecated"):
            tables = tune_session.sweep_tables("DispatchWidth", [1, 2, 3])
        batch = tune_session.predict(blocks, tables)
        assert batch.shape == (3, len(blocks))

    def test_predict_reuses_engine_cache_across_calls(self):
        session = Session.from_spec(PredictSpec(target="haswell"))
        from repro.bhive import build_dataset

        blocks = [example.block for example
                  in build_dataset("haswell", num_blocks=20, seed=0).train_examples]
        first = session.predict(blocks)
        executed_after_first = session.stats()["engine"]["executed"]
        second = session.predict(blocks)
        assert np.array_equal(first, second)
        stats = session.stats()["engine"]
        assert stats["executed"] == executed_after_first  # all hits, no re-runs
        assert stats["result_hits"] >= len(blocks)

    def test_predict_empty_blocks_short_circuits(self):
        session = Session.from_spec(PredictSpec(target="haswell"))
        empty = session.predict([])
        assert empty.shape == (0,)
        # No table was resolved and no engine work happened.
        assert session.stats()["engine"]["executed"] == 0
        batch = session.predict([], [object(), object()])
        assert batch.shape == (2, 0)
        assert session.stats()["predict_calls"] == 2
        assert session.stats()["predicted_blocks"] == 0

    def test_stats_counts_predict_traffic(self, tune_session):
        blocks, _timings = tune_session.split("test")
        before = tune_session.stats()
        tune_session.predict(blocks)
        after = tune_session.stats()
        assert after["predict_calls"] == before["predict_calls"] + 1
        assert after["predicted_blocks"] == (before["predicted_blocks"]
                                             + len(blocks))
        assert isinstance(after["engine"], dict)

    def test_engine_stats_shim_warns_and_matches(self, tune_session):
        with pytest.warns(DeprecationWarning, match="engine_stats.*deprecated"):
            shimmed = tune_session.engine_stats()
        assert shimmed == tune_session.stats()["engine"]

    def test_evaluate_with_table_path(self, tmp_path, tune_session):
        table = tune_session.default_table()
        path = os.path.join(tmp_path, "table.json")
        table.save_json(path)
        report = Session.from_spec(
            EvaluateSpec(target="haswell", num_blocks=NUM_BLOCKS, seed=SEED,
                         table_path=path)).evaluate()
        assert 0.0 <= report["error"] < 1.0

    def test_load_table_is_memoized_per_path(self, tmp_path, tune_session):
        path = os.path.join(tmp_path, "table.json")
        tune_session.default_table().save_json(path)
        session = Session.from_spec(PredictSpec(target="haswell", table_path=path))
        assert session.load_table(path) is session.load_table(path)

    def test_dataset_path_overrides_target(self, tmp_path):
        from repro.bhive import build_dataset

        path = os.path.join(tmp_path, "zen2.json")
        build_dataset("zen2", num_blocks=30, seed=1).save_json(path)
        session = Session.from_spec(EvaluateSpec(dataset_path=path))
        assert session.target_name == "zen2"
        assert session.uarch.name == "Zen 2"


class TestCapabilities:
    def test_timeline_for_mca(self, tune_session):
        text = tune_session.timeline("addq %rax, %rbx; imulq %rbx, %rcx")
        assert "Predicted timing" in text

    def test_timeline_missing_capability(self):
        session = Session.from_spec(PredictSpec(simulator="llvm_sim"))
        with pytest.raises(CapabilityError, match="no timeline view.*mca"):
            session.timeline("addq %rax, %rbx")

    def test_sweep_missing_capability(self):
        session = Session.from_spec(EvaluateSpec(simulator="llvm_sim",
                                                 num_blocks=30))
        with pytest.raises(CapabilityError, match="cannot sweep"), \
                pytest.warns(DeprecationWarning):
            session.sweep_tables("DispatchWidth", [1, 2])

    def test_llvm_sim_rejects_learn_fields_at_validation(self):
        with pytest.raises(SpecValidationError,
                           match="learn_fields.*does not support"):
            Session.from_spec(TuneSpec(simulator="llvm_sim",
                                       learn_fields=["WriteLatency"]))

    def test_llvm_sim_adapter_factory_backstop(self):
        # Bypassing spec validation still fails with a clear message.
        from repro.api import SIMULATORS, TARGETS

        with pytest.raises(ValueError, match="learn_fields is not supported"):
            SIMULATORS.get("llvm_sim").create_adapter(
                TARGETS.get("haswell"), learn_fields=["WriteLatency"])

    def test_llvm_sim_tune_runs(self):
        outcome = Session.from_spec(TuneSpec(simulator="llvm_sim", preset="test",
                                             num_blocks=40, seed=1)).tune()
        assert outcome.completed
        outcome.learned_table.validate()
