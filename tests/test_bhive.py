"""Tests for the BHive-like dataset substrate: generator, categories,
measurement harness, dataset container."""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bhive import (APPLICATION_PROFILES, BasicBlockDataset, BlockCategory, BlockGenerator,
                         LabeledBlock, MeasurementHarness, build_dataset, categorize_block)
from repro.bhive.applications import application_weights
from repro.bhive.dataset import DatasetSplits
from repro.isa.parser import parse_block
from repro.targets import HASWELL
from repro.targets.hardware import HardwareModel


class TestApplicationProfiles:
    def test_all_paper_applications_present(self):
        names = {profile.name for profile in APPLICATION_PROFILES}
        expected = {"OpenBLAS", "Redis", "SQLite", "GZip", "TensorFlow", "Clang/LLVM",
                    "Eigen", "Embree", "FFmpeg"}
        assert expected == names

    def test_weights_normalized(self):
        weights = application_weights()
        assert abs(sum(weights.values()) - 1.0) < 1e-9
        assert weights["Clang/LLVM"] == max(weights.values())

    def test_profile_mixes_are_positive(self):
        for profile in APPLICATION_PROFILES:
            assert all(weight > 0 for weight in profile.class_mix.values())
            assert profile.max_block_length >= profile.mean_block_length


class TestCategories:
    def test_scalar_block(self):
        block = parse_block("addq %rax, %rbx\nsubq %rcx, %rdx")
        assert categorize_block(block) == BlockCategory.SCALAR

    def test_vector_block(self):
        block = parse_block("mulps %xmm1, %xmm2\naddps %xmm2, %xmm3")
        assert categorize_block(block) == BlockCategory.VEC

    def test_scalar_vec_block(self):
        block = parse_block("addq %rax, %rbx\nmulps %xmm1, %xmm2")
        assert categorize_block(block) == BlockCategory.SCALAR_VEC

    def test_load_block(self):
        block = parse_block("movq 8(%rsp), %rax\nmovq 16(%rsp), %rbx")
        assert categorize_block(block) == BlockCategory.LD

    def test_store_block(self):
        block = parse_block("movq %rax, 8(%rsp)\nmovq %rbx, 16(%rsp)")
        assert categorize_block(block) == BlockCategory.ST

    def test_load_store_block(self):
        block = parse_block("movq 8(%rsp), %rax\nmovq %rax, 16(%rsp)")
        assert categorize_block(block) == BlockCategory.LD_ST

    def test_category_str(self):
        assert str(BlockCategory.SCALAR_VEC) == "Scalar/Vec"

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=50_000))
    def test_every_generated_block_gets_a_category(self, seed):
        block = BlockGenerator(seed=seed).generate_block()
        assert isinstance(categorize_block(block), BlockCategory)


class TestGenerator:
    def test_block_count(self, block_generator):
        blocks = block_generator.generate_blocks(25)
        assert len(blocks) == 25

    def test_length_distribution_shape(self):
        generator = BlockGenerator(seed=3)
        lengths = [len(block) for block in generator.generate_blocks(400)]
        assert 2 <= np.median(lengths) <= 8
        assert np.mean(lengths) >= np.median(lengths) - 1  # long tail
        assert max(lengths) > 10

    def test_source_applications_assigned(self, block_generator):
        blocks = block_generator.generate_blocks(50)
        assert all(len(block.source_applications) >= 1 for block in blocks)
        names = {application for block in blocks for application in block.source_applications}
        assert len(names) >= 3

    def test_profile_specific_generation(self):
        generator = BlockGenerator(seed=5)
        eigen_profile = next(profile for profile in APPLICATION_PROFILES
                             if profile.name == "Eigen")
        blocks = [generator.generate_block(eigen_profile) for _ in range(30)]
        vector_fraction = np.mean([block.num_vector_instructions() / len(block)
                                   for block in blocks])
        assert vector_fraction > 0.25

    def test_determinism_given_seed(self):
        first = BlockGenerator(seed=11).generate_blocks(10)
        second = BlockGenerator(seed=11).generate_blocks(10)
        assert [b.to_assembly() for b in first] == [b.to_assembly() for b in second]

    def test_contains_zero_idioms_and_stack_traffic(self):
        generator = BlockGenerator(seed=13)
        blocks = generator.generate_blocks(300)
        opcode_names = {name for block in blocks for name in block.opcode_names()}
        assert "XOR32rr" in opcode_names
        assert "PUSH64r" in opcode_names or "POP64r" in opcode_names
        assert any(name.endswith("rm") for name in opcode_names)


class TestMeasurementHarness:
    def test_measure_block_returns_median(self, haswell_hardware, simple_block):
        harness = MeasurementHarness(haswell_hardware, runs=5, seed=1)
        result = harness.measure_block(simple_block)
        assert min(result.runs) <= result.timing <= max(result.runs)

    def test_stability_filtering(self, simple_block):
        hardware = HardwareModel(HASWELL, seed=0)
        strict = MeasurementHarness(hardware, runs=3, stability_threshold=0.0, seed=2)
        kept, timings = strict.measure_blocks([simple_block] * 5)
        assert len(kept) == len(timings) <= 5

    def test_keep_unstable_when_requested(self, haswell_hardware, sample_blocks):
        harness = MeasurementHarness(haswell_hardware, runs=3, stability_threshold=0.0, seed=3)
        kept, timings = harness.measure_blocks(sample_blocks[:10], drop_unstable=False)
        assert len(kept) == 10 and len(timings) == 10

    def test_invalid_runs(self, haswell_hardware):
        with pytest.raises(ValueError):
            MeasurementHarness(haswell_hardware, runs=0)


class TestDataset:
    def test_build_dataset_structure(self, small_dataset):
        assert len(small_dataset) > 100
        assert small_dataset.uarch_name == "Haswell"
        splits = small_dataset.splits
        total = len(splits.train) + len(splits.validation) + len(splits.test)
        assert total == len(small_dataset)
        assert len(splits.train) > len(splits.test)

    def test_split_ratios(self, small_dataset):
        fraction_train = len(small_dataset.splits.train) / len(small_dataset)
        assert 0.7 < fraction_train < 0.9

    def test_splits_are_block_disjoint(self, small_dataset):
        train_keys = {small_dataset[i].block.structural_key()
                      for i in small_dataset.splits.train}
        test_keys = {small_dataset[i].block.structural_key()
                     for i in small_dataset.splits.test}
        assert not (train_keys & test_keys)

    def test_summary_statistics_fields(self, small_dataset):
        stats = small_dataset.summary_statistics()
        for key in ["num_blocks_total", "num_blocks_train", "num_blocks_test",
                    "block_length_min", "block_length_median", "block_length_mean",
                    "block_length_max", "median_block_timing", "unique_opcodes_total"]:
            assert key in stats
        assert stats["num_blocks_total"] == len(small_dataset)
        assert stats["block_length_min"] >= 1
        assert stats["unique_opcodes_train"] <= stats["unique_opcodes_total"]

    def test_timings_positive(self, small_dataset):
        assert np.all(small_dataset.timings() > 0)

    def test_per_application_groups(self, small_dataset):
        groups = small_dataset.per_application_indices()
        assert groups
        for indices in groups.values():
            assert all(index in small_dataset.splits.test for index in indices)

    def test_per_category_groups(self, small_dataset):
        groups = small_dataset.per_category_indices()
        assert sum(len(indices) for indices in groups.values()) == \
            len(small_dataset.splits.test)

    def test_labeled_block_category(self, small_dataset):
        example = small_dataset[0]
        assert isinstance(example, LabeledBlock)
        assert isinstance(example.category, BlockCategory)

    def test_serialization_roundtrip(self, small_dataset, tmp_path):
        path = os.path.join(tmp_path, "dataset.json")
        small_dataset.save_json(path)
        restored = BasicBlockDataset.load_json(path)
        assert len(restored) == len(small_dataset)
        assert restored.splits.train == small_dataset.splits.train
        np.testing.assert_allclose(restored.timings(), small_dataset.timings())
        assert restored[0].block.opcode_names() == small_dataset[0].block.opcode_names()

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            BasicBlockDataset(examples=[], uarch_name="Haswell")

    def test_explicit_splits_respected(self, small_dataset):
        examples = small_dataset.examples[:10]
        splits = DatasetSplits(train=list(range(8)), validation=[8], test=[9])
        dataset = BasicBlockDataset(examples, "Haswell", splits=splits)
        assert dataset.splits.test == [9]
        assert len(dataset.train_examples) == 8

    def test_different_uarch_datasets_have_different_timings(self):
        haswell = build_dataset("haswell", num_blocks=60, seed=4)
        zen2 = build_dataset("zen2", num_blocks=60, seed=4)
        assert haswell.uarch_name != zen2.uarch_name
        # Same generator seed gives the same blocks, but measured timings differ.
        assert not np.allclose(haswell.timings()[:40], zen2.timings()[:40])
