"""Tests for the baselines: OpenTuner-style tuner, random search, Ithemal, IACA."""

import numpy as np
import pytest

from repro.baselines import (BanditEnsemble, IACAModel, IthemalBaseline, IthemalConfig,
                             OpenTunerBaseline, OpenTunerConfig, random_search)
from repro.baselines.opentuner import (_DifferentialEvolution, _GaussianMutation, _HillClimb,
                                       _RandomSearch, _SimulatedAnnealing)
from repro.core.adapters import MCAAdapter
from repro.core.losses import mape_loss_value
from repro.core.surrogate import SurrogateConfig
from repro.isa.parser import parse_block
from repro.targets import HASWELL, ZEN2


@pytest.fixture(scope="module")
def tuning_data(small_dataset):
    examples = small_dataset.train_examples[:50]
    blocks = [example.block for example in examples]
    timings = np.array([example.timing for example in examples])
    return blocks, timings


class TestBandit:
    def test_every_arm_pulled_first(self):
        bandit = BanditEnsemble([_RandomSearch(), _HillClimb(), _GaussianMutation()])
        picks = set()
        for _ in range(3):
            index = bandit.select()
            picks.add(index)
            bandit.update(index, 0.0)
        assert picks == {0, 1, 2}

    def test_rewarded_arm_preferred(self):
        bandit = BanditEnsemble([_RandomSearch(), _HillClimb()], exploration=0.1)
        for _ in range(2):
            bandit.select()
        for _ in range(20):
            bandit.update(0, 1.0)
            bandit.update(1, 0.0)
        assert bandit.select() == 0

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError):
            BanditEnsemble([])


class TestSearchTechniques:
    @pytest.mark.parametrize("technique", [_RandomSearch(), _HillClimb(), _GaussianMutation(),
                                           _DifferentialEvolution(), _SimulatedAnnealing()])
    def test_proposals_stay_in_bounds(self, technique, rng):
        low = np.zeros(50)
        high = np.full(50, 5.0)
        best = rng.uniform(low, high)
        for _ in range(10):
            proposal = technique.propose(best, low, high, rng)
            assert proposal.shape == best.shape
            assert np.all(proposal >= low - 1e-9)
            assert np.all(proposal <= high + 1e-9)

    def test_annealing_temperature_decays(self, rng):
        technique = _SimulatedAnnealing()
        initial = technique.temperature
        technique.propose(np.zeros(4), np.zeros(4), np.ones(4), rng)
        assert technique.temperature < initial


class TestOpenTunerBaseline:
    def test_tuning_stays_in_random_table_regime_or_better(self, tuning_data):
        """The black-box tuner cannot be catastrophically worse than the random
        tables it searches over (the paper reports it plateaus above 100%)."""
        blocks, timings = tuning_data
        adapter = MCAAdapter(HASWELL, narrow_sampling=True)
        tuner = OpenTunerBaseline(adapter, OpenTunerConfig(
            evaluation_budget=3000, blocks_per_evaluation=30, seed=0))
        arrays = tuner.tune(blocks, timings)
        tuned_error = mape_loss_value(adapter.predict_timings(arrays, blocks), timings)
        rng = np.random.default_rng(0)
        random_errors = [mape_loss_value(
            adapter.predict_timings(adapter.parameter_spec().sample(rng), blocks), timings)
            for _ in range(4)]
        assert np.isfinite(tuned_error)
        assert tuned_error <= max(random_errors) * 1.5

    def test_tuned_table_is_valid(self, tuning_data):
        blocks, timings = tuning_data
        adapter = MCAAdapter(HASWELL)
        tuner = OpenTunerBaseline(adapter, OpenTunerConfig(
            evaluation_budget=600, blocks_per_evaluation=20, seed=1))
        arrays = tuner.tune(blocks, timings)
        adapter.table_from_arrays(arrays).validate()

    def test_budget_limits_evaluations(self, tuning_data):
        blocks, timings = tuning_data
        adapter = MCAAdapter(HASWELL)
        messages = []
        tuner = OpenTunerBaseline(adapter, OpenTunerConfig(
            evaluation_budget=200, blocks_per_evaluation=50, seed=2), log=messages.append)
        tuner.tune(blocks, timings)
        assert any("finished after" in message for message in messages)


class TestRandomSearch:
    def test_returns_best_of_samples(self, tuning_data):
        blocks, timings = tuning_data
        adapter = MCAAdapter(HASWELL)
        best_arrays, best_error = random_search(adapter, blocks, timings, num_samples=4,
                                                seed=0, blocks_per_evaluation=20)
        assert best_error > 0
        adapter.table_from_arrays(best_arrays).validate()

    def test_more_samples_never_worse(self, tuning_data):
        blocks, timings = tuning_data
        adapter = MCAAdapter(HASWELL)
        _, error_few = random_search(adapter, blocks, timings, num_samples=1, seed=5,
                                     blocks_per_evaluation=20)
        _, error_many = random_search(adapter, blocks, timings, num_samples=5, seed=5,
                                      blocks_per_evaluation=20)
        assert error_many <= error_few + 1e-9

    def test_validation(self, tuning_data):
        blocks, timings = tuning_data
        with pytest.raises(ValueError):
            random_search(MCAAdapter(HASWELL), blocks, timings, num_samples=0)


class TestIthemalBaseline:
    def test_training_and_prediction(self, tuning_data):
        blocks, timings = tuning_data
        baseline = IthemalBaseline(config=IthemalConfig(
            surrogate=SurrogateConfig(kind="pooled", embedding_size=8, hidden_size=16),
            epochs=2, batch_size=8))
        losses = baseline.fit(blocks, timings)
        assert len(losses) == 2
        predictions = baseline.predict_many(blocks[:5])
        assert predictions.shape == (5,)
        assert np.all(predictions > 0)

    def test_learned_model_beats_constant_guess(self, tuning_data):
        blocks, timings = tuning_data
        baseline = IthemalBaseline(config=IthemalConfig(
            surrogate=SurrogateConfig(kind="pooled", embedding_size=12, hidden_size=24),
            epochs=6, batch_size=8))
        baseline.fit(blocks, timings)
        error = baseline.evaluate(blocks, timings)
        constant_error = mape_loss_value(np.full(len(timings), float(np.median(timings))),
                                         timings)
        assert error < constant_error

    def test_alignment_validation(self, tuning_data):
        blocks, timings = tuning_data
        baseline = IthemalBaseline()
        with pytest.raises(ValueError):
            baseline.fit(blocks, timings[:-1])


class TestIACA:
    def test_intel_supported_amd_not(self):
        assert IACAModel(HASWELL).supported
        assert not IACAModel(ZEN2).supported

    def test_unsupported_prediction_raises(self):
        with pytest.raises(ValueError):
            IACAModel(ZEN2).predict_timing(parse_block("addq %rax, %rbx"))

    def test_predictions_positive(self, sample_blocks):
        model = IACAModel(HASWELL)
        predictions = model.predict_many(sample_blocks[:10])
        assert np.all(predictions > 0)

    def test_zero_idiom_special_case(self):
        model = IACAModel(HASWELL)
        zero_idiom = parse_block("xorl %r13d, %r13d")
        chained_add = parse_block("addq %rax, %rbx\naddq %rbx, %rax")
        assert model.predict_timing(zero_idiom) < model.predict_timing(chained_add)

    def test_memory_chain_not_modeled(self):
        """Like llvm-mca, the analytical model misses store-to-load chains."""
        model = IACAModel(HASWELL)
        assert model.predict_timing(parse_block("addl %eax, 16(%rsp)")) < 3.0

    def test_iaca_more_accurate_than_default_mca(self, small_dataset, haswell_default_table):
        """On Haswell, IACA should beat default llvm-mca (as in Table IV)."""
        from repro.llvm_mca import MCASimulator

        examples = small_dataset.test_examples
        blocks = [example.block for example in examples]
        timings = np.array([example.timing for example in examples])
        iaca_error = mape_loss_value(IACAModel(HASWELL).predict_many(blocks), timings)
        mca_error = mape_loss_value(MCASimulator(haswell_default_table).predict_many(blocks),
                                    timings)
        assert iaca_error < mca_error
