"""Tests for the markdown report generator over recorded benchmark results."""

import json
import os

import pytest

from repro.eval.reports import (ExperimentResult, KNOWN_EXPERIMENTS, load_results,
                                render_report, write_report)


@pytest.fixture
def results_directory(tmp_path):
    directory = os.path.join(tmp_path, "results")
    os.makedirs(directory)
    with open(os.path.join(directory, "table04_haswell.json"), "w") as handle:
        json.dump({"Default": [0.269, 0.771], "DiffTune": [0.42, 0.61]}, handle)
    with open(os.path.join(directory, "sec5a_random_tables.json"), "w") as handle:
        json.dump({"mean": 4.9, "std": 4.97, "errors": [1.5, 9.2]}, handle)
    with open(os.path.join(directory, "adhoc_experiment.json"), "w") as handle:
        json.dump([{"name": "run1", "error": 0.3}], handle)
    return directory


class TestLoadResults:
    def test_missing_directory_returns_empty(self, tmp_path):
        assert load_results(os.path.join(tmp_path, "nope")) == []

    def test_loads_every_json_sorted(self, results_directory):
        results = load_results(results_directory)
        assert [result.name for result in results] == [
            "adhoc_experiment", "sec5a_random_tables", "table04_haswell"]

    def test_known_results_get_paper_titles(self, results_directory):
        results = {result.name: result for result in load_results(results_directory)}
        assert results["table04_haswell"].title == KNOWN_EXPERIMENTS["table04_haswell"]
        assert results["table04_haswell"].is_known
        assert results["adhoc_experiment"].title == "adhoc_experiment"
        assert not results["adhoc_experiment"].is_known

    def test_non_json_files_are_ignored(self, results_directory):
        with open(os.path.join(results_directory, "notes.txt"), "w") as handle:
            handle.write("not a result")
        names = [result.name for result in load_results(results_directory)]
        assert "notes" not in names

    def test_corrupt_json_is_reported_not_fatal(self, results_directory):
        with open(os.path.join(results_directory, "broken.json"), "w") as handle:
            handle.write("{not json")
        results = {result.name: result for result in load_results(results_directory)}
        assert "error" in results["broken"].payload


class TestRenderReport:
    def test_empty_results_mention_how_to_generate(self):
        report = render_report([])
        assert "pytest benchmarks/" in report

    def test_sections_and_values_appear(self, results_directory):
        report = render_report(load_results(results_directory))
        assert "## Table IV — main results (Haswell)" in report
        assert "table04_haswell.json" in report
        assert "**Default**" in report
        assert "0.269" in report

    def test_nested_payloads_render_as_nested_bullets(self):
        result = ExperimentResult(name="x", title="X", payload={
            "group": {"inner": [1, 2, 3]}, "scalar": 7})
        report = render_report([result])
        assert "- **group**:" in report
        assert "  - **inner**: 1, 2, 3" in report
        assert "- **scalar**: 7" in report

    def test_list_of_objects_renders_each_entry(self, results_directory):
        report = render_report(load_results(results_directory))
        assert "**name**: run1" in report


class TestWriteReport:
    def test_writes_file_and_returns_content(self, results_directory, tmp_path):
        output = os.path.join(tmp_path, "out", "REPORT.md")
        content = write_report(results_directory, output)
        assert os.path.exists(output)
        with open(output) as handle:
            assert handle.read() == content

    def test_report_over_repository_results_renders(self):
        """The real benchmarks/results directory (if present) renders cleanly."""
        repository_results = os.path.join(os.path.dirname(__file__), "..",
                                          "benchmarks", "results")
        report = render_report(load_results(repository_results))
        assert report.startswith("# Measured benchmark results")
