"""Tests for the ISA substrate: registers, opcodes, operands, instructions,
basic blocks, the parser, and canonicalization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import (BasicBlock, ImmediateOperand, Instruction, MemoryOperand, ParseError,
                       RegisterOperand, TokenVocabulary, canonical_register, canonicalize_block,
                       format_instruction, parse_block, parse_instruction, register_by_name)
from repro.isa.canonicalize import canonicalize_instruction
from repro.isa.opcodes import DEFAULT_OPCODE_TABLE, OpcodeTable, UopClass, build_default_opcode_table
from repro.isa.registers import GPR32, GPR64, XMM, registers_for_width


class TestRegisters:
    def test_lookup_with_and_without_sigil(self):
        assert register_by_name("rax").name == "rax"
        assert register_by_name("%rax").name == "rax"

    def test_unknown_register(self):
        with pytest.raises(KeyError):
            register_by_name("zzz")

    def test_canonical_aliasing(self):
        assert canonical_register("eax") == "rax"
        assert canonical_register("ax") == "rax"
        assert canonical_register("r13d") == "r13"

    def test_vector_registers_alias_ymm(self):
        assert canonical_register("xmm3") == "ymm3"
        assert register_by_name("xmm3").is_vector

    def test_register_widths(self):
        assert register_by_name("rax").width == 64
        assert register_by_name("eax").width == 32
        assert register_by_name("al").width == 8
        assert register_by_name("ymm0").width == 256

    def test_registers_for_width(self):
        assert "rax" in registers_for_width(64)
        assert "eax" in registers_for_width(32)
        assert "xmm0" in registers_for_width(128, vector=True)
        with pytest.raises(ValueError):
            registers_for_width(12)

    def test_register_pools_are_consistent(self):
        assert len(GPR64) == len(GPR32) == 16
        assert len(XMM) == 16


class TestOpcodeTable:
    def test_default_table_size(self, opcode_table):
        # Mirrors the scale of BHive's 837-opcode vocabulary.
        assert 500 <= len(opcode_table) <= 900

    def test_lookup_by_name_and_index(self, opcode_table):
        index = opcode_table.index_of("ADD32rr")
        assert opcode_table[index].name == "ADD32rr"
        assert opcode_table["ADD32rr"].mnemonic == "add"

    def test_contains_expected_opcodes(self, opcode_table):
        for name in ["PUSH64r", "POP64r", "XOR32rr", "ADD32mr", "SHR64mi", "MOV64rm",
                     "IMUL64rr", "MULPSrr", "VZEROUPPER", "LEA64r", "CMOVE32rr"]:
            assert name in opcode_table, name

    def test_unknown_opcode_raises(self, opcode_table):
        with pytest.raises(KeyError):
            opcode_table.index_of("NOT_AN_OPCODE")

    def test_duplicate_opcode_rejected(self, opcode_table):
        table = OpcodeTable([opcode_table["ADD32rr"]])
        with pytest.raises(ValueError):
            table.add(opcode_table["ADD32rr"])

    def test_memory_flags(self, opcode_table):
        assert opcode_table["MOV64rm"].reads_memory
        assert not opcode_table["MOV64rm"].writes_memory
        assert opcode_table["MOV64mr"].writes_memory
        assert opcode_table["ADD32mr"].reads_memory
        assert opcode_table["ADD32mr"].writes_memory

    def test_zero_idiom_flags(self, opcode_table):
        assert opcode_table["XOR32rr"].can_zero_idiom
        assert opcode_table["SUB64rr"].can_zero_idiom
        assert not opcode_table["ADD32rr"].can_zero_idiom

    def test_by_class(self, opcode_table):
        loads = opcode_table.by_class(UopClass.LOAD)
        assert loads and all(op.uop_class == UopClass.LOAD for op in loads)

    def test_table_construction_is_deterministic(self):
        first = build_default_opcode_table()
        second = build_default_opcode_table()
        assert first.names() == second.names()

    def test_implicit_defs_for_stack_ops(self, opcode_table):
        assert "rsp" in opcode_table["PUSH64r"].implicit_defs
        assert "rsp" in opcode_table["POP64r"].implicit_uses


class TestOperands:
    def test_register_operand_canonical(self):
        operand = RegisterOperand("eax")
        assert operand.canonical == "rax"
        assert operand.to_assembly() == "%eax"

    def test_register_operand_invalid(self):
        with pytest.raises(KeyError):
            RegisterOperand("bogus")

    def test_immediate_operand(self):
        assert ImmediateOperand(5).to_assembly() == "$5"

    def test_memory_operand_address_registers(self):
        operand = MemoryOperand(displacement=8, base="rax", index="rbx", scale=4)
        assert operand.address_registers() == ("rax", "rbx")
        assert operand.to_assembly() == "8(%rax,%rbx,4)"

    def test_memory_operand_invalid_scale(self):
        with pytest.raises(ValueError):
            MemoryOperand(base="rax", scale=3)

    def test_memory_location_key_canonicalizes(self):
        a = MemoryOperand(displacement=16, base="rsp")
        b = MemoryOperand(displacement=16, base="esp")
        assert a.location_key() == b.location_key()


class TestInstructionSemantics:
    def test_rmw_reads_and_writes(self, opcode_table):
        instruction = parse_instruction("addl %eax, %ebx")
        assert "rax" in instruction.source_registers()
        assert "rbx" in instruction.source_registers()
        assert "rbx" in instruction.destination_registers()

    def test_mov_does_not_read_destination(self):
        instruction = parse_instruction("movq %rax, %rbx")
        assert "rbx" not in instruction.source_registers()
        assert "rbx" in instruction.destination_registers()

    def test_cmp_does_not_write_register(self):
        instruction = parse_instruction("cmpq %rax, %rbx")
        assert instruction.destination_registers() == ("rflags",)

    def test_load_address_registers_are_sources(self):
        instruction = parse_instruction("movq 8(%rax,%rbx,4), %rcx")
        assert set(instruction.source_registers()) == {"rax", "rbx"}
        assert instruction.is_load and not instruction.is_store

    def test_store_writes_memory_not_registers(self):
        instruction = parse_instruction("movq %rax, 16(%rsp)")
        assert instruction.is_store
        assert instruction.destination_registers() == ()

    def test_push_uses_and_defines_rsp(self):
        instruction = parse_instruction("pushq %rbx")
        assert "rsp" in instruction.source_registers()
        assert "rsp" in instruction.destination_registers()
        assert instruction.memory_location() is not None

    def test_zero_idiom_detection(self):
        assert parse_instruction("xorl %r13d, %r13d").is_zero_idiom()
        assert not parse_instruction("xorl %eax, %ebx").is_zero_idiom()
        assert not parse_instruction("addl %eax, %eax").is_zero_idiom()

    def test_cmov_reads_flags_and_destination(self):
        instruction = parse_instruction("cmove %rax, %rbx")
        assert "rflags" in instruction.source_registers()
        assert "rbx" in instruction.source_registers()

    def test_implicit_div_registers(self):
        instruction = parse_instruction("divq %rcx")
        assert "rax" in instruction.source_registers()
        assert "rdx" in instruction.destination_registers()

    def test_memory_location_identity(self):
        first = parse_instruction("movq %rax, 16(%rsp)")
        second = parse_instruction("movq 16(%rsp), %rbx")
        assert first.memory_location() == second.memory_location()


class TestBasicBlock:
    def test_empty_block_rejected(self):
        with pytest.raises(ValueError):
            BasicBlock(instructions=())

    def test_sequence_protocol(self, simple_block):
        assert len(simple_block) == 3
        assert simple_block[0].opcode.name == "ADD64rr"
        assert [i.opcode.name for i in simple_block] == simple_block.opcode_names()

    def test_counts(self, simple_block):
        assert simple_block.num_stores() == 1
        assert simple_block.num_loads() == 0
        assert simple_block.num_scalar_arithmetic() == 2

    def test_register_dependencies(self):
        block = parse_block("addq %rax, %rbx\naddq %rbx, %rcx\naddq %rcx, %rdx")
        dependencies = block.register_dependencies()
        assert (0, 1, "rbx") in dependencies
        assert (1, 2, "rcx") in dependencies

    def test_loop_carried_registers(self):
        block = parse_block("addq %rax, %rbx\naddq %rbx, %rax")
        carried = block.loop_carried_registers()
        assert "rax" in carried and "rbx" in carried

    def test_structural_key_distinguishes_blocks(self):
        a = parse_block("addq %rax, %rbx")
        b = parse_block("addq %rax, %rcx")
        assert a.structural_key() != b.structural_key()

    def test_roundtrip_through_assembly(self, sample_blocks):
        for block in sample_blocks[:15]:
            reparsed = parse_block(block.to_assembly())
            assert reparsed.opcode_names() == block.opcode_names()


class TestParser:
    @pytest.mark.parametrize("text,opcode", [
        ("pushq %rbx", "PUSH64r"),
        ("popq %rdi", "POP64r"),
        ("xorl %r13d, %r13d", "XOR32rr"),
        ("addl %eax, 16(%rsp)", "ADD32mr"),
        ("addl $7, %eax", "ADD32ri"),
        ("shrq $5, 16(%rsp)", "SHR64mi"),
        ("movq 8(%rax,%rbx,4), %rcx", "MOV64rm"),
        ("movl $374, %esi", "MOV32ri"),
        ("imulq %rcx, %rdx", "IMUL64rr"),
        ("leaq 8(%rsp), %rax", "LEA64r"),
        ("mulps %xmm1, %xmm2", "MULPSrr"),
        ("movaps %xmm0, 32(%rsp)", "MOVAPSmr"),
        ("cmove %rax, %rbx", "CMOVE64rr"),
        ("sete %al", "SETEr"),
        ("vzeroupper", "VZEROUPPER"),
        ("divq %rcx", "DIV64r"),
        ("testl %r8d, %r8d", "TEST32rr"),
    ])
    def test_parses_to_expected_opcode(self, text, opcode):
        assert parse_instruction(text).opcode.name == opcode

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_instruction("")
        with pytest.raises(ParseError):
            parse_instruction("frobnicate %rax")
        with pytest.raises(ParseError):
            parse_instruction("addq %zzz, %rax")

    def test_parse_block_skips_comments_and_blank_lines(self):
        block = parse_block("""
        # a comment
        addq %rax, %rbx

        movq %rbx, %rcx  # trailing comment
        """)
        assert len(block) == 2

    def test_parse_block_semicolon_separated(self):
        block = parse_block("addq %rax, %rbx; movq %rbx, %rcx")
        assert len(block) == 2

    def test_parse_block_empty_raises(self):
        with pytest.raises(ParseError):
            parse_block("   \n  # only a comment\n")

    def test_parse_block_source_applications(self):
        block = parse_block("addq %rax, %rbx", source_applications=("Redis",))
        assert block.source_applications == ("Redis",)

    def test_format_roundtrip(self):
        for text in ["pushq %rbx", "addl %eax, 16(%rsp)", "xorl %r13d, %r13d",
                     "movq 8(%rax,%rbx,4), %rcx", "imulq %rcx, %rdx"]:
            instruction = parse_instruction(text)
            reparsed = parse_instruction(format_instruction(instruction))
            assert reparsed.opcode.name == instruction.opcode.name


class TestCanonicalization:
    def test_vocabulary_is_stable(self, opcode_table):
        first = TokenVocabulary(opcode_table)
        second = TokenVocabulary(opcode_table)
        assert len(first) == len(second)
        assert first.token_id("OP:ADD32rr") == second.token_id("OP:ADD32rr")

    def test_vocabulary_covers_opcodes_and_registers(self, opcode_table):
        vocabulary = TokenVocabulary(opcode_table)
        assert vocabulary.opcode_token_id("ADD32rr") != vocabulary.token_id("<UNK>")
        assert vocabulary.register_token_id("rax") != vocabulary.token_id("<UNK>")

    def test_unknown_token_maps_to_unk(self, opcode_table):
        vocabulary = TokenVocabulary(opcode_table)
        assert vocabulary.token_id("OP:NOT_REAL") == vocabulary.token_id("<UNK>")

    def test_instruction_token_structure(self, opcode_table):
        vocabulary = TokenVocabulary(opcode_table)
        instruction = parse_instruction("addq %rax, %rbx")
        canonical = canonicalize_instruction(instruction, vocabulary)
        tokens = [vocabulary.token(t) for t in canonical.token_ids]
        assert tokens[0] == "OP:ADD64rr"
        assert "<S>" in tokens and "<D>" in tokens and tokens[-1] == "<E>"
        assert canonical.opcode_index == opcode_table.index_of("ADD64rr")

    def test_memory_operand_tokens(self, opcode_table):
        vocabulary = TokenVocabulary(opcode_table)
        instruction = parse_instruction("movq 8(%rax,%rbx,4), %rcx")
        canonical = canonicalize_instruction(instruction, vocabulary)
        tokens = [vocabulary.token(t) for t in canonical.token_ids]
        assert "MEM" in tokens
        assert "REG:rax" in tokens and "REG:rbx" in tokens

    def test_block_canonicalization_length(self, opcode_table, simple_block):
        vocabulary = TokenVocabulary(opcode_table)
        canonical = canonicalize_block(simple_block, vocabulary)
        assert len(canonical) == len(simple_block)

    def test_immediate_maps_to_const(self, opcode_table):
        vocabulary = TokenVocabulary(opcode_table)
        canonical = canonicalize_instruction(parse_instruction("addl $7, %eax"), vocabulary)
        tokens = [vocabulary.token(t) for t in canonical.token_ids]
        assert "CONST" in tokens


class TestGeneratedBlocksProperty:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_generated_blocks_parse_and_have_valid_opcodes(self, seed):
        from repro.bhive import BlockGenerator

        generator = BlockGenerator(seed=seed)
        block = generator.generate_block()
        assert len(block) >= 1
        reparsed = parse_block(block.to_assembly())
        assert reparsed.opcode_names() == block.opcode_names()
        for instruction in block:
            assert instruction.opcode.name in DEFAULT_OPCODE_TABLE
