"""Tests for the BHive-style dataset filters and simulated performance counters."""

import numpy as np
import pytest

from repro.bhive.dataset import LabeledBlock, build_dataset
from repro.bhive.filters import (ALIASING_WINDOW_BYTES, FilterReport, PAGE_SIZE_BYTES,
                                 apply_bhive_filters, filter_block_length,
                                 filter_page_aliasing_risk, filter_timing_outliers,
                                 filter_unstable_measurements, has_page_aliasing_risk,
                                 measurement_instability)
from repro.bhive.perf_counters import (CounterSpec, PerformanceCounterUnit,
                                       measure_instruction_latency)
from repro.isa.opcodes import DEFAULT_OPCODE_TABLE
from repro.isa.parser import parse_block, parse_instruction
from repro.targets import HASWELL, ZEN2
from repro.targets.hardware import HardwareModel


def _labeled(text, timing):
    return LabeledBlock(block=parse_block(text, DEFAULT_OPCODE_TABLE), timing=timing)


# ----------------------------------------------------------------------
# Page-aliasing screen
# ----------------------------------------------------------------------
class TestPageAliasing:
    def test_distinct_far_apart_offsets_are_safe(self):
        block = parse_block("movq 16(%rsp), %rax\nmovq 2048(%rsp), %rbx",
                            DEFAULT_OPCODE_TABLE)
        assert not has_page_aliasing_risk(block)

    def test_same_location_is_a_dependency_not_aliasing(self):
        block = parse_block("movq %rax, 16(%rsp)\nmovq 16(%rsp), %rbx",
                            DEFAULT_OPCODE_TABLE)
        assert not has_page_aliasing_risk(block)

    def test_nearby_offsets_with_different_bases_are_risky(self):
        block = parse_block("movq 16(%rsp), %rax\nmovq 24(%rdi), %rbx",
                            DEFAULT_OPCODE_TABLE)
        assert has_page_aliasing_risk(block)

    def test_page_apart_same_offset_different_base_is_risky(self):
        # Same page offset, different pages/bases: the classic 4K-aliasing case.
        block = parse_block(
            f"movq 64(%rsi), %rax\nmovq {64 + PAGE_SIZE_BYTES}(%rdi), %rbx",
            DEFAULT_OPCODE_TABLE)
        assert has_page_aliasing_risk(block)

    def test_blocks_without_memory_are_safe(self):
        block = parse_block("addq %rax, %rbx\nimulq %rbx, %rcx", DEFAULT_OPCODE_TABLE)
        assert not has_page_aliasing_risk(block)

    def test_filter_splits_examples(self):
        safe = _labeled("addq %rax, %rbx", 1.0)
        risky = _labeled("movq 16(%rsp), %rax\nmovq 24(%rdi), %rbx", 2.0)
        kept, removed = filter_page_aliasing_risk([safe, risky])
        assert kept == [safe]
        assert removed == [risky]


# ----------------------------------------------------------------------
# Stability / outlier / length screens
# ----------------------------------------------------------------------
class TestStabilityAndOutlierFilters:
    def test_measurement_instability_statistic(self):
        assert measurement_instability([1.0]) == 0.0
        assert measurement_instability([1.0, 1.0, 1.0]) == 0.0
        assert measurement_instability([1.0, 2.0]) > 0.3
        # A zero-mean measurement is pathological and reported as unstable.
        assert measurement_instability([0.0, 0.0]) == float("inf")

    def test_unstable_measurements_filtered(self):
        stable = _labeled("addq %rax, %rbx", 1.0)
        unstable = _labeled("imulq %rbx, %rcx", 3.0)
        kept, removed = filter_unstable_measurements(
            [stable, unstable], {0: [1.0, 1.01, 0.99], 1: [3.0, 6.0, 1.5]},
            max_coefficient_of_variation=0.10)
        assert kept == [stable]
        assert removed == [unstable]

    def test_unmeasured_examples_are_kept(self):
        example = _labeled("addq %rax, %rbx", 1.0)
        kept, removed = filter_unstable_measurements([example], {})
        assert kept == [example] and removed == []

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            filter_unstable_measurements([], {}, max_coefficient_of_variation=0.0)

    def test_timing_outliers_filtered(self):
        normal = _labeled("addq %rax, %rbx", 0.5)
        too_slow = _labeled("addq %rax, %rbx", 80.0)
        too_fast = _labeled("addq %rax, %rbx", 0.001)
        kept, removed = filter_timing_outliers([normal, too_slow, too_fast])
        assert kept == [normal]
        assert set(removed) == {too_slow, too_fast}
        with pytest.raises(ValueError):
            filter_timing_outliers([], max_cycles_per_instruction=0.0)

    def test_block_length_filter(self):
        short = _labeled("addq %rax, %rbx", 1.0)
        longer = _labeled("\n".join(["addq %rax, %rbx"] * 5), 5.0)
        kept, removed = filter_block_length([short, longer], min_length=1, max_length=3)
        assert kept == [short] and removed == [longer]
        with pytest.raises(ValueError):
            filter_block_length([], min_length=2, max_length=1)


class TestApplyBhiveFilters:
    def test_pipeline_reports_per_filter_removals(self):
        examples = [
            _labeled("addq %rax, %rbx", 0.5),
            _labeled("movq 16(%rsp), %rax\nmovq 24(%rdi), %rbx", 1.0),
            _labeled("addq %rax, %rbx", 99.0),
        ]
        report = apply_bhive_filters(examples, repeated_timings={0: [0.5, 0.5, 0.5]})
        assert isinstance(report, FilterReport)
        assert len(report.kept) == 1
        summary = report.removal_summary()
        assert summary["page_aliasing"] == 1
        assert summary["timing_outlier"] == 1
        assert report.num_removed == 2

    def test_generated_dataset_mostly_survives(self):
        dataset = build_dataset("haswell", num_blocks=80, seed=5)
        report = apply_bhive_filters(list(dataset))
        assert len(report.kept) > 0.5 * len(dataset)


# ----------------------------------------------------------------------
# Performance counters
# ----------------------------------------------------------------------
class TestPerformanceCounters:
    @pytest.fixture(scope="class")
    def haswell_hardware(self):
        return HardwareModel(HASWELL, seed=0)

    @pytest.fixture(scope="class")
    def block(self):
        return parse_block("movq 16(%rsp), %rax\naddq %rax, %rbx\nimulq %rbx, %rcx",
                           DEFAULT_OPCODE_TABLE)

    def test_counter_spec_per_vendor(self):
        intel = CounterSpec.for_uarch(HASWELL)
        amd = CounterSpec.for_uarch(ZEN2)
        assert intel.has_port_counters
        assert not amd.has_port_counters
        assert amd.multiplexed

    def test_reading_contains_requested_events(self, haswell_hardware, block):
        unit = PerformanceCounterUnit(haswell_hardware, noise=0.0, seed=1)
        reading = unit.read(block)
        assert reading.cycles > 0.0
        assert reading.instructions_retired == pytest.approx(len(block))
        assert reading.uops_retired >= len(block) - 0.5
        assert len(reading.port_dispatch) == 10
        assert reading.ipc() > 0.0

    def test_amd_reading_has_no_port_counts(self, block):
        hardware = HardwareModel(ZEN2, seed=0)
        unit = PerformanceCounterUnit(hardware, seed=2)
        reading = unit.read(block)
        assert reading.port_dispatch is None
        assert reading.uops_retired is not None

    def test_noise_perturbs_counts(self, haswell_hardware, block):
        noiseless = PerformanceCounterUnit(haswell_hardware, noise=0.0, seed=3).read(block)
        noisy = PerformanceCounterUnit(haswell_hardware, noise=0.05, seed=3).read(block)
        assert noiseless.instructions_retired == pytest.approx(len(block))
        assert noisy.instructions_retired != pytest.approx(len(block), abs=1e-9)

    def test_negative_noise_rejected(self, haswell_hardware):
        with pytest.raises(ValueError):
            PerformanceCounterUnit(haswell_hardware, noise=-0.1)

    def test_read_many_matches_single_reads_in_count(self, haswell_hardware, block):
        unit = PerformanceCounterUnit(haswell_hardware, seed=4)
        readings = unit.read_many([block, block, block])
        assert len(readings) == 3

    def test_latency_microbenchmark_orders_min_median_max(self, haswell_hardware):
        instruction = parse_instruction("imulq %rax, %rbx", DEFAULT_OPCODE_TABLE)
        measured = measure_instruction_latency(haswell_hardware, instruction,
                                               chain_length=8, runs=5, seed=0)
        assert measured["min"] <= measured["median"] <= measured["max"]
        # A dependent multiply chain should measure a multi-cycle latency.
        assert measured["median"] > 1.5

    def test_latency_microbenchmark_validates_arguments(self, haswell_hardware):
        instruction = parse_instruction("addq %rax, %rbx", DEFAULT_OPCODE_TABLE)
        with pytest.raises(ValueError):
            measure_instruction_latency(haswell_hardware, instruction, chain_length=0)
        with pytest.raises(ValueError):
            measure_instruction_latency(haswell_hardware, instruction, runs=0)
