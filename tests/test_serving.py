"""Serving-layer tests: coalescer, sharded cache, stats, and the server.

The coalescer's contract is the one that matters most: responses are
matched back to their requests and are deterministic regardless of how
concurrent submissions happened to be batched.  The server tests run the
real asyncio HTTP server on an ephemeral port and hit it from real client
threads.
"""

import asyncio
import json
import threading

import pytest

from repro.api import PredictSpec, ServeSpec, Session
from repro.serving import (InferenceServer, RequestCoalescer, ServerStats,
                           ServingClient, ShardedResultCache, run_load)

BLOCK_TEXTS = [
    "addq %rax, %rbx",
    "addq %rax, %rbx; imulq %rbx, %rcx",
    "movq 16(%rsp), %rax; addq %rax, %rbx",
    "xorq %rax, %rax; subq %rcx, %rdx",
    "imulq %rcx, %rdx; imulq %rdx, %rcx",
    "movq %rax, 8(%rsp); movq 8(%rsp), %rbx",
]


# ----------------------------------------------------------------------
# RequestCoalescer
# ----------------------------------------------------------------------
class TestRequestCoalescer:
    def test_responses_match_requests_under_concurrency(self):
        batches = []

        def run_batch(items):
            batches.append(len(items))
            return [item * 10.0 for item in items]

        async def scenario():
            coalescer = RequestCoalescer(run_batch, max_batch_size=64,
                                         max_wait=0.01)
            results = await asyncio.gather(*[
                coalescer.submit([float(i), float(i) + 0.5])
                for i in range(20)])
            await coalescer.drain()
            return results

        results = asyncio.run(scenario())
        for i, result in enumerate(results):
            assert result == [i * 10.0, (i + 0.5) * 10.0]
        # The whole burst coalesced into far fewer executions than requests.
        assert sum(batches) == 40
        assert len(batches) < 20

    def test_results_independent_of_batching(self):
        def run_batch(items):
            return [item + 1.0 for item in items]

        async def run_with(max_batch_size, max_wait):
            coalescer = RequestCoalescer(run_batch, max_batch_size,
                                         max_wait=max_wait)
            results = await asyncio.gather(*[
                coalescer.submit([float(i)]) for i in range(12)])
            await coalescer.drain()
            return results

        unbatched = asyncio.run(run_with(1, 0.0))
        batched = asyncio.run(run_with(64, 0.05))
        assert unbatched == batched

    def test_max_batch_size_respected(self):
        batches = []

        def run_batch(items):
            batches.append(len(items))
            return [0.0] * len(items)

        async def scenario():
            coalescer = RequestCoalescer(run_batch, max_batch_size=4,
                                         max_wait=0.05)
            await asyncio.gather(*[coalescer.submit([0.0, 0.0])
                                   for _ in range(10)])
            await coalescer.drain()

        asyncio.run(scenario())
        assert all(size <= 4 for size in batches)

    def test_oversized_request_still_executes(self):
        async def scenario():
            coalescer = RequestCoalescer(lambda items: [0.0] * len(items),
                                         max_batch_size=2, max_wait=0.0)
            return await coalescer.submit([1.0] * 7)

        assert asyncio.run(scenario()) == [0.0] * 7

    def test_exception_propagates_to_submitters(self):
        def run_batch(items):
            raise RuntimeError("engine exploded")

        async def scenario():
            coalescer = RequestCoalescer(run_batch, max_wait=0.0)
            with pytest.raises(RuntimeError, match="engine exploded"):
                await coalescer.submit([1.0])
            await coalescer.drain()

        asyncio.run(scenario())

    def test_submit_after_drain_rejected(self):
        async def scenario():
            coalescer = RequestCoalescer(lambda items: [0.0] * len(items))
            await coalescer.drain()
            with pytest.raises(RuntimeError, match="draining"):
                await coalescer.submit([1.0])

        asyncio.run(scenario())

    def test_empty_submit_returns_empty(self):
        async def scenario():
            coalescer = RequestCoalescer(lambda items: [0.0] * len(items))
            result = await coalescer.submit([])
            await coalescer.drain()
            return result

        assert asyncio.run(scenario()) == []

    def test_wrong_result_length_raises(self):
        async def scenario():
            coalescer = RequestCoalescer(lambda items: [0.0], max_wait=0.0)
            with pytest.raises(RuntimeError, match="results"):
                await coalescer.submit([1.0, 2.0])
            await coalescer.drain()

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# ShardedResultCache and ServerStats
# ----------------------------------------------------------------------
class TestShardedResultCache:
    def test_shards_do_not_mix_tables(self):
        cache = ShardedResultCache(shard_capacity=8)
        cache.put("digest-a", "block", 1.0)
        cache.put("digest-b", "block", 2.0)
        assert cache.get("digest-a", "block") == 1.0
        assert cache.get("digest-b", "block") == 2.0

    def test_lru_within_shard(self):
        cache = ShardedResultCache(shard_capacity=2)
        cache.put("d", "a", 1.0)
        cache.put("d", "b", 2.0)
        cache.put("d", "c", 3.0)  # evicts "a"
        assert cache.get("d", "a") is None
        assert cache.get("d", "b") == 2.0

    def test_shard_count_bounded_and_totals_survive(self):
        cache = ShardedResultCache(shard_capacity=4, max_shards=2)
        for digest in ("d1", "d2", "d3"):
            cache.put(digest, "k", 0.0)
            cache.get(digest, "k")
        cache.get("d3", "absent")
        stats = cache.stats()
        assert stats["shards"] == 2
        # Hits recorded on the evicted shards still count in the totals.
        assert stats["hits"] == 3
        assert stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.75)


class TestServerStats:
    def test_snapshot_fields(self):
        stats = ServerStats()
        stats.record_request("/predict", 0.010, num_blocks=4)
        stats.record_request("/predict", 0.030, num_blocks=2)
        stats.record_request("/predict", 0.020, num_blocks=1, error=True)
        stats.record_request("/healthz", 0.001)
        stats.record_batch(6, 2)
        snapshot = stats.snapshot()
        assert snapshot["requests_total"] == 4
        assert snapshot["predict_requests"] == 2  # errors excluded
        assert snapshot["predict_blocks"] == 6
        assert snapshot["errors"] == 1
        assert snapshot["batches"] == 1
        assert snapshot["mean_batch_size"] == 6.0
        assert snapshot["batch_size_histogram"] == {"6": 1}
        assert snapshot["latency_ms"]["count"] == 2
        assert snapshot["latency_ms"]["p50"] == pytest.approx(10.0)
        assert snapshot["latency_ms"]["max"] == pytest.approx(30.0)
        json.dumps(snapshot)


# ----------------------------------------------------------------------
# InferenceServer end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def running_server():
    server = InferenceServer.from_spec(
        ServeSpec(target="haswell", simulator="mca", port=0,
                  max_batch_wait_ms=1.0))
    handle = server.start_in_thread()
    yield server, handle
    if handle.thread.is_alive():
        handle.stop()


class TestInferenceServer:
    def test_concurrent_clients_match_direct_predict(self, running_server):
        server, handle = running_server
        requests = [[text] for text in BLOCK_TEXTS] * 3
        report = run_load(handle.host, handle.port, requests, num_clients=6)
        assert not report.errors
        assert report.requests == len(requests)

        from repro.isa.parser import parse_block

        session = Session.from_spec(PredictSpec(target="haswell"))
        expected = {text: float(session.predict(
            [parse_block(text, session.adapter.opcode_table)])[0])
            for text in BLOCK_TEXTS}
        for index, blocks in enumerate(requests):
            assert report.results[index] == [expected[blocks[0]]]

    def test_healthz(self, running_server):
        _server, handle = running_server
        with ServingClient(handle.host, handle.port) as client:
            health = client.healthz()
        assert health["status"] == "ok"
        assert health["target"] == "haswell"
        assert health["draining"] is False
        assert health["uptime_seconds"] > 0

    def test_stats_endpoint_reports_serving_counters(self, running_server):
        _server, handle = running_server
        with ServingClient(handle.host, handle.port) as client:
            client.predict(BLOCK_TEXTS[:2])
            client.predict(BLOCK_TEXTS[:2])  # second hit comes from cache
            stats = client.stats()
        assert stats["predict_requests"] >= 2
        assert stats["batches"] >= 1
        assert stats["result_cache"]["hits"] >= 2
        assert stats["session"]["predict_calls"] >= 1
        assert stats["latency_ms"]["p99"] >= stats["latency_ms"]["p50"]
        assert stats["coalescer"]["max_batch_size"] == 64

    def test_repeated_query_served_from_cache(self, running_server):
        server, handle = running_server
        with ServingClient(handle.host, handle.port) as client:
            first = client.predict_raw([BLOCK_TEXTS[0]])
            second = client.predict_raw([BLOCK_TEXTS[0]])
        assert second["timings"] == first["timings"]
        assert second["cache_hits"] == 1
        assert first["table_digest"] == server.table_digest

    def test_parse_error_is_400_naming_the_block(self, running_server):
        _server, handle = running_server
        with ServingClient(handle.host, handle.port) as client:
            with pytest.raises(RuntimeError, match=r"400.*blocks\[1\]"):
                client.predict(["addq %rax, %rbx", "not assembly !!"])

    def test_malformed_json_is_400(self, running_server):
        _server, handle = running_server
        import http.client

        connection = http.client.HTTPConnection(handle.host, handle.port,
                                                timeout=10)
        connection.request("POST", "/predict", body="{not json",
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        payload = json.loads(response.read())
        connection.close()
        assert response.status == 400
        assert "JSON" in payload["error"]

    def test_unknown_path_is_404_and_wrong_method_is_405(self, running_server):
        _server, handle = running_server
        import http.client

        connection = http.client.HTTPConnection(handle.host, handle.port,
                                                timeout=10)
        connection.request("GET", "/nope")
        response = connection.getresponse()
        assert response.status == 404
        response.read()
        connection.request("GET", "/predict")
        response = connection.getresponse()
        assert response.status == 405
        response.read()
        connection.close()

    def test_from_spec_with_bundle(self, tmp_path):
        import os

        bundle_path = os.path.join(tmp_path, "hsw.bundle")
        Session.from_spec(
            PredictSpec(target="haswell")).export_bundle(bundle_path)
        server = InferenceServer.from_spec(
            ServeSpec(bundle_path=bundle_path, port=0))
        assert server.session.bundle_manifest is not None
        assert (server.table_digest
                == server.session.bundle_manifest.table_digest)


class TestGracefulShutdown:
    def test_in_flight_requests_finish_and_new_ones_are_refused(self):
        server = InferenceServer.from_spec(
            ServeSpec(target="haswell", simulator="mca", port=0,
                      max_batch_wait_ms=40.0))
        handle = server.start_in_thread()
        results = {}

        def slow_request():
            # max_batch_wait_ms holds this request open long enough for
            # stop() to land while it is in flight.
            with ServingClient(handle.host, handle.port) as client:
                results["timings"] = client.predict([BLOCK_TEXTS[0]])

        thread = threading.Thread(target=slow_request)
        thread.start()
        # Wait until the server has the request registered, then stop.
        deadline = threading.Event()
        for _ in range(200):
            if server.stats.requests_total or server.coalescer.pending_items:
                break
            deadline.wait(0.005)
        handle.stop(timeout=15)
        thread.join(timeout=15)
        assert not thread.is_alive()
        # The in-flight request completed with a real answer...
        session = Session.from_spec(PredictSpec(target="haswell"))
        from repro.isa.parser import parse_block

        expected = float(session.predict(
            [parse_block(BLOCK_TEXTS[0], session.adapter.opcode_table)])[0])
        assert results["timings"] == [expected]
        # ... and the server is gone: new connections fail.
        with pytest.raises(OSError):
            ServingClient(handle.host, handle.port, timeout=2).healthz()

    def test_stop_is_idempotent_and_thread_exits(self):
        server = InferenceServer.from_spec(
            ServeSpec(target="haswell", simulator="mca", port=0))
        handle = server.start_in_thread()
        handle.stop()
        assert not handle.thread.is_alive()
        server.request_stop()  # no-op after shutdown


def test_smoke_module_runs():
    from repro.serving import smoke

    assert smoke.main() == 0
