"""Tests for the generic component registry (repro.api.registry).

Covers the error paths the ISSUE calls out explicitly — duplicate keys,
unknown keys with did-you-mean suggestions, and entry-point plugin loading —
plus alias resolution, idempotent re-registration, and lazy bootstrap.
"""

import pytest

from repro.api.registry import (DuplicateKeyError, Registry, RegistryError,
                                UnknownKeyError)


def make_registry(**kwargs):
    return Registry("widget", **kwargs)


class TestRegistration:
    def test_direct_register_and_get(self):
        registry = make_registry()
        registry.register("alpha", 1)
        assert registry.get("alpha") == 1
        assert "alpha" in registry
        assert len(registry) == 1

    def test_decorator_register_returns_object(self):
        registry = make_registry()

        @registry.register("thing")
        class Thing:
            """A registered thing."""

        assert registry.get("thing") is Thing
        # The summary defaults to the first docstring line.
        assert registry.entry("thing").summary == "A registered thing."

    def test_keys_are_normalized(self):
        registry = make_registry()
        registry.register("Alpha", 1)
        assert registry.get("  ALPHA ") == 1
        assert registry.names() == ["alpha"]

    def test_alias_lookup(self):
        registry = make_registry()
        registry.register("alpha", 1, aliases=("a", "first"))
        assert registry.get("a") == 1
        assert registry.get("first") == 1
        assert registry.resolve("a") == "alpha"
        # Aliases do not show up as canonical names.
        assert registry.names() == ["alpha"]

    def test_duplicate_key_raises(self):
        registry = make_registry()
        registry.register("alpha", 1)
        with pytest.raises(DuplicateKeyError, match="widget 'alpha' is already"):
            registry.register("alpha", 2)

    def test_duplicate_key_same_object_is_idempotent(self):
        registry = make_registry()
        value = object()
        registry.register("alpha", value)
        registry.register("alpha", value)  # re-import: no error
        assert len(registry) == 1

    def test_duplicate_alias_raises(self):
        registry = make_registry()
        registry.register("alpha", 1, aliases=("a",))
        with pytest.raises(DuplicateKeyError, match="alias 'a'"):
            registry.register("beta", 2, aliases=("a",))

    def test_canonical_key_may_not_shadow_existing_alias(self):
        # A plugin registering "hsw" must not silently hijack haswell's alias.
        registry = make_registry()
        registry.register("haswell", 1, aliases=("hsw",))
        with pytest.raises(DuplicateKeyError, match="collides with an alias "
                                                    "of 'haswell'"):
            registry.register("hsw", 2)
        assert registry.resolve("hsw") == "haswell"

    def test_canonical_key_can_take_over_alias_with_replace(self):
        registry = make_registry()
        registry.register("haswell", 1, aliases=("hsw",))
        registry.register("hsw", 2, replace=True)
        assert registry.get("hsw") == 2
        assert registry.entry("haswell").aliases == ()

    def test_alias_may_not_shadow_existing_canonical_key(self):
        registry = make_registry()
        registry.register("alpha", 1)
        with pytest.raises(DuplicateKeyError, match="collides with the "
                                                    "registered widget 'alpha'"):
            registry.register("beta", 2, aliases=("alpha",))
        assert registry.get("alpha") == 1
        assert "beta" not in registry

    def test_replace_overrides(self):
        registry = make_registry()
        registry.register("alpha", 1)
        registry.register("alpha", 2, replace=True)
        assert registry.get("alpha") == 2

    def test_replace_drops_stale_aliases(self):
        registry = make_registry()
        registry.register("alpha", 1, aliases=("a",))
        registry.register("alpha", 2, replace=True)
        with pytest.raises(UnknownKeyError):  # not a raw KeyError
            registry.get("a")
        registry.unregister("alpha")
        with pytest.raises(UnknownKeyError):
            registry.get("a")

    def test_replace_can_redeclare_aliases(self):
        registry = make_registry()
        registry.register("alpha", 1, aliases=("a",))
        registry.register("alpha", 2, aliases=("a2",), replace=True)
        assert registry.get("a2") == 2
        assert registry.entry("alpha").aliases == ("a2",)

    def test_unregister(self):
        registry = make_registry()
        registry.register("alpha", 1, aliases=("a",))
        registry.unregister("alpha")
        assert "alpha" not in registry
        assert "a" not in registry


class TestUnknownKeyDiagnostics:
    def test_unknown_key_lists_known(self):
        registry = make_registry()
        registry.register("alpha", 1)
        registry.register("beta", 2)
        with pytest.raises(UnknownKeyError) as excinfo:
            registry.get("gamma")
        message = str(excinfo.value)
        assert "unknown widget 'gamma'" in message
        assert "alpha" in message and "beta" in message

    def test_unknown_key_suggests_close_match(self):
        registry = make_registry()
        registry.register("haswell", 1)
        with pytest.raises(UnknownKeyError, match="did you mean 'haswell'"):
            registry.get("hasswell")

    def test_suggestion_covers_aliases(self):
        registry = make_registry()
        registry.register("coordinate_descent", 1, aliases=("coordinate",))
        with pytest.raises(UnknownKeyError, match="did you mean"):
            registry.get("coordinat")

    def test_unknown_key_is_a_key_error(self):
        # Call sites written against plain dict lookups must keep working.
        registry = make_registry()
        with pytest.raises(KeyError):
            registry.get("anything")
        assert issubclass(UnknownKeyError, RegistryError)

    def test_empty_registry_message(self):
        registry = make_registry()
        with pytest.raises(UnknownKeyError, match="<none>"):
            registry.get("anything")


class FakeEntryPoint:
    """Duck-typed importlib.metadata.EntryPoint for plugin-loading tests."""

    def __init__(self, name, value):
        self.name = name
        self._value = value

    def load(self):
        return self._value


class TestEntryPointLoading:
    def test_loads_plain_values(self):
        registry = make_registry()
        added = registry.load_entry_points(
            entries=[FakeEntryPoint("gamma", 3), FakeEntryPoint("delta", 4)])
        assert sorted(added) == ["delta", "gamma"]
        assert registry.get("gamma") == 3
        assert registry.entry("gamma").source == "entry point 'gamma'"

    def test_register_hook_gets_the_registry(self):
        registry = make_registry()

        def register(target):
            target.register("hooked", 99, aliases=("h",))
            target.register("hooked2", 100)

        registry.load_entry_points(entries=[FakeEntryPoint("myplugin", register)])
        assert registry.get("hooked") == 99
        assert registry.get("h") == 99
        assert registry.get("hooked2") == 100

    def test_explicit_registry_hook_attribute(self):
        registry = make_registry()

        def install(target):
            target.register("flagged", 7)
        install.__registry_hook__ = True

        registry.load_entry_points(entries=[FakeEntryPoint("whatever", install)])
        assert registry.get("flagged") == 7

    def test_duplicate_from_entry_point_raises(self):
        registry = make_registry()
        registry.register("alpha", 1)
        with pytest.raises(DuplicateKeyError):
            registry.load_entry_points(entries=[FakeEntryPoint("alpha", 2)])

    def test_retried_scan_skips_completed_entry_points(self):
        # A partial failure must not re-run earlier plugins' hooks on retry.
        registry = make_registry()

        def register(target):
            target.register("hooked", object())  # fresh object per call

        class Broken:
            name = "broken"

            def load(self):
                raise ImportError("broken plugin")

        hook_entry = FakeEntryPoint("myplugin", register)
        with pytest.raises(ImportError, match="broken plugin"):
            registry.load_entry_points(entries=[hook_entry, Broken()])
        assert "hooked" in registry
        # Retry with the same list: the hook is skipped, not double-run.
        with pytest.raises(ImportError, match="broken plugin"):
            registry.load_entry_points(entries=[hook_entry, Broken()])

    def test_unknown_group_scan_is_empty(self):
        # A real metadata scan over a group nobody provides adds nothing.
        registry = make_registry()
        assert registry.load_entry_points(group="repro.tests.no_such_group") == []

    def test_group_scan_happens_lazily_once(self):
        calls = []

        class Probe(Registry):
            def load_entry_points(self, group=None, entries=None):
                calls.append(group or self.entry_point_group)
                return []

        registry = Probe("widget", entry_point_group="repro.tests.no_such_group")
        registry.register("alpha", 1)
        assert calls == []  # registration never triggers the scan
        registry.get("alpha")
        registry.names()
        assert calls == ["repro.tests.no_such_group"]  # first lookup only


class TestBootstrap:
    def test_failed_bootstrap_retries_and_resurfaces_the_error(self):
        attempts = []

        def flaky_bootstrap():
            attempts.append(len(attempts))
            if len(attempts) == 1:
                raise ImportError("transient plugin import failure")
            holder.register("late", 1)

        holder = make_registry(bootstrap=flaky_bootstrap)
        with pytest.raises(ImportError, match="transient"):
            holder.get("late")
        # The failure did not latch: the next lookup retries the bootstrap.
        assert holder.get("late") == 1
        assert attempts == [0, 1]

    def test_failed_entry_point_scan_retries(self):
        class Flaky(Registry):
            scans = 0

            def load_entry_points(self, group=None, entries=None):
                if entries is not None:
                    return super().load_entry_points(group, entries)
                type(self).scans += 1
                if type(self).scans == 1:
                    raise ImportError("broken entry point")
                return []

        registry = Flaky("widget", entry_point_group="repro.tests.flaky")
        registry.register("alpha", 1)
        with pytest.raises(ImportError, match="broken entry point"):
            registry.get("alpha")
        assert registry.get("alpha") == 1  # second lookup retried the scan
        assert Flaky.scans == 2

    def test_bootstrap_runs_once_before_first_lookup(self):
        calls = []
        holder = {}

        def bootstrap():
            calls.append("ran")
            holder["registry"].register("late", 42)

        registry = make_registry(bootstrap=bootstrap)
        holder["registry"] = registry
        assert calls == []
        assert registry.get("late") == 42
        registry.names()
        assert calls == ["ran"]

    def test_builtin_registries_are_populated(self):
        from repro.api import registries

        names = {kind: registry.names() for kind, registry in registries().items()}
        assert names["targets"] == ["haswell", "ivybridge", "skylake", "zen2"]
        assert names["simulators"] == ["llvm_sim", "mca"]
        assert names["surrogates"] == ["analytical", "ithemal", "pooled"]
        assert names["presets"] == ["fast", "paper", "test"]
        assert names["baselines"] == ["annealing", "coordinate_descent", "genetic",
                                      "iaca", "ithemal", "opentuner", "random_search"]

    def test_builtin_aliases_resolve(self):
        from repro.api import BASELINES, SIMULATORS, TARGETS

        assert TARGETS.resolve("hsw") == "haswell"
        assert TARGETS.resolve("Ivy Bridge") == "ivybridge"
        assert SIMULATORS.resolve("llvm-mca") == "mca"
        assert BASELINES.resolve("coordinate") == "coordinate_descent"

    def test_unregister_bootstraps_first(self):
        calls = []
        holder = {}

        def bootstrap():
            calls.append("ran")
            holder["registry"].register("builtin", 1)

        registry = make_registry(bootstrap=bootstrap)
        holder["registry"] = registry
        registry.unregister("builtin")  # first touch: bootstrap must run
        assert calls == ["ran"]
        assert "builtin" not in registry

    def test_get_uarch_routes_through_registry(self):
        from repro.targets import get_uarch

        assert get_uarch("haswell").name == "Haswell"
        with pytest.raises(KeyError, match="did you mean"):
            get_uarch("hasswell")
