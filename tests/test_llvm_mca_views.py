"""Tests for the llvm-mca port-group semantics and diagnostic views."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.parser import parse_block
from repro.llvm_mca import (GroupedPortSet, HASWELL_PORT_GROUPS, MCASimulator, NUM_PORTS,
                            PortGroup, PortSet, TimelineView, resolve_grouped_port_map)
from repro.targets import HASWELL
from repro.targets.defaults import build_default_mca_table


@pytest.fixture(scope="module")
def default_table():
    return build_default_mca_table(HASWELL)


@pytest.fixture(scope="module")
def dependent_block(default_table):
    return parse_block("addq %rax, %rbx\nimulq %rbx, %rcx\naddq %rcx, %rax",
                       default_table.opcode_table)


@pytest.fixture(scope="module")
def load_store_block(default_table):
    return parse_block("movq 16(%rsp), %rax\naddq %rax, %rbx\nmovq %rbx, 24(%rsp)",
                       default_table.opcode_table)


# ----------------------------------------------------------------------
# Port groups
# ----------------------------------------------------------------------
class TestPortGroup:
    def test_group_validation(self):
        with pytest.raises(ValueError):
            PortGroup("empty", ())
        with pytest.raises(ValueError):
            PortGroup("dup", (1, 1))
        with pytest.raises(ValueError):
            PortGroup("neg", (-1,))

    def test_membership_and_width(self):
        group = PortGroup("P01", (0, 1))
        assert 0 in group and 1 in group and 5 not in group
        assert group.width == 2

    def test_standard_groups_fit_in_ten_ports(self):
        for group in HASWELL_PORT_GROUPS.values():
            assert all(0 <= port < NUM_PORTS for port in group.ports)


class TestResolveGroupedPortMap:
    def test_plain_per_port_demand_passes_through(self):
        resolved = resolve_grouped_port_map([1, 0, 2, 0, 0, 0, 0, 0, 0, 0], {},
                                            HASWELL_PORT_GROUPS)
        assert resolved == [1, 0, 2, 0, 0, 0, 0, 0, 0, 0]

    def test_group_cycles_spread_to_least_loaded_member(self):
        resolved = resolve_grouped_port_map([0] * NUM_PORTS, {"P01": 4},
                                            HASWELL_PORT_GROUPS)
        assert resolved[0] == 2 and resolved[1] == 2
        assert sum(resolved) == 4

    def test_group_respects_existing_per_port_load(self):
        per_port = [3, 0] + [0] * (NUM_PORTS - 2)
        resolved = resolve_grouped_port_map(per_port, {"P01": 2}, HASWELL_PORT_GROUPS)
        # Both group cycles land on the idle member (port 1).
        assert resolved[1] == 2
        assert resolved[0] == 3

    def test_unknown_group_and_bad_values_rejected(self):
        with pytest.raises(KeyError):
            resolve_grouped_port_map([0] * NUM_PORTS, {"missing": 1}, HASWELL_PORT_GROUPS)
        with pytest.raises(ValueError):
            resolve_grouped_port_map([-1] * NUM_PORTS, {}, HASWELL_PORT_GROUPS)
        with pytest.raises(ValueError):
            resolve_grouped_port_map([0] * NUM_PORTS, {"P01": -2}, HASWELL_PORT_GROUPS)
        with pytest.raises(ValueError):
            resolve_grouped_port_map([0] * (NUM_PORTS + 1), {}, HASWELL_PORT_GROUPS)

    def test_group_referencing_port_outside_set_rejected(self):
        groups = {"wide": PortGroup("wide", (0, 12))}
        with pytest.raises(ValueError):
            resolve_grouped_port_map([0, 0], {"wide": 1}, groups, num_ports=2)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=12), st.integers(min_value=0, max_value=12))
    def test_total_cycles_conserved_property(self, group_cycles, per_port_cycles):
        """Resolution never creates or loses occupancy cycles."""
        per_port = [per_port_cycles] + [0] * (NUM_PORTS - 1)
        resolved = resolve_grouped_port_map(per_port, {"P0156": group_cycles},
                                            HASWELL_PORT_GROUPS)
        assert sum(resolved) == per_port_cycles + group_cycles


class TestGroupedPortSet:
    def test_group_issue_uses_any_free_member(self):
        ports = GroupedPortSet()
        # Busy port 0 for 10 cycles via a per-port demand.
        ports.reserve([10] + [0] * (NUM_PORTS - 1), {}, issue_cycle=0)
        # A P01 group demand can still issue immediately on port 1.
        assert ports.earliest_issue_cycle([0] * NUM_PORTS, {"P01": 1}, not_before=0) == 0

    def test_plain_port_demand_still_blocks(self):
        ports = GroupedPortSet()
        ports.reserve([5] + [0] * (NUM_PORTS - 1), {}, issue_cycle=0)
        assert ports.earliest_issue_cycle([1] + [0] * (NUM_PORTS - 1), {}, 0) == 5

    def test_reserve_steers_group_to_least_loaded(self):
        ports = GroupedPortSet()
        ports.reserve([0] * NUM_PORTS, {"P01": 3}, issue_cycle=0)
        ports.reserve([0] * NUM_PORTS, {"P01": 3}, issue_cycle=0)
        utilization = ports.utilization()
        assert utilization[0] == 3 and utilization[1] == 3

    def test_completion_time_reflects_group_reservation(self):
        ports = GroupedPortSet()
        completion = ports.reserve([0] * NUM_PORTS, {"P23": 4}, issue_cycle=2)
        assert completion == 6

    def test_reset_and_pressure(self):
        ports = GroupedPortSet()
        ports.reserve([0] * NUM_PORTS, {"P01": 2}, issue_cycle=0)
        assert ports.group_pressure()["P01"] > 0.0
        ports.reset()
        assert all(value == 0 for value in ports.utilization())

    def test_unknown_group_rejected(self):
        ports = GroupedPortSet()
        with pytest.raises(KeyError):
            ports.reserve([0] * NUM_PORTS, {"nope": 1}, issue_cycle=0)

    def test_group_outside_port_set_rejected(self):
        with pytest.raises(ValueError):
            GroupedPortSet(num_ports=2, groups={"big": PortGroup("big", (0, 5))})

    def test_matches_plain_portset_for_per_port_demands(self):
        grouped = GroupedPortSet()
        plain = PortSet(NUM_PORTS)
        demand = [2, 0, 1, 0, 0, 0, 0, 0, 0, 0]
        assert (grouped.earliest_issue_cycle(demand, {}, 3)
                == plain.earliest_issue_cycle(demand, 3))
        assert grouped.reserve(demand, {}, 3) == plain.reserve(demand, 3)


# ----------------------------------------------------------------------
# Simulation result timeline data
# ----------------------------------------------------------------------
class TestSimulationTimelineData:
    def test_result_carries_per_instruction_cycles(self, default_table, dependent_block):
        result = MCASimulator(default_table).simulate(dependent_block)
        count = len(result.retire_cycles)
        assert len(result.dispatch_cycles) == count
        assert len(result.issue_cycles) == count
        assert len(result.port_busy_cycles) == NUM_PORTS

    def test_stage_ordering_invariant(self, default_table, dependent_block):
        result = MCASimulator(default_table).simulate(dependent_block)
        for dispatch, issue, retire in zip(result.dispatch_cycles, result.issue_cycles,
                                           result.retire_cycles):
            assert dispatch <= issue <= retire


# ----------------------------------------------------------------------
# Timeline view
# ----------------------------------------------------------------------
class TestTimelineView:
    def test_timeline_entries_cover_every_dynamic_instruction(self, default_table,
                                                              dependent_block):
        view = TimelineView(default_table)
        entries = view.timeline(dependent_block)
        result = view.simulator.simulate(dependent_block)
        assert len(entries) == len(result.retire_cycles)
        assert {entry.index for entry in entries} == {0, 1, 2}
        assert all(entry.latency >= 0 for entry in entries)

    def test_timeline_opcode_labels_match_block(self, default_table, dependent_block):
        view = TimelineView(default_table)
        first_iteration = [entry for entry in view.timeline(dependent_block)
                           if entry.iteration == 0]
        assert [entry.opcode for entry in first_iteration] == \
            [instruction.opcode.name for instruction in dependent_block]

    def test_render_timeline_contains_stage_markers(self, default_table, dependent_block):
        text = TimelineView(default_table).render_timeline(dependent_block)
        assert "D" in text and "R" in text
        assert "[0,0]" in text and "[1,0]" in text

    def test_render_timeline_respects_iteration_limit(self, default_table, dependent_block):
        text = TimelineView(default_table).render_timeline(dependent_block, max_iterations=1)
        assert "[1,0]" not in text

    def test_resource_pressure_positive_for_load_store_block(self, default_table,
                                                             load_store_block):
        pressure = TimelineView(default_table).resource_pressure(load_store_block)
        assert pressure.max_pressure > 0.0
        assert 0 <= pressure.busiest_port < NUM_PORTS
        rendered = TimelineView(default_table).render_resource_pressure(load_store_block)
        assert "Resource pressure" in rendered

    def test_bottleneck_report_names_a_bound(self, default_table, dependent_block):
        report = TimelineView(default_table).bottleneck_report(dependent_block)
        assert report.bottleneck in ("dispatch", "ports", "dependencies", "retire")
        assert report.timing > 0.0
        assert set(report.bounds()) == {"dispatch", "ports", "dependencies"}

    def test_dependency_bound_dominates_serial_chain(self, default_table):
        block = parse_block("imulq %rax, %rax\nimulq %rax, %rax\nimulq %rax, %rax",
                            default_table.opcode_table)
        report = TimelineView(default_table).bottleneck_report(block)
        assert report.bottleneck == "dependencies"
        assert report.dependency_bound >= report.dispatch_bound

    def test_dispatch_bound_dominates_wide_independent_block(self, default_table):
        text = "\n".join(f"addq $1, %r{8 + index}" for index in range(8))
        block = parse_block(text, default_table.opcode_table)
        report = TimelineView(default_table).bottleneck_report(block)
        assert report.dispatch_bound >= report.dependency_bound

    def test_summary_combines_all_views(self, default_table, dependent_block):
        summary = TimelineView(default_table).summary(dependent_block)
        assert "Predicted timing" in summary
        assert "Bottleneck" in summary
        assert "Resource pressure" in summary

    def test_rejects_result_without_timeline_data(self, default_table, dependent_block):
        from repro.llvm_mca.simulator import SimulationResult

        bare = SimulationResult(cycles_per_iteration=1.0, total_cycles=1,
                                iterations_simulated=1, retire_cycles=[1])
        with pytest.raises(ValueError):
            TimelineView(default_table).timeline(dependent_block, result=bare)

    def test_learned_degenerate_latency_visible_in_timeline(self, default_table):
        """A degenerately high WriteLatency (ADD32mr case study) stretches retirement."""
        block = parse_block("addl %eax, 16(%rsp)", default_table.opcode_table)
        view_default = TimelineView(default_table)
        slow_table = default_table.copy()
        slow_table.set_latency(block[0].opcode.name, 62)
        view_slow = TimelineView(slow_table)
        default_last = view_default.timeline(block)[-1].retire_cycle
        slow_last = view_slow.timeline(block)[-1].retire_cycle
        assert slow_last > default_last
