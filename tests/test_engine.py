"""Unit tests for the shared simulation-engine layer.

Covers the three engine stages in isolation — block compilation, table
binding, batched execution — plus the caching contracts the rest of the
pipeline relies on: LRU behaviour, content digests, and the adapters'
``table_from_arrays`` memoization.
"""

import numpy as np
import pytest

from repro.core.adapters import MCAAdapter, SimulatorAdapter
from repro.engine import (BlockCompiler, LRUCache, SimulationEngine, bind_llvm_sim_block,
                          bind_mca_block, block_digest, compile_block, llvm_sim_table_digest,
                          mca_engine, mca_table_digest, parameter_arrays_digest)
from repro.llvm_sim.uops import decode_instruction
from repro.targets import HASWELL
from repro.targets.defaults import build_default_llvm_sim_table, build_default_mca_table


@pytest.fixture(scope="module")
def mca_table():
    return build_default_mca_table(HASWELL)


@pytest.fixture(scope="module")
def llvm_sim_table():
    return build_default_llvm_sim_table(HASWELL)


class TestBlockCompilation:
    def test_opcode_indices_match_table(self, sample_blocks, opcode_table):
        block = sample_blocks[0]
        compiled = compile_block(block, opcode_table)
        expected = [opcode_table.index_of(instruction.opcode.name) for instruction in block]
        assert compiled.opcode_indices.tolist() == expected
        assert compiled.length == len(block)

    def test_register_interning_is_consistent(self, sample_blocks, opcode_table):
        """Two instructions naming the same register get the same id, and the
        id universe is dense."""
        for block in sample_blocks[:10]:
            compiled = compile_block(block, opcode_table)
            name_to_id = {}
            for position, instruction in enumerate(block):
                for name, identifier in zip(instruction.source_registers(),
                                            compiled.source_ids[position]):
                    assert name_to_id.setdefault(name, identifier) == identifier
                for name, identifier in zip(instruction.destination_registers(),
                                            compiled.destination_ids[position]):
                    assert name_to_id.setdefault(name, identifier) == identifier
            assert set(name_to_id.values()) == set(range(compiled.num_registers))

    def test_equal_content_blocks_share_digest(self, simple_block, opcode_table):
        from repro.isa.parser import parse_block

        twin = parse_block(simple_block.to_assembly())
        assert twin is not simple_block
        assert block_digest(twin) == block_digest(simple_block)

    def test_compiler_caches_by_content(self, simple_block, opcode_table):
        from repro.isa.parser import parse_block

        compiler = BlockCompiler(opcode_table)
        first = compiler.compile(simple_block)
        second = compiler.compile(parse_block(simple_block.to_assembly()))
        assert second is first
        assert compiler.hits == 1 and compiler.misses == 1

    def test_compiler_cache_can_be_disabled(self, simple_block, opcode_table):
        compiler = BlockCompiler(opcode_table, max_entries=0)
        assert compiler.compile(simple_block) is not compiler.compile(simple_block)
        assert compiler.cache_size == 0


class TestTableBinding:
    def test_mca_binding_gathers_table_rows(self, sample_blocks, opcode_table, mca_table):
        block = sample_blocks[1]
        bound = bind_mca_block(mca_table, compile_block(block, opcode_table))
        for position, instruction in enumerate(block):
            index = opcode_table.index_of(instruction.opcode.name)
            num_uops, latency, advance, port_cycles, _, _ = bound.instructions[position]
            assert num_uops == int(mca_table.num_micro_ops[index])
            assert latency == int(mca_table.write_latency[index])
            assert advance == mca_table.read_advance_cycles[index].tolist()
            assert port_cycles == mca_table.port_map[index].tolist()

    def test_llvm_sim_binding_matches_decode(self, sample_blocks, opcode_table,
                                             llvm_sim_table):
        """Bound micro-op port sequences agree with the reference decoder."""
        block = sample_blocks[2]
        bound = bind_llvm_sim_block(llvm_sim_table, compile_block(block, opcode_table))
        for position, instruction in enumerate(block):
            decoded = decode_instruction(instruction, position, llvm_sim_table)
            _, _, latency, ports = bound.instructions[position]
            assert ports == [micro_op.port for micro_op in decoded]
            assert all(micro_op.latency == latency for micro_op in decoded)


class TestDigests:
    def test_mca_digest_tracks_content(self, mca_table):
        digest = mca_table_digest(mca_table)
        assert digest == mca_table_digest(mca_table.copy())
        changed = mca_table.copy()
        changed.write_latency = changed.write_latency + 1
        assert mca_table_digest(changed) != digest
        resized = mca_table.copy()
        resized.dispatch_width += 1
        assert mca_table_digest(resized) != digest

    def test_llvm_sim_digest_tracks_content(self, llvm_sim_table):
        digest = llvm_sim_table_digest(llvm_sim_table)
        assert digest == llvm_sim_table_digest(llvm_sim_table.copy())
        changed = llvm_sim_table.copy()
        changed.port_uops = changed.port_uops + 1
        assert llvm_sim_table_digest(changed) != digest

    def test_arrays_digest_tracks_content(self, mca_adapter):
        arrays = mca_adapter.default_arrays()
        assert parameter_arrays_digest(arrays) == parameter_arrays_digest(arrays.copy())
        changed = arrays.copy()
        changed.per_instruction_values[0, 0] += 1.0
        assert parameter_arrays_digest(changed) != parameter_arrays_digest(arrays)


class TestLRUCache:
    def test_eviction_order_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refresh "a"
        cache.put("c", 3)                   # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_hit_miss_accounting(self):
        cache = LRUCache(4)
        assert cache.get("missing") is None
        cache.put("key", 7)
        assert cache.get("key") == 7
        assert cache.hits == 1 and cache.misses == 1

    def test_get_or_compute(self):
        cache = LRUCache(4)
        calls = []
        for _ in range(3):
            value = cache.get_or_compute("key", lambda: calls.append(1) or 42)
            assert value == 42
        assert len(calls) == 1


class TestSimulationEngine:
    def test_run_matrix_matches_run_one_rows(self, mca_table, sample_blocks):
        blocks = sample_blocks[:6]
        wider = mca_table.copy()
        wider.dispatch_width += 2
        engine = mca_engine()
        matrix = engine.run([mca_table, wider], blocks)
        assert matrix.shape == (2, len(blocks))
        assert np.array_equal(matrix[0], mca_engine().run_one(mca_table, blocks))
        assert np.array_equal(matrix[1], mca_engine().run_one(wider, blocks))

    def test_cache_avoids_reexecution(self, mca_table, sample_blocks):
        blocks = sample_blocks[:5]
        engine = mca_engine()
        engine.run_one(mca_table, blocks)
        misses_after_first = engine.stats["result_misses"]
        engine.run_one(mca_table, blocks)
        assert engine.stats["result_misses"] == misses_after_first
        assert engine.stats["result_hits"] == len(blocks)

    def test_identical_tables_share_cache_entries(self, mca_table, sample_blocks):
        """Distinct table objects with equal content hit the same entries."""
        blocks = sample_blocks[:4]
        engine = mca_engine()
        first = engine.run_one(mca_table, blocks)
        second = engine.run_one(mca_table.copy(), blocks)
        assert np.array_equal(first, second)
        assert engine.stats["result_misses"] == len(blocks)

    def test_blocks_compile_once_across_tables(self, mca_table, sample_blocks):
        blocks = sample_blocks[:5]
        tables = []
        for extra in range(3):
            table = mca_table.copy()
            table.write_latency = table.write_latency + extra
            tables.append(table)
        engine = mca_engine()
        engine.run(tables, blocks)
        assert engine.stats["compile_misses"] == len(blocks)

    def test_empty_blocks(self, mca_table):
        engine = mca_engine()
        assert engine.run([mca_table], []).shape == (1, 0)

    def test_cache_capacity_is_bounded(self, mca_table, sample_blocks):
        blocks = sample_blocks[:6]
        engine = mca_engine(cache_size=3)
        engine.run_one(mca_table, blocks)
        assert engine.stats["result_entries"] == 3

    def test_clear_cache(self, mca_table, sample_blocks):
        engine = mca_engine()
        engine.run_one(mca_table, sample_blocks[:3])
        engine.clear_cache()
        assert engine.stats["result_entries"] == 0
        assert engine.stats["result_misses"] == 0


class TestRunPairs:
    def test_heterogeneous_pairs_match_run_one(self, mca_table, sample_blocks):
        wider = mca_table.copy()
        wider.dispatch_width += 2
        pairs = [(mca_table, sample_blocks[:4]), (wider, sample_blocks[4:9])]
        engine = mca_engine()
        results = engine.run_pairs(pairs)
        assert np.array_equal(results[0], mca_engine().run_one(mca_table, sample_blocks[:4]))
        assert np.array_equal(results[1], mca_engine().run_one(wider, sample_blocks[4:9]))

    def test_parallel_pairs_match_serial(self, mca_table, sample_blocks):
        slower = mca_table.copy()
        slower.write_latency = slower.write_latency + 1
        pairs = [(mca_table, sample_blocks[:5]), (slower, sample_blocks[2:8])]
        serial = mca_engine().run_pairs(pairs)
        parallel = mca_engine(num_workers=2).run_pairs(pairs)
        for serial_row, parallel_row in zip(serial, parallel):
            assert np.array_equal(serial_row, parallel_row)


class TestAdapterEngineIntegration:
    def test_predict_timings_batch_matches_per_candidate(self, mca_adapter, sample_blocks,
                                                         rng):
        spec = mca_adapter.parameter_spec()
        candidates = [spec.sample(rng) for _ in range(3)]
        blocks = sample_blocks[:5]
        batch = mca_adapter.predict_timings_batch(candidates, blocks)
        assert batch.shape == (3, len(blocks))
        for arrays, row in zip(candidates, batch):
            assert np.array_equal(row, mca_adapter.predict_timings(arrays, blocks))

    def test_predict_timings_batch_falls_back_without_engine(self, sample_blocks):
        class Constant(SimulatorAdapter):
            def parameter_spec(self):
                raise NotImplementedError

            def default_arrays(self):
                raise NotImplementedError

            def predict_timings(self, arrays, blocks):
                return np.full(len(blocks), 2.0)

        batch = Constant().predict_timings_batch([object(), object()], sample_blocks[:3])
        assert batch.shape == (2, 3)
        assert np.all(batch == 2.0)
        assert Constant().predict_timings_batch([], sample_blocks[:3]).shape == (0, 3)

    def test_simulator_factory_drives_engine_and_build_simulator(self, sample_blocks):
        """Overriding simulator_factory customizes both prediction paths."""
        import functools

        from repro.llvm_mca.simulator import MCASimulator

        class ShortWindow(MCAAdapter):
            def simulator_factory(self):
                return functools.partial(MCASimulator, warmup_iterations=1,
                                         measure_iterations=2)

        adapter = ShortWindow(HASWELL)
        arrays = adapter.default_arrays()
        table = adapter.table_from_arrays(arrays)
        expected = MCASimulator(table, warmup_iterations=1,
                                measure_iterations=2).predict_many(sample_blocks[:4])
        assert np.array_equal(adapter.predict_timings(arrays, sample_blocks[:4]), expected)
        built = adapter.build_simulator(arrays)
        assert built.warmup_iterations == 1 and built.measure_iterations == 2

    def test_table_from_arrays_is_memoized_by_digest(self, monkeypatch):
        adapter = MCAAdapter(HASWELL)
        calls = []
        original = MCAAdapter.table_from_arrays

        def counting(self, arrays):
            calls.append(1)
            return original(self, arrays)

        monkeypatch.setattr(MCAAdapter, "table_from_arrays", counting)
        arrays = adapter.default_arrays()
        blocks = []
        adapter.predict_timings(arrays, blocks)
        adapter.predict_timings(arrays, blocks)
        # An equal-content copy must also reuse the conversion.
        adapter.predict_timings(arrays.copy(), blocks)
        assert len(calls) == 1

    def test_native_table_returns_equivalent_table(self, mca_adapter):
        arrays = mca_adapter.default_arrays()
        cached = mca_adapter.native_table(arrays)
        rebuilt = mca_adapter.table_from_arrays(arrays)
        assert mca_table_digest(cached) == mca_table_digest(rebuilt)
        assert mca_adapter.native_table(arrays.copy()) is cached

    def test_adapter_engine_is_shared_and_lazy(self):
        adapter = MCAAdapter(HASWELL)
        assert getattr(adapter, "_engine", None) is None
        assert adapter.engine is adapter.engine

    def test_non_engine_adapter_raises(self):
        class Minimal(SimulatorAdapter):
            def parameter_spec(self):
                raise NotImplementedError

            def default_arrays(self):
                raise NotImplementedError

            def predict_timings(self, arrays, blocks):
                return np.zeros(len(blocks))

        with pytest.raises(NotImplementedError):
            _ = Minimal().engine

    def test_engine_workers_plumbing(self):
        adapter = MCAAdapter(HASWELL, engine_workers=2, engine_cache_size=128)
        engine = adapter.engine
        assert engine.num_workers == 2
        assert isinstance(engine, SimulationEngine)
