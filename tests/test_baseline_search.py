"""Tests for the standalone black-box search baselines (genetic, annealing, coordinate)."""

import numpy as np
import pytest

from repro.baselines.annealing import AnnealingConfig, SimulatedAnnealingTuner
from repro.baselines.coordinate_descent import (CoordinateDescentConfig,
                                                CoordinateDescentTuner)
from repro.baselines.genetic import GeneticConfig, GeneticTuner
from repro.bhive.dataset import build_dataset
from repro.core.adapters import MCAAdapter
from repro.core.losses import mape_loss_value
from repro.targets import HASWELL


@pytest.fixture(scope="module")
def tuning_problem():
    """A small Haswell tuning problem shared by every search baseline test."""
    dataset = build_dataset("haswell", num_blocks=60, seed=11)
    adapter = MCAAdapter(HASWELL, narrow_sampling=True)
    examples = dataset.train_examples
    blocks = [example.block for example in examples]
    timings = np.array([example.timing for example in examples])
    return adapter, blocks, timings


def _random_table_error(adapter, blocks, timings, seed=0):
    rng = np.random.default_rng(seed)
    arrays = adapter.parameter_spec().sample(rng)
    return mape_loss_value(adapter.predict_timings(arrays, blocks), timings)


# ----------------------------------------------------------------------
# Configuration validation
# ----------------------------------------------------------------------
class TestConfigValidation:
    def test_genetic_config_bounds(self):
        with pytest.raises(ValueError):
            GeneticConfig(population_size=1)
        with pytest.raises(ValueError):
            GeneticConfig(elite_fraction=1.0)
        with pytest.raises(ValueError):
            GeneticConfig(tournament_size=0)
        with pytest.raises(ValueError):
            GeneticConfig(crossover_rate=1.5)
        with pytest.raises(ValueError):
            GeneticConfig(mutation_rate=0.0)

    def test_annealing_config_bounds(self):
        with pytest.raises(ValueError):
            AnnealingConfig(initial_temperature=0.0)
        with pytest.raises(ValueError):
            AnnealingConfig(cooling_rate=1.0)
        with pytest.raises(ValueError):
            AnnealingConfig(step_scale=0.0)

    def test_coordinate_config_bounds(self):
        with pytest.raises(ValueError):
            CoordinateDescentConfig(rounds=0)
        with pytest.raises(ValueError):
            CoordinateDescentConfig(candidates_per_field=1)


# ----------------------------------------------------------------------
# Genetic algorithm
# ----------------------------------------------------------------------
class TestGeneticTuner:
    def test_requires_blocks(self, tuning_problem):
        adapter, _blocks, timings = tuning_problem
        tuner = GeneticTuner(adapter, GeneticConfig(evaluation_budget=500))
        with pytest.raises(ValueError):
            tuner.tune([], timings[:0])

    def test_produces_valid_table_within_budget(self, tuning_problem):
        adapter, blocks, timings = tuning_problem
        config = GeneticConfig(population_size=6, evaluation_budget=900,
                               blocks_per_evaluation=12, seed=1)
        result = GeneticTuner(adapter, config).tune(blocks, timings)
        assert result.evaluations <= config.evaluation_budget
        assert result.best_error >= 0.0
        table = adapter.table_from_arrays(result.best_arrays)
        table.validate()

    def test_error_history_tracks_best_so_far(self, tuning_problem):
        adapter, blocks, timings = tuning_problem
        config = GeneticConfig(population_size=6, evaluation_budget=1500,
                               blocks_per_evaluation=12, seed=2)
        result = GeneticTuner(adapter, config).tune(blocks, timings)
        assert result.generations >= 1
        assert len(result.error_history) == result.generations + 1

    def test_improves_over_average_random_table(self, tuning_problem):
        adapter, blocks, timings = tuning_problem
        config = GeneticConfig(population_size=8, evaluation_budget=2500,
                               blocks_per_evaluation=16, seed=3)
        result = GeneticTuner(adapter, config).tune(blocks, timings)
        random_errors = [_random_table_error(adapter, blocks, timings, seed=seed)
                         for seed in range(5)]
        assert result.best_error <= np.mean(random_errors)

    def test_deterministic_for_fixed_seed(self, tuning_problem):
        adapter, blocks, timings = tuning_problem
        config = GeneticConfig(population_size=4, evaluation_budget=600,
                               blocks_per_evaluation=8, seed=7)
        first = GeneticTuner(adapter, config).tune(blocks, timings)
        second = GeneticTuner(adapter, config).tune(blocks, timings)
        np.testing.assert_array_equal(first.best_arrays.to_flat_vector(),
                                      second.best_arrays.to_flat_vector())


# ----------------------------------------------------------------------
# Simulated annealing
# ----------------------------------------------------------------------
class TestSimulatedAnnealingTuner:
    def test_requires_blocks(self, tuning_problem):
        adapter, _blocks, timings = tuning_problem
        tuner = SimulatedAnnealingTuner(adapter)
        with pytest.raises(ValueError):
            tuner.tune([], timings[:0])

    def test_produces_valid_table_within_budget(self, tuning_problem):
        adapter, blocks, timings = tuning_problem
        config = AnnealingConfig(evaluation_budget=900, blocks_per_evaluation=12, seed=1)
        result = SimulatedAnnealingTuner(adapter, config).tune(blocks, timings)
        assert result.evaluations <= config.evaluation_budget
        assert result.steps >= 1
        assert 0 <= result.accepted_moves <= result.steps
        adapter.table_from_arrays(result.best_arrays).validate()

    def test_history_is_monotone_non_increasing(self, tuning_problem):
        adapter, blocks, timings = tuning_problem
        config = AnnealingConfig(evaluation_budget=1200, blocks_per_evaluation=12, seed=2)
        result = SimulatedAnnealingTuner(adapter, config).tune(blocks, timings)
        history = result.error_history
        assert all(earlier >= later - 1e-12 for earlier, later in zip(history, history[1:]))

    def test_improves_over_single_random_table(self, tuning_problem):
        adapter, blocks, timings = tuning_problem
        config = AnnealingConfig(evaluation_budget=2500, blocks_per_evaluation=16, seed=3)
        result = SimulatedAnnealingTuner(adapter, config).tune(blocks, timings)
        random_error = _random_table_error(adapter, blocks, timings, seed=13)
        assert result.best_error <= random_error * 1.05


# ----------------------------------------------------------------------
# Coordinate descent
# ----------------------------------------------------------------------
class TestCoordinateDescentTuner:
    def test_requires_blocks(self, tuning_problem):
        adapter, _blocks, timings = tuning_problem
        tuner = CoordinateDescentTuner(adapter)
        with pytest.raises(ValueError):
            tuner.tune([], timings[:0])

    def test_sweeps_fields_and_respects_budget(self, tuning_problem):
        adapter, blocks, timings = tuning_problem
        config = CoordinateDescentConfig(rounds=1, candidates_per_field=3,
                                         evaluation_budget=2000,
                                         blocks_per_evaluation=12, seed=1)
        result = CoordinateDescentTuner(adapter, config).tune(blocks, timings)
        assert result.evaluations <= config.evaluation_budget
        adapter.table_from_arrays(result.best_arrays).validate()
        for name, value, _error in result.sweep_history:
            field = adapter.parameter_spec().field_by_name(name)
            assert field.sample_low <= value <= field.sample_high

    def test_global_only_sweep_touches_only_global_fields(self, tuning_problem):
        adapter, blocks, timings = tuning_problem
        config = CoordinateDescentConfig(rounds=1, candidates_per_field=3,
                                         evaluation_budget=1500,
                                         blocks_per_evaluation=12,
                                         sweep_per_instruction_fields=False, seed=2)
        result = CoordinateDescentTuner(adapter, config).tune(blocks, timings)
        swept = {name for name, _value, _error in result.sweep_history}
        assert swept <= {"DispatchWidth", "ReorderBufferSize"}

    def test_starting_from_given_arrays_never_hurts_batch_error(self, tuning_problem):
        adapter, blocks, timings = tuning_problem
        start = adapter.default_arrays()
        config = CoordinateDescentConfig(rounds=1, candidates_per_field=3,
                                         evaluation_budget=1500,
                                         blocks_per_evaluation=16, seed=3)
        result = CoordinateDescentTuner(adapter, config).tune(blocks, timings,
                                                              initial_arrays=start)
        default_error = mape_loss_value(adapter.predict_timings(start, blocks), timings)
        # Coordinate descent only accepts improving moves on its evaluation
        # batches, so the final full-set error stays in the same regime as the
        # starting point (it cannot blow up to random-table error).
        assert result.best_error < default_error + 0.35
