"""Tests for metrics, analyses, table formatting, and experiment drivers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bhive import build_dataset
from repro.core.adapters import MCAAdapter
from repro.eval import (case_study_report, error_and_tau, format_results_table, format_table,
                        global_parameter_sensitivity, kendall_tau,
                        mean_absolute_percentage_error, parameter_histograms,
                        per_application_error, per_category_error)
from repro.eval.tables import format_percent
from repro.isa.parser import parse_block
from repro.llvm_mca import MCASimulator
from repro.targets import HASWELL, build_default_mca_table
from repro.targets.hardware import HardwareModel


class TestMetrics:
    def test_mape_basic(self):
        assert mean_absolute_percentage_error([2.0], [1.0]) == pytest.approx(1.0)
        assert mean_absolute_percentage_error([1.0, 1.0], [1.0, 2.0]) == pytest.approx(0.25)

    def test_mape_can_exceed_one(self):
        assert mean_absolute_percentage_error([10.0], [1.0]) > 1.0

    def test_mape_validation(self):
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            mean_absolute_percentage_error([], [])

    def test_kendall_tau_perfect_and_inverted(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
        assert kendall_tau([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)

    def test_kendall_tau_uncorrelated_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=300)
        b = rng.normal(size=300)
        assert abs(kendall_tau(a, b)) < 0.1

    def test_kendall_tau_requires_two(self):
        with pytest.raises(ValueError):
            kendall_tau([1.0], [1.0])

    def test_error_and_tau_tuple(self):
        error, tau = error_and_tau([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert error == pytest.approx(0.0)
        assert tau == pytest.approx(1.0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=0.1, max_value=50), min_size=2, max_size=20))
    def test_perfect_prediction_has_zero_error_and_unit_tau_when_distinct(self, values):
        values = list(dict.fromkeys(values))  # make distinct
        if len(values) < 2:
            values = [1.0, 2.0]
        error, tau = error_and_tau(values, values)
        assert error == pytest.approx(0.0)
        assert tau == pytest.approx(1.0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=-10, max_value=10), min_size=2, max_size=15),
           st.lists(st.floats(min_value=-10, max_value=10), min_size=2, max_size=15))
    def test_kendall_tau_bounded(self, a, b):
        size = min(len(a), len(b))
        assert -1.0 <= kendall_tau(a[:size], b[:size]) <= 1.0


class TestAnalysis:
    def test_per_application_error_structure(self, small_dataset, haswell_default_table):
        simulator = MCASimulator(haswell_default_table)
        results = per_application_error(small_dataset, simulator.predict_many)
        assert results
        for name, (count, error) in results.items():
            assert count > 0 and error >= 0

    def test_per_category_error_structure(self, small_dataset, haswell_default_table):
        simulator = MCASimulator(haswell_default_table)
        results = per_category_error(small_dataset, simulator.predict_many)
        total = sum(count for count, _ in results.values())
        assert total == len(small_dataset.splits.test)

    def test_parameter_histograms_counts(self, haswell_default_table):
        learned = haswell_default_table.copy()
        learned.write_latency[:] = 0
        histograms = parameter_histograms(haswell_default_table, learned)
        assert set(histograms) == {"NumMicroOps", "WriteLatency", "ReadAdvanceCycles", "PortMap"}
        write_latency = histograms["WriteLatency"]
        assert sum(write_latency["default"]) == len(haswell_default_table.opcode_table)
        assert write_latency["learned"][0] == len(haswell_default_table.opcode_table)

    def test_sensitivity_sweep_shape(self, small_dataset, haswell_default_table):
        with pytest.warns(DeprecationWarning, match="sweep_error_curve"):
            sweep = global_parameter_sensitivity(haswell_default_table, small_dataset,
                                                 "DispatchWidth", [1, 4, 8], max_blocks=10)
        assert [value for value, _ in sweep] == [1, 4, 8]
        assert all(error > 0 for _, error in sweep)

    def test_sensitivity_dispatch_width_minimum_near_default(self, small_dataset,
                                                             haswell_default_table):
        """Error should be worse at DispatchWidth=1 than at the default 4 (Figure 5)."""
        with pytest.warns(DeprecationWarning):
            sweep = dict(global_parameter_sensitivity(haswell_default_table, small_dataset,
                                                      "DispatchWidth", [1, 4], max_blocks=25))
        assert sweep[1] > sweep[4]

    def test_sensitivity_rob_insensitive_above_threshold(self, small_dataset,
                                                         haswell_default_table):
        """Above ~70 entries the reorder buffer is rarely the bottleneck (Figure 5)."""
        with pytest.warns(DeprecationWarning):
            sweep = dict(global_parameter_sensitivity(haswell_default_table, small_dataset,
                                                      "ReorderBufferSize", [100, 300],
                                                      max_blocks=25))
        assert sweep[100] == pytest.approx(sweep[300], rel=0.1)

    def test_sensitivity_invalid_parameter(self, small_dataset, haswell_default_table):
        with pytest.raises(ValueError), pytest.warns(DeprecationWarning):
            global_parameter_sensitivity(haswell_default_table, small_dataset, "Bogus", [1])

    def test_case_study_report(self, haswell_default_table, haswell_hardware):
        learned = haswell_default_table.copy()
        learned.set_latency("PUSH64r", 0)
        blocks = {"PUSH64r": (parse_block("pushq %rbx\ntestl %r8d, %r8d"), "PUSH64r")}
        report = case_study_report(blocks, haswell_default_table, learned,
                                   lambda block: haswell_hardware.measure(block, noisy=False))
        assert len(report) == 1
        case = report[0]
        assert case.default_latency == 2 and case.learned_latency == 0
        assert case.learned_prediction < case.default_prediction
        assert abs(case.learned_prediction - case.true_timing) < \
            abs(case.default_prediction - case.true_timing)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["A", "Metric"], [["x", 1], ["longer", 2.5]], title="Title")
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "A" in lines[1] and "Metric" in lines[1]
        assert len(lines) == 5

    def test_format_percent(self):
        assert format_percent(0.254) == "25.4%"
        assert format_percent(None) == "N/A"

    def test_format_results_table(self):
        results = {"Haswell": {"Default": (0.25, 0.78), "IACA": (None, None)}}
        text = format_results_table(results, title="Table IV")
        assert "Haswell" in text and "25.0%" in text and "N/A" in text


class TestExperimentDrivers:
    def test_table3_statistics(self):
        from repro.eval.experiments import run_table3_dataset_statistics

        results = run_table3_dataset_statistics(num_blocks=80, seed=1, uarches=("haswell",))
        assert "Haswell" in results
        assert results["Haswell"]["num_blocks_total"] > 0

    def test_section5a_random_tables(self):
        from repro.eval.experiments import run_section5a_random_tables

        results = run_section5a_random_tables(num_blocks=60, num_tables=2, seed=0)
        assert results["mean"] > 0.3  # random tables are far worse than defaults
        assert results["min"] <= results["mean"] <= results["max"]

    def test_section2b_measured_tables(self):
        from repro.eval.experiments import run_section2b_measured_tables

        results = run_section2b_measured_tables(num_blocks=80, seed=0)
        assert set(results) == {"default", "min", "median", "max"}
        assert results["max"] > results["default"]

    def test_experiment_scales(self):
        from repro.eval.experiments import ExperimentScale

        smoke = ExperimentScale.smoke()
        benchmark = ExperimentScale.benchmark()
        assert smoke.num_blocks < benchmark.num_blocks
        assert smoke.difftune.simulated_dataset_size < \
            benchmark.difftune.simulated_dataset_size
