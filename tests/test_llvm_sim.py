"""Tests for the llvm_sim style micro-op simulator (Appendix A substrate)."""

import numpy as np
import pytest

from repro.isa.parser import parse_block, parse_instruction
from repro.llvm_sim import LLVMSimParameterTable, LLVMSimSimulator, MicroOp, decode_instruction
from repro.llvm_sim.frontend import Frontend
from repro.llvm_sim.params import NUM_PORTS
from repro.targets import HASWELL, build_default_llvm_sim_table


@pytest.fixture(scope="module")
def default_sim_table():
    return build_default_llvm_sim_table(HASWELL)


class TestParameters:
    def test_zeros_table(self, opcode_table):
        table = LLVMSimParameterTable.zeros(opcode_table)
        assert table.num_parameters == len(opcode_table) * (1 + NUM_PORTS)
        table.validate()

    def test_validation(self, opcode_table):
        table = LLVMSimParameterTable.zeros(opcode_table)
        table.write_latency[0] = -1
        with pytest.raises(ValueError):
            table.validate()

    def test_shape_checks(self, opcode_table):
        with pytest.raises(ValueError):
            LLVMSimParameterTable(opcode_table=opcode_table,
                                  write_latency=np.zeros(3),
                                  port_uops=np.zeros((len(opcode_table), NUM_PORTS)))

    def test_vector_roundtrip(self, default_sim_table):
        vector = default_sim_table.to_vector()
        restored = LLVMSimParameterTable.from_vector(vector, default_sim_table.opcode_table)
        np.testing.assert_array_equal(restored.write_latency, default_sim_table.write_latency)
        np.testing.assert_array_equal(restored.port_uops, default_sim_table.port_uops)

    def test_copy_independent(self, default_sim_table):
        copy = default_sim_table.copy()
        copy.write_latency[0] += 5
        assert copy.write_latency[0] != default_sim_table.write_latency[0]

    def test_to_dict_keys(self, default_sim_table):
        payload = default_sim_table.to_dict()
        assert "ADD32rr" in payload["opcodes"]
        assert "write_latency" in payload["opcodes"]["ADD32rr"]


class TestFrontend:
    def test_delivery_throughput(self):
        frontend = Frontend(uops_per_cycle=4, decode_latency=0)
        cycles = [frontend.next_delivery_cycle() for _ in range(8)]
        assert cycles == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_decode_latency_offset(self):
        frontend = Frontend(uops_per_cycle=2, decode_latency=3)
        assert frontend.next_delivery_cycle() == 3

    def test_reset(self):
        frontend = Frontend(uops_per_cycle=1, decode_latency=0)
        frontend.next_delivery_cycle()
        frontend.reset()
        assert frontend.next_delivery_cycle() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Frontend(uops_per_cycle=0)
        with pytest.raises(ValueError):
            Frontend(decode_latency=-1)


class TestDecode:
    def test_decode_produces_port_uops(self, default_sim_table):
        instruction = parse_instruction("movq %rax, 16(%rsp)")
        micro_ops = decode_instruction(instruction, 0, default_sim_table)
        assert all(isinstance(uop, MicroOp) for uop in micro_ops)
        assert len(micro_ops) >= 1

    def test_zero_port_row_still_produces_bookkeeping_uop(self, opcode_table):
        table = LLVMSimParameterTable.zeros(opcode_table)
        instruction = parse_instruction("addq %rax, %rbx")
        micro_ops = decode_instruction(instruction, 3, table)
        assert len(micro_ops) == 1
        assert micro_ops[0].port == -1
        assert micro_ops[0].instruction_index == 3

    def test_decode_respects_port_counts(self, opcode_table):
        table = LLVMSimParameterTable.zeros(opcode_table)
        index = opcode_table.index_of("ADD32rr")
        table.port_uops[index, 0] = 2
        table.port_uops[index, 5] = 1
        micro_ops = decode_instruction(parse_instruction("addl %eax, %ebx"), 0, table)
        assert len(micro_ops) == 3
        assert sorted(uop.port for uop in micro_ops) == [0, 0, 5]


class TestSimulator:
    def test_timing_positive(self, default_sim_table, sample_blocks):
        simulator = LLVMSimSimulator(default_sim_table)
        timings = simulator.predict_many(sample_blocks[:10])
        assert np.all(timings > 0)
        assert np.all(np.isfinite(timings))

    def test_latency_chain_effect(self, default_sim_table):
        simulator = LLVMSimSimulator(default_sim_table)
        chained = parse_block("imulq %rcx, %rdx\nimulq %rdx, %rcx")
        independent = parse_block("imulq %rcx, %rdx\nimulq %rsi, %rdi")
        assert simulator.predict_timing(chained) >= simulator.predict_timing(independent)

    def test_frontend_throughput_limits_wide_blocks(self, default_sim_table):
        narrow = LLVMSimSimulator(default_sim_table, frontend_uops_per_cycle=1)
        wide = LLVMSimSimulator(default_sim_table, frontend_uops_per_cycle=8)
        block = parse_block("\n".join(f"addq %rax, %r{8 + i}" for i in range(6)))
        assert narrow.predict_timing(block) > wide.predict_timing(block)

    def test_port_contention(self, opcode_table):
        table = LLVMSimParameterTable.zeros(opcode_table)
        index = opcode_table.index_of("MULPSrr")
        table.port_uops[index, 8] = 1
        block = parse_block("mulps %xmm1, %xmm2\nmulps %xmm3, %xmm4\nmulps %xmm5, %xmm6")
        contended = LLVMSimSimulator(table).predict_timing(block)
        table.port_uops[index, 8] = 0
        table.port_uops[index, 9] = 1
        still_contended = LLVMSimSimulator(table).predict_timing(block)
        assert contended == pytest.approx(still_contended, rel=0.5)

    def test_write_latency_zero_faster(self, default_sim_table):
        block = parse_block("addq %rax, %rbx\naddq %rbx, %rax")
        base = LLVMSimSimulator(default_sim_table).predict_timing(block)
        modified = default_sim_table.copy()
        modified.write_latency[:] = 0
        faster = LLVMSimSimulator(modified).predict_timing(block)
        assert faster <= base

    def test_result_fields(self, default_sim_table, simple_block):
        result = LLVMSimSimulator(default_sim_table).simulate(simple_block)
        assert result.cycles_per_iteration > 0
        assert result.iterations_simulated >= 2
        assert result.timing == result.cycles_per_iteration

    def test_determinism(self, default_sim_table, sample_blocks):
        first = LLVMSimSimulator(default_sim_table).predict_many(sample_blocks[:6])
        second = LLVMSimSimulator(default_sim_table).predict_many(sample_blocks[:6])
        np.testing.assert_allclose(first, second)

    def test_default_table_differs_from_mca_interpretation(self, default_sim_table,
                                                           haswell_default_table):
        # llvm_sim interprets the PortMap as uop counts, capped low.
        assert default_sim_table.port_uops.max() <= 3
        assert haswell_default_table.port_map.shape == default_sim_table.port_uops.shape
