"""API-surface snapshot and deprecation-shim tests.

The exported-name snapshot pins ``repro.api``'s public surface: an
accidental addition, removal, or rename fails here and must be reviewed
deliberately (update ``EXPECTED_API_SURFACE`` in the same change).
"""

import warnings

import pytest

import repro
import repro.api

#: The pinned public surface of repro.api.  Changing this set is an API
#: change: update the snapshot in the same commit and call it out in review.
EXPECTED_API_SURFACE = sorted([
    # registry machinery
    "Registry",
    "RegistryEntry",
    "RegistryError",
    "DuplicateKeyError",
    "UnknownKeyError",
    # registry instances
    "TARGETS",
    "SIMULATORS",
    "SURROGATES",
    "BASELINES",
    "PRESETS",
    "STRATEGIES",
    "EXECUTORS",
    "registries",
    # plugin record types
    "SimulatorPlugin",
    "BaselinePlugin",
    # specs
    "TuneSpec",
    "EvaluateSpec",
    "PredictSpec",
    "BundleSpec",
    "ServeSpec",
    "CorpusSpec",
    "CampaignSpec",
    "MatrixCampaignSpec",
    "SpecValidationError",
    # session facade
    "Session",
    "SessionTuneResult",
    "CapabilityError",
    # sweep campaigns
    "AxisSpec",
    "CampaignRunner",
    "CampaignResult",
    "run_campaign",
    "CAMPAIGNS",
    # distributed matrix campaigns
    "MatrixResult",
    "run_matrix",
    # deployment bundles
    "BundleError",
    "BundleManifest",
    "export_bundle",
    "load_bundle",
    "inspect_bundle",
    # introspection
    "describe",
])


class TestSurfaceSnapshot:
    def test_all_matches_snapshot(self):
        assert sorted(repro.api.__all__) == EXPECTED_API_SURFACE

    def test_every_exported_name_resolves(self):
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None, name

    def test_dir_covers_all(self):
        assert set(EXPECTED_API_SURFACE) <= set(dir(repro.api))

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute 'bogus'"):
            repro.api.bogus


class TestDescribe:
    def test_structure(self):
        description = repro.api.describe()
        assert description["version"] == repro.__version__
        assert sorted(description["registries"]) == [
            "baselines", "executors", "presets", "simulators", "strategies",
            "surrogates", "targets"]
        haswell = description["registries"]["targets"]["haswell"]
        assert haswell["aliases"] == ["hsw"]
        assert haswell["summary"]

    def test_describe_lists_spec_fields(self):
        description = repro.api.describe()
        assert sorted(description["specs"]) == [
            "BundleSpec", "CampaignSpec", "CorpusSpec", "EvaluateSpec",
            "MatrixCampaignSpec", "PredictSpec", "ServeSpec", "TuneSpec"]
        assert "executor" in description["specs"]["MatrixCampaignSpec"]
        assert "fail_cells" in description["specs"]["MatrixCampaignSpec"]
        assert "target" in description["specs"]["ServeSpec"]
        assert "directory" in description["specs"]["CorpusSpec"]
        assert "shard_size" in description["specs"]["CorpusSpec"]
        assert "bundle_path" in description["specs"]["ServeSpec"]
        assert "table_path" in description["specs"]["BundleSpec"]
        assert "axes" in description["specs"]["CampaignSpec"]
        assert "strategy" in description["specs"]["CampaignSpec"]

    def test_registries_keys_acceptance(self):
        # Acceptance criterion: repro.api.registries().keys() lists all seven.
        assert sorted(repro.api.registries().keys()) == [
            "baselines", "executors", "presets", "simulators", "strategies",
            "surrogates", "targets"]

    def test_describe_is_json_serializable(self):
        import json

        json.dumps(repro.api.describe())


class TestVersion:
    def test_version_is_single_sourced(self):
        # Installed: matches package metadata.  Source tree: the sentinel.
        from importlib import metadata

        try:
            expected = metadata.version("difftune-repro")
        except metadata.PackageNotFoundError:
            expected = "0.0.0+uninstalled"
        assert repro.__version__ == expected

    def test_cli_version_flag(self, capsys):
        from repro import cli

        with pytest.raises(SystemExit) as excinfo:
            cli.main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


#: Every deprecated repro.core package-root name and its defining submodule.
DEPRECATED_CORE_NAMES = [
    ("SimulatorAdapter", "repro.core.adapters"),
    ("MCAAdapter", "repro.core.adapters"),
    ("LLVMSimAdapter", "repro.core.adapters"),
    ("DiffTune", "repro.core.difftune"),
    ("DiffTuneConfig", "repro.core.difftune"),
    ("DiffTuneResult", "repro.core.difftune"),
    ("fast_config", "repro.core.config"),
    ("paper_config", "repro.core.config"),
    ("test_config", "repro.core.config"),
]


class TestDeprecationShims:
    @pytest.mark.parametrize("name,module_name", DEPRECATED_CORE_NAMES)
    def test_shim_warns_and_returns_identical_object(self, name, module_name):
        import importlib

        import repro.core

        with pytest.warns(DeprecationWarning, match=f"importing {name!r}"):
            shimmed = getattr(repro.core, name)
        canonical = getattr(importlib.import_module(module_name), name)
        assert shimmed is canonical

    def test_from_import_warns_too(self):
        with pytest.warns(DeprecationWarning, match="'DiffTune'"):
            from repro.core import DiffTune  # noqa: F401

    def test_shimmed_difftune_behaves_identically(self):
        # The shim returns the same class, so results are trivially identical;
        # exercise one construction to be sure nothing is wrapped.
        import repro.core
        from repro.core.adapters import MCAAdapter
        from repro.core.config import test_config
        from repro.targets import get_uarch

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shimmed = repro.core.DiffTune(
                MCAAdapter(get_uarch("haswell"), narrow_sampling=True),
                test_config(0))
        from repro.core.difftune import DiffTune

        assert type(shimmed) is DiffTune

    def test_submodule_imports_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.core.adapters import MCAAdapter  # noqa: F401
            from repro.core.difftune import DiffTune  # noqa: F401
            from repro.core.config import fast_config  # noqa: F401

    def test_unknown_core_attribute_still_raises(self):
        import repro.core

        with pytest.raises(AttributeError):
            repro.core.NoSuchThing
