"""Tests for the command-line interface."""

import json
import os

import numpy as np
import pytest

from repro import cli
from repro.llvm_mca import MCAParameterTable


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_dataset_arguments(self):
        arguments = cli.build_parser().parse_args(
            ["dataset", "--uarch", "zen2", "--blocks", "50", "--output", "x.json"])
        assert arguments.uarch == "zen2"
        assert arguments.blocks == 50
        assert arguments.handler is cli._command_dataset

    def test_learn_arguments_defaults(self):
        arguments = cli.build_parser().parse_args(["learn", "--output", "t.json"])
        assert arguments.learn_fields is None
        assert not arguments.paper_config

    def test_compare_rejects_unknown_uarch(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["compare", "--uarch", "alderlake"])

    def test_tune_arguments_defaults(self):
        arguments = cli.build_parser().parse_args(["tune"])
        assert arguments.targets == ["haswell"]
        assert arguments.config == "fast"
        assert not arguments.resume
        assert arguments.batch_training
        assert arguments.batch_table_optimization
        assert arguments.handler is cli._command_tune

    def test_tune_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["tune", "--targets", "alderlake"])

    def test_learn_batch_table_optimization_flag(self):
        arguments = cli.build_parser().parse_args(
            ["learn", "--output", "t.json", "--no-batch-table-optimization"])
        assert not arguments.batch_table_optimization


class TestCommands:
    def test_dataset_and_evaluate_roundtrip(self, tmp_path, capsys):
        dataset_path = os.path.join(tmp_path, "dataset.json")
        code = cli.main(["dataset", "--uarch", "haswell", "--blocks", "60",
                         "--seed", "3", "--output", dataset_path])
        assert code == 0
        assert os.path.exists(dataset_path)
        output = capsys.readouterr().out
        assert "measured blocks" in output

        code = cli.main(["evaluate", "--dataset", dataset_path])
        assert code == 0
        output = capsys.readouterr().out
        assert "error" in output and "Kendall" in output

    def test_learn_writes_valid_table(self, tmp_path, capsys):
        # Shrink the configuration so the CLI test runs in seconds: the CLI
        # resolves presets through the registry, so overriding the 'fast'
        # entry redirects `repro learn` to the tiny test configuration.
        from repro.api import PRESETS
        from repro.core.config import test_config

        original = PRESETS.entry("fast")
        PRESETS.register("fast", test_config, replace=True)
        try:
            dataset_path = os.path.join(tmp_path, "dataset.json")
            cli.main(["dataset", "--uarch", "haswell", "--blocks", "60",
                      "--output", dataset_path])
            capsys.readouterr()
            table_path = os.path.join(tmp_path, "learned.json")
            code = cli.main(["learn", "--dataset", dataset_path, "--output", table_path,
                             "--learn-fields", "WriteLatency"])
        finally:
            # Restore the full entry (value + metadata), not just the value,
            # so later tests see pristine registry state.
            PRESETS.register("fast", original.value, aliases=original.aliases,
                             summary=original.summary, source=original.source,
                             replace=True)
        assert code == 0
        output = capsys.readouterr().out
        assert "Saved learned table" in output
        table = MCAParameterTable.load_json(table_path)
        table.validate()

        code = cli.main(["evaluate", "--dataset", dataset_path, "--table", table_path])
        assert code == 0
        assert "error" in capsys.readouterr().out

    def test_tune_stop_and_resume_roundtrip(self, tmp_path, capsys):
        checkpoint_dir = os.path.join(tmp_path, "runs")
        output_dir = os.path.join(tmp_path, "tables")
        base = ["tune", "--targets", "haswell", "--blocks", "60", "--config", "test",
                "--checkpoint-dir", checkpoint_dir, "--output-dir", output_dir]
        code = cli.main(base + ["--stop-after", "train_surrogate"])
        assert code == 0
        output = capsys.readouterr().out
        assert "stopped after stage 'train_surrogate'" in output
        assert not os.path.exists(os.path.join(output_dir, "haswell.json"))

        code = cli.main(base + ["--resume"])
        assert code == 0
        output = capsys.readouterr().out
        assert "resumed 2 stages" in output
        table = MCAParameterTable.load_json(os.path.join(output_dir, "haswell.json"))
        table.validate()
