"""Tests for the timeline / sweep / tune-baseline CLI subcommands."""

import os

import pytest

from repro import cli
from repro.llvm_mca import MCAParameterTable


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    path = os.path.join(tmp_path_factory.mktemp("cli"), "haswell.json")
    assert cli.main(["dataset", "--uarch", "haswell", "--blocks", "60",
                     "--seed", "7", "--output", path]) == 0
    return path


class TestParserExtensions:
    def test_timeline_arguments(self):
        arguments = cli.build_parser().parse_args(
            ["timeline", "--block", "addq %rax, %rbx", "--uarch", "skylake"])
        assert arguments.handler is cli._command_timeline
        assert arguments.uarch == "skylake"

    def test_sweep_field_choices(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["sweep", "--dataset", "x.json",
                                           "--field", "WriteLatency"])

    def test_tune_baseline_method_choices(self):
        arguments = cli.build_parser().parse_args(
            ["tune-baseline", "--dataset", "x.json", "--method", "genetic"])
        assert arguments.method == "genetic"
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["tune-baseline", "--dataset", "x.json",
                                           "--method", "bayesian"])


class TestSimulatorSelection:
    """--simulator is registry-driven and honored everywhere it appears."""

    def test_simulator_choices_come_from_registry(self):
        from repro.api import SIMULATORS

        arguments = cli.build_parser().parse_args(
            ["evaluate", "--dataset", "x.json", "--simulator", "llvm_sim"])
        assert arguments.simulator == "llvm_sim"
        assert set(SIMULATORS.names()) <= {"mca", "llvm_sim", "toy"}
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(
                ["evaluate", "--dataset", "x.json", "--simulator", "gem5"])

    def test_evaluate_with_llvm_sim(self, dataset_path, capsys):
        code = cli.main(["evaluate", "--dataset", dataset_path,
                         "--simulator", "llvm_sim"])
        assert code == 0
        output = capsys.readouterr().out
        assert "[llvm_sim]" in output
        assert "error" in output

    def test_evaluate_with_llvm_sim_table_roundtrip(self, dataset_path, tmp_path,
                                                    capsys):
        from repro.api import PredictSpec, Session

        table_path = os.path.join(tmp_path, "llvm_sim.json")
        session = Session.from_spec(PredictSpec(simulator="llvm_sim"))
        session.default_table().save_json(table_path)
        code = cli.main(["evaluate", "--dataset", dataset_path,
                         "--simulator", "llvm_sim", "--table", table_path])
        assert code == 0
        assert "error" in capsys.readouterr().out

    def test_timeline_rejects_simulator_without_view(self):
        with pytest.raises(SystemExit, match="no timeline view"):
            cli.main(["timeline", "--simulator", "llvm_sim",
                      "--block", "addq %rax, %rbx"])

    def test_sweep_rejects_unsweepable_simulator(self, dataset_path):
        with pytest.raises(SystemExit, match="cannot sweep"):
            cli.main(["sweep", "--dataset", dataset_path,
                      "--simulator", "llvm_sim", "--field", "DispatchWidth"])

    def test_learn_fields_with_llvm_sim_fails_cleanly(self, dataset_path):
        # Spec validation surfaces as a clean CLI error, not a traceback.
        with pytest.raises(SystemExit, match="learn_fields.*does not support"):
            cli.main(["learn", "--dataset", dataset_path, "--output", "/tmp/x.json",
                      "--simulator", "llvm_sim", "--learn-fields", "WriteLatency"])
        with pytest.raises(SystemExit, match="learn_fields.*does not support"):
            cli.main(["tune", "--targets", "haswell", "--simulator", "llvm_sim",
                      "--learn-fields", "WriteLatency", "--config", "test"])


class TestTimelineCommand:
    def test_prints_summary_for_block(self, capsys):
        code = cli.main(["timeline", "--block",
                         "movq 16(%rsp), %rax; addq %rax, %rbx; imulq %rbx, %rcx"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Predicted timing" in output
        assert "Bottleneck" in output
        assert "Resource pressure" in output

    def test_uses_learned_table_when_given(self, tmp_path, capsys):
        from repro.core.adapters import MCAAdapter
        from repro.targets import HASWELL

        adapter = MCAAdapter(HASWELL)
        table = adapter.default_table()
        table.set_latency(table.opcode_table.names()[0], 3)
        table_path = os.path.join(tmp_path, "table.json")
        table.save_json(table_path)
        code = cli.main(["timeline", "--block", "addq %rax, %rbx",
                         "--table", table_path])
        assert code == 0
        assert "Predicted timing" in capsys.readouterr().out


class TestSweepCommand:
    def test_dispatch_width_sweep_reports_best_value(self, dataset_path, capsys):
        code = cli.main(["sweep", "--dataset", dataset_path, "--field", "DispatchWidth",
                         "--low", "1", "--high", "6"])
        assert code == 0
        output = capsys.readouterr().out
        assert "DispatchWidth sensitivity" in output
        assert "Best DispatchWidth" in output

    def test_reorder_buffer_sweep(self, dataset_path, capsys):
        code = cli.main(["sweep", "--dataset", dataset_path, "--field", "ReorderBufferSize",
                         "--low", "50", "--high", "150", "--step", "50"])
        assert code == 0
        assert "ReorderBufferSize" in capsys.readouterr().out


class TestTuneBaselineCommand:
    def test_coordinate_descent_baseline_runs_and_saves(self, dataset_path, tmp_path, capsys):
        output_path = os.path.join(tmp_path, "tuned.json")
        code = cli.main(["tune-baseline", "--dataset", dataset_path, "--method", "coordinate",
                         "--budget", "1200", "--output", output_path])
        assert code == 0
        output = capsys.readouterr().out
        assert "coordinate" in output
        assert "test error" in output
        MCAParameterTable.load_json(output_path).validate()

    def test_annealing_baseline_runs_without_output_file(self, dataset_path, capsys):
        code = cli.main(["tune-baseline", "--dataset", dataset_path, "--method", "annealing",
                         "--budget", "800"])
        assert code == 0
        assert "annealing" in capsys.readouterr().out
