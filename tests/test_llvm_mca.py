"""Tests for the llvm-mca style simulator: parameters, ports, ROB, pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.parser import parse_block
from repro.llvm_mca import MCAParameterTable, MCASimulator, PortSet, ReorderBuffer
from repro.llvm_mca.params import NUM_PORTS, NUM_READ_ADVANCE_SLOTS
from repro.targets import HASWELL, build_default_mca_table


class TestParameterTable:
    def test_zeros_table_is_valid(self, opcode_table):
        table = MCAParameterTable.zeros(opcode_table)
        table.validate()
        assert table.num_parameters == 2 + len(opcode_table) * (2 + 3 + 10)

    def test_validation_rejects_bad_values(self, opcode_table):
        table = MCAParameterTable.zeros(opcode_table)
        table.dispatch_width = 0
        with pytest.raises(ValueError):
            table.validate()
        table = MCAParameterTable.zeros(opcode_table)
        table.write_latency[0] = -1
        with pytest.raises(ValueError):
            table.validate()
        table = MCAParameterTable.zeros(opcode_table)
        table.num_micro_ops[0] = 0
        with pytest.raises(ValueError):
            table.validate()

    def test_shape_validation(self, opcode_table):
        with pytest.raises(ValueError):
            MCAParameterTable(
                opcode_table=opcode_table, dispatch_width=4, reorder_buffer_size=100,
                num_micro_ops=np.ones(3), write_latency=np.zeros(len(opcode_table)),
                read_advance_cycles=np.zeros((len(opcode_table), NUM_READ_ADVANCE_SLOTS)),
                port_map=np.zeros((len(opcode_table), NUM_PORTS)))

    def test_copy_is_independent(self, haswell_default_table):
        copy = haswell_default_table.copy()
        copy.write_latency[0] += 10
        assert haswell_default_table.write_latency[0] != copy.write_latency[0]

    def test_vector_roundtrip(self, haswell_default_table):
        vector = haswell_default_table.to_vector()
        restored = MCAParameterTable.from_vector(vector, haswell_default_table.opcode_table)
        np.testing.assert_array_equal(restored.write_latency,
                                      haswell_default_table.write_latency)
        np.testing.assert_array_equal(restored.port_map, haswell_default_table.port_map)
        assert restored.dispatch_width == haswell_default_table.dispatch_width

    def test_vector_length_validation(self, opcode_table):
        with pytest.raises(ValueError):
            MCAParameterTable.from_vector(np.zeros(5), opcode_table)

    def test_from_vector_clips_to_bounds(self, opcode_table):
        table = MCAParameterTable.zeros(opcode_table)
        vector = table.to_vector()
        vector[:] = -3.0
        restored = MCAParameterTable.from_vector(vector, opcode_table)
        restored.validate()

    def test_dict_roundtrip(self, haswell_default_table, tmp_path):
        path = str(tmp_path / "table.json")
        haswell_default_table.save_json(path)
        restored = MCAParameterTable.load_json(path, haswell_default_table.opcode_table)
        np.testing.assert_array_equal(restored.write_latency,
                                      haswell_default_table.write_latency)
        assert restored.reorder_buffer_size == haswell_default_table.reorder_buffer_size

    def test_per_opcode_accessors(self, haswell_default_table):
        assert haswell_default_table.latency_of("ADD32rr") >= 0
        assert haswell_default_table.micro_ops_of("ADD32rr") >= 1
        assert haswell_default_table.port_map_of("ADD32rr").shape == (NUM_PORTS,)
        haswell_default_table_copy = haswell_default_table.copy()
        haswell_default_table_copy.set_latency("ADD32rr", 7)
        assert haswell_default_table_copy.latency_of("ADD32rr") == 7


class TestPortSet:
    def test_initially_free(self):
        ports = PortSet(4)
        assert ports.earliest_issue_cycle([1, 0, 0, 0], not_before=0) == 0

    def test_reservation_blocks_port(self):
        ports = PortSet(2)
        ports.reserve([2, 0], issue_cycle=0)
        assert ports.earliest_issue_cycle([1, 0], not_before=0) == 2
        assert ports.earliest_issue_cycle([0, 1], not_before=0) == 0

    def test_all_required_ports_must_be_free(self):
        ports = PortSet(3)
        ports.reserve([3, 0, 0], issue_cycle=0)
        ports.reserve([0, 1, 0], issue_cycle=0)
        assert ports.earliest_issue_cycle([1, 1, 0], not_before=0) == 3

    def test_reserve_returns_completion(self):
        ports = PortSet(2)
        completion = ports.reserve([2, 5], issue_cycle=3)
        assert completion == 8

    def test_no_ports_used(self):
        ports = PortSet(2)
        assert ports.reserve([0, 0], issue_cycle=4) == 4

    def test_reset(self):
        ports = PortSet(2)
        ports.reserve([4, 4], issue_cycle=0)
        ports.reset()
        assert ports.utilization() == [0, 0]

    def test_invalid_port_count(self):
        with pytest.raises(ValueError):
            PortSet(0)


class TestReorderBuffer:
    def test_space_available_initially(self):
        rob = ReorderBuffer(8)
        assert rob.earliest_cycle_with_space(4, not_before=0) == 0

    def test_blocks_until_retirement(self):
        rob = ReorderBuffer(4)
        rob.allocate(4, retire_cycle=10)
        assert rob.earliest_cycle_with_space(1, not_before=0) == 10

    def test_partial_drain(self):
        rob = ReorderBuffer(4)
        rob.allocate(2, retire_cycle=5)
        rob.allocate(2, retire_cycle=9)
        assert rob.earliest_cycle_with_space(2, not_before=0) == 5

    def test_oversized_instruction_clamped(self):
        rob = ReorderBuffer(2)
        assert rob.earliest_cycle_with_space(100, not_before=0) == 0

    def test_occupancy_tracking(self):
        rob = ReorderBuffer(10)
        rob.allocate(4, retire_cycle=3)
        assert rob.occupied == 4
        rob.earliest_cycle_with_space(1, not_before=5)
        assert rob.occupied == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReorderBuffer(0)


class TestSimulator:
    def test_single_alu_instruction_timing(self, haswell_default_table):
        simulator = MCASimulator(haswell_default_table)
        block = parse_block("addq %rax, %rbx")
        timing = simulator.predict_timing(block)
        assert 0.2 <= timing <= 1.5

    def test_dependency_chain_latency_bound(self, haswell_default_table):
        simulator = MCASimulator(haswell_default_table)
        independent = parse_block("addq %rax, %rbx\naddq %rcx, %rdx")
        chained = parse_block("addq %rax, %rbx\naddq %rbx, %rax")
        assert simulator.predict_timing(chained) > simulator.predict_timing(independent) - 1e-9

    def test_imul_chain_scales_with_latency(self, haswell_default_table):
        table = haswell_default_table.copy()
        simulator = MCASimulator(table)
        block = parse_block("imulq %rcx, %rdx\nimulq %rdx, %rcx")
        base = simulator.predict_timing(block)
        table.set_latency("IMUL64rr", table.latency_of("IMUL64rr") * 2)
        doubled = MCASimulator(table).predict_timing(block)
        assert doubled > base

    def test_dispatch_width_effect(self, haswell_default_table):
        wide = haswell_default_table.copy()
        wide.dispatch_width = 8
        narrow = haswell_default_table.copy()
        narrow.dispatch_width = 1
        block = parse_block("\n".join(f"addq %rax, %r{8 + i}" for i in range(6)))
        assert MCASimulator(narrow).predict_timing(block) > \
            MCASimulator(wide).predict_timing(block)

    def test_reorder_buffer_effect(self, haswell_default_table):
        small = haswell_default_table.copy()
        small.reorder_buffer_size = 2
        block = parse_block("\n".join(f"addq %rax, %r{8 + (i % 7)}" for i in range(12)))
        small_timing = MCASimulator(small).predict_timing(block)
        default_timing = MCASimulator(haswell_default_table).predict_timing(block)
        assert small_timing >= default_timing

    def test_port_contention(self, haswell_default_table):
        table = haswell_default_table.copy()
        index = table.opcode_index("MULPSrr")
        table.port_map[index, :] = 0
        table.port_map[index, 8] = 3
        block = parse_block("mulps %xmm1, %xmm2\nmulps %xmm3, %xmm4")
        contended = MCASimulator(table).predict_timing(block)
        table.port_map[index, 8] = 1
        relaxed = MCASimulator(table).predict_timing(block)
        assert contended > relaxed

    def test_write_latency_zero_removes_stall(self, haswell_default_table):
        table = haswell_default_table.copy()
        block = parse_block("pushq %rbx\ntestl %r8d, %r8d")
        default_timing = MCASimulator(table).predict_timing(block)
        table.set_latency("PUSH64r", 0)
        relaxed_timing = MCASimulator(table).predict_timing(block)
        assert relaxed_timing < default_timing

    def test_memory_dependencies_not_modeled(self, haswell_default_table):
        """llvm-mca does not track store-to-load dependencies (ADD32mr case)."""
        simulator = MCASimulator(haswell_default_table)
        block = parse_block("addl %eax, 16(%rsp)")
        assert simulator.predict_timing(block) < 3.0

    def test_read_advance_reduces_chain(self, haswell_default_table):
        table = haswell_default_table.copy()
        index = table.opcode_index("IMUL64rr")
        block = parse_block("imulq %rcx, %rdx\nimulq %rdx, %rcx")
        base = MCASimulator(table).predict_timing(block)
        table.read_advance_cycles[index, :] = 2
        advanced = MCASimulator(table).predict_timing(block)
        assert advanced <= base

    def test_simulation_result_fields(self, haswell_default_table, simple_block):
        result = MCASimulator(haswell_default_table).simulate(simple_block)
        assert result.cycles_per_iteration > 0
        assert result.total_cycles >= 1
        assert result.iterations_simulated >= 2
        assert len(result.retire_cycles) == len(simple_block) * result.iterations_simulated
        assert result.timing == result.cycles_per_iteration

    def test_retire_cycles_monotone(self, haswell_default_table, simple_block):
        result = MCASimulator(haswell_default_table).simulate(simple_block)
        assert all(b >= a for a, b in zip(result.retire_cycles, result.retire_cycles[1:]))

    def test_long_block_iteration_reduction(self, haswell_default_table):
        simulator = MCASimulator(haswell_default_table, max_dynamic_instructions=256)
        block = parse_block("\n".join("addq %rax, %rbx" for _ in range(128)))
        result = simulator.simulate(block)
        assert result.iterations_simulated * len(block) <= 512

    def test_invalid_windows(self, haswell_default_table):
        with pytest.raises(ValueError):
            MCASimulator(haswell_default_table, warmup_iterations=0)

    def test_predict_many_matches_individual(self, haswell_default_table, sample_blocks):
        simulator = MCASimulator(haswell_default_table)
        blocks = sample_blocks[:5]
        batch = simulator.predict_many(blocks)
        individual = [simulator.predict_timing(block) for block in blocks]
        np.testing.assert_allclose(batch, individual)

    def test_determinism(self, haswell_default_table, sample_blocks):
        first = MCASimulator(haswell_default_table).predict_many(sample_blocks[:8])
        second = MCASimulator(haswell_default_table).predict_many(sample_blocks[:8])
        np.testing.assert_allclose(first, second)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_timings_always_positive_and_finite(self, seed):
        from repro.bhive import BlockGenerator

        block = BlockGenerator(seed=seed).generate_block()
        table = build_default_mca_table(HASWELL)
        timing = MCASimulator(table).predict_timing(block)
        assert np.isfinite(timing)
        assert timing > 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=10), st.integers(min_value=1, max_value=300))
    def test_arbitrary_globals_never_crash(self, dispatch_width, reorder_buffer):
        table = build_default_mca_table(HASWELL).copy()
        table.dispatch_width = dispatch_width
        table.reorder_buffer_size = reorder_buffer
        block = parse_block("addq %rax, %rbx\nmovq 8(%rsp), %rcx\nimulq %rcx, %rax")
        timing = MCASimulator(table).predict_timing(block)
        assert np.isfinite(timing) and timing > 0
