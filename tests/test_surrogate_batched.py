"""The batched surrogate-training fast path vs the per-example reference.

The contract (ISSUE 3 tentpole): batched and scalar forward/backward agree
within 1e-9, for every surrogate variant, so flipping
``SurrogateTrainingConfig(batched=...)`` changes throughput and nothing else.
A hypothesis property test drives the comparison over random block subsets
and parameter tables; deterministic tests cover the
:class:`~repro.core.surrogate.FeaturizationCache` packing, the training-loop
integration, the ``log_every`` progress-callback semantics (including the
final partial batch), and the ``surrogate_training_throughput`` scenario
registration.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bhive import BlockGenerator
from repro.core.adapters import MCAAdapter
from repro.core.losses import surrogate_loss
from repro.core.simulated_dataset import collect_simulated_dataset
from repro.core.surrogate import (FeaturizationCache, SurrogateConfig,
                                  build_surrogate)
from repro.core.surrogate import BlockFeaturizer
from repro.core.surrogate_training import (SurrogateTrainingConfig, evaluate_surrogate,
                                           train_surrogate)
from repro.targets import HASWELL

EQUIVALENCE_ATOL = 1e-9


@pytest.fixture(scope="module")
def adapter():
    return MCAAdapter(HASWELL, narrow_sampling=True)


@pytest.fixture(scope="module")
def blocks():
    return BlockGenerator(seed=11).generate_blocks(12)


@pytest.fixture(scope="module")
def simulated(adapter, blocks):
    rng = np.random.default_rng(5)
    return collect_simulated_dataset(adapter, blocks, 48, rng, blocks_per_table=8)


def _build(adapter, kind, seed=0):
    config = SurrogateConfig(kind=kind, embedding_size=8, hidden_size=12,
                             num_lstm_layers=2, seed=seed)
    return build_surrogate(adapter.parameter_spec(), BlockFeaturizer(adapter.opcode_table),
                           config)


def _scalar_and_batched(surrogate, adapter, blocks, tables):
    """(scalar predictions, batched predictions) for aligned blocks/tables."""
    spec = adapter.parameter_spec()
    cache = FeaturizationCache(surrogate.featurizer)
    featurized = [cache.featurize(block) for block in blocks]
    packed = cache.pack(featurized)
    per_instruction, global_values = cache.batch_parameters(spec, featurized, tables)
    batched = surrogate.forward_batch(packed, per_instruction, global_values)
    scalar = []
    for featurized_block, table in zip(featurized, tables):
        normalized = cache.normalized_arrays(spec, table)
        rows = normalized.per_instruction_values[list(featurized_block.opcode_indices)]
        scalar.append(surrogate.forward(featurized_block, rows,
                                        normalized.global_values))
    return scalar, batched


class TestForwardEquivalence:
    @pytest.mark.parametrize("kind", ["pooled", "analytical", "ithemal"])
    def test_predictions_match_within_1e9(self, adapter, blocks, kind):
        surrogate = _build(adapter, kind)
        rng = np.random.default_rng(3)
        spec = adapter.parameter_spec()
        tables = [spec.sample(rng) for _ in blocks]
        scalar, batched = _scalar_and_batched(surrogate, adapter, blocks, tables)
        scalar_values = np.array([prediction.item() for prediction in scalar])
        np.testing.assert_allclose(batched.numpy(), scalar_values,
                                   atol=EQUIVALENCE_ATOL, rtol=0)

    @pytest.mark.parametrize("kind", ["pooled", "analytical", "ithemal"])
    def test_loss_and_gradients_match_within_1e9(self, adapter, blocks, kind):
        surrogate = _build(adapter, kind)
        rng = np.random.default_rng(7)
        spec = adapter.parameter_spec()
        tables = [spec.sample(rng) for _ in blocks]
        targets = [1.0 + 0.5 * index for index in range(len(blocks))]

        scalar, batched = _scalar_and_batched(surrogate, adapter, blocks, tables)
        batched_loss = surrogate_loss(batched, targets)
        surrogate.zero_grad()
        batched_loss.backward()
        batched_grads = {name: parameter.grad.copy()
                         for name, parameter in surrogate.named_parameters()
                         if parameter.grad is not None}

        scalar_loss = surrogate_loss(scalar, targets)
        surrogate.zero_grad()
        scalar_loss.backward()
        scalar_grads = {name: parameter.grad.copy()
                        for name, parameter in surrogate.named_parameters()
                        if parameter.grad is not None}

        assert abs(batched_loss.item() - scalar_loss.item()) < EQUIVALENCE_ATOL
        assert set(batched_grads) == set(scalar_grads)
        for name in scalar_grads:
            np.testing.assert_allclose(batched_grads[name], scalar_grads[name],
                                       atol=EQUIVALENCE_ATOL, rtol=0, err_msg=name)

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           batch=st.integers(min_value=1, max_value=8))
    def test_property_random_batches_and_tables_agree(self, adapter, blocks,
                                                      seed, batch):
        """Hypothesis: batched and per-example losses match within 1e-9."""
        rng = np.random.default_rng(seed)
        surrogate = _build(adapter, "pooled", seed=seed % 101)
        spec = adapter.parameter_spec()
        chosen = [blocks[int(index)] for index in
                  rng.integers(0, len(blocks), size=batch)]
        tables = [spec.sample(rng) for _ in chosen]
        targets = rng.uniform(0.5, 20.0, size=batch).tolist()
        scalar, batched = _scalar_and_batched(surrogate, adapter, chosen, tables)
        scalar_loss = surrogate_loss(scalar, targets).item()
        batched_loss = surrogate_loss(batched, targets).item()
        assert abs(scalar_loss - batched_loss) < EQUIVALENCE_ATOL


class TestFeaturizationCache:
    def test_pack_pads_and_masks(self, adapter, blocks):
        cache = FeaturizationCache(BlockFeaturizer(adapter.opcode_table))
        featurized = [cache.featurize(block) for block in blocks[:4]]
        packed = cache.pack(featurized)
        lengths = [len(entry.opcode_indices) for entry in featurized]
        assert packed.batch_size == 4
        assert packed.max_instructions == max(lengths)
        np.testing.assert_array_equal(packed.lengths, lengths)
        np.testing.assert_array_equal(packed.instruction_mask.sum(axis=1), lengths)
        for row, entry in enumerate(featurized):
            np.testing.assert_array_equal(
                packed.opcode_indices[row, :lengths[row]], entry.opcode_indices)
            token_counts = [len(ids) for ids in entry.token_ids]
            np.testing.assert_array_equal(
                packed.token_mask[row, :lengths[row]].sum(axis=1), token_counts)
        # Padding past each block's length is fully masked.
        for row, length in enumerate(lengths):
            assert packed.instruction_mask[row, length:].sum() == 0
            assert packed.token_mask[row, length:].sum() == 0

    def test_pack_empty_batch_rejected(self, adapter):
        cache = FeaturizationCache(BlockFeaturizer(adapter.opcode_table))
        with pytest.raises(ValueError, match="empty batch"):
            cache.pack([])

    def test_block_arrays_cached_per_block(self, adapter, blocks):
        cache = FeaturizationCache(BlockFeaturizer(adapter.opcode_table))
        featurized = cache.featurize(blocks[0])
        first = cache._arrays_for(featurized)
        again = cache._arrays_for(cache.featurize(blocks[0]))
        assert first is again

    def test_normalization_memoized_per_table(self, adapter):
        spec = adapter.parameter_spec()
        cache = FeaturizationCache(BlockFeaturizer(adapter.opcode_table))
        table = spec.sample(np.random.default_rng(0))
        first = cache.normalized_arrays(spec, table)
        assert cache.normalized_arrays(spec, table) is first
        other = spec.sample(np.random.default_rng(1))
        assert cache.normalized_arrays(spec, other) is not first

    def test_batch_parameters_alignment_validated(self, adapter, blocks):
        spec = adapter.parameter_spec()
        cache = FeaturizationCache(BlockFeaturizer(adapter.opcode_table))
        featurized = [cache.featurize(block) for block in blocks[:2]]
        with pytest.raises(ValueError, match="aligned"):
            cache.batch_parameters(spec, featurized,
                                   [spec.sample(np.random.default_rng(0))])


class TestTrainingPaths:
    def test_batched_and_scalar_training_agree(self, adapter, simulated):
        results = {}
        for batched in (False, True):
            surrogate = _build(adapter, "pooled")
            config = SurrogateTrainingConfig(epochs=1, batch_size=16, seed=0,
                                             batched=batched)
            results[batched] = train_surrogate(surrogate, simulated, config)
        assert results[True].used_batched_path
        assert not results[False].used_batched_path
        np.testing.assert_allclose(results[True].epoch_losses,
                                   results[False].epoch_losses, atol=1e-7, rtol=0)
        assert abs(results[True].final_training_error
                   - results[False].final_training_error) < 1e-7

    def test_scalar_path_never_calls_forward_batch(self, adapter, simulated):
        # batched=False must be the full per-example reference — including
        # the final evaluation pass inside train_surrogate.
        surrogate = _build(adapter, "pooled")

        def _boom(*_args, **_kwargs):
            raise AssertionError("forward_batch used on the scalar path")

        surrogate.forward_batch = _boom
        config = SurrogateTrainingConfig(epochs=1, batch_size=16, seed=0,
                                         batched=False)
        result = train_surrogate(surrogate, simulated, config)
        assert not result.used_batched_path
        assert np.isfinite(result.final_training_error)

    def test_batched_flag_falls_back_without_forward_batch(self, adapter, simulated):
        surrogate = _build(adapter, "pooled")
        surrogate.supports_batched_forward = False
        config = SurrogateTrainingConfig(epochs=1, batch_size=16, seed=0, batched=True)
        result = train_surrogate(surrogate, simulated, config)
        assert not result.used_batched_path
        assert np.isfinite(result.final_training_error)

    def test_evaluate_surrogate_batched_matches_per_example(self, adapter, simulated):
        surrogate = _build(adapter, "analytical")
        batched_error = evaluate_surrogate(surrogate, simulated, batch_size=16)
        scalar_error = evaluate_surrogate(surrogate, simulated, batch_size=0)
        assert abs(batched_error - scalar_error) < 1e-9

    def test_throughput_metadata_populated(self, adapter, simulated):
        surrogate = _build(adapter, "pooled")
        config = SurrogateTrainingConfig(epochs=2, batch_size=16, seed=0)
        result = train_surrogate(surrogate, simulated, config)
        assert result.examples_per_second > 0


class TestProgressCallback:
    @staticmethod
    def _run(adapter, simulated, num_examples, batch_size, log_every):
        surrogate = _build(adapter, "pooled")
        calls = []
        config = SurrogateTrainingConfig(epochs=1, batch_size=batch_size, seed=0,
                                         shuffle=False, log_every=log_every)
        train_surrogate(surrogate, simulated[:num_examples], config,
                        progress=lambda epoch, batch, loss: calls.append(
                            (epoch, batch, loss)))
        return calls

    def test_final_partial_batch_triggers_callback(self, adapter, simulated):
        # 13 examples at batch size 4 -> batches 0..3, the last one partial.
        # log_every=3 fires on batches 0 and 3; the regression was that the
        # final partial batch (3) never fired.
        calls = self._run(adapter, simulated, num_examples=13, batch_size=4,
                          log_every=3)
        assert [batch for _epoch, batch, _loss in calls] == [0, 3]

    def test_final_batch_not_double_reported(self, adapter, simulated):
        # 8 examples at batch size 4 -> batches 0 and 1; log_every=1 already
        # fires on every batch, so the final batch appears exactly once.
        calls = self._run(adapter, simulated, num_examples=8, batch_size=4,
                          log_every=1)
        assert [batch for _epoch, batch, _loss in calls] == [0, 1]

    def test_log_every_zero_disables_callbacks(self, adapter, simulated):
        calls = self._run(adapter, simulated, num_examples=8, batch_size=4,
                          log_every=0)
        assert calls == []


class TestThroughputScenario:
    def test_registered_with_ci_tag(self):
        from repro.bench import DEFAULT_REGISTRY

        scenario = DEFAULT_REGISTRY.get("surrogate_training_throughput")
        assert "ci" in scenario.tags and "perf" in scenario.tags
        assert scenario.formatter is not None

    def test_smoke_tier_reports_speedup_and_loss_agreement(self):
        from repro.bench import Runner, RunnerConfig

        runner = Runner(RunnerConfig(tier="smoke"), log=None)
        entry = runner.run_scenario(
            runner.registry.get("surrogate_training_throughput"))
        metrics = entry["metrics"]
        assert set(metrics["paths"]) == {"scalar", "batched"}
        assert metrics["speedup_batched_vs_scalar"] > 1.0
        assert metrics["epoch_loss_max_abs_diff"] < 1e-7
