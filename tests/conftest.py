"""Shared fixtures for the test suite.

Expensive objects (opcode table, small datasets, default tables) are session
scoped so the several hundred tests stay fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bhive import BlockGenerator, build_dataset
from repro.core.adapters import LLVMSimAdapter, MCAAdapter
from repro.isa.opcodes import DEFAULT_OPCODE_TABLE
from repro.isa.parser import parse_block
from repro.targets import HASWELL, build_default_mca_table
from repro.targets.hardware import HardwareModel


@pytest.fixture(scope="session")
def opcode_table():
    return DEFAULT_OPCODE_TABLE


@pytest.fixture(scope="session")
def haswell_default_table():
    return build_default_mca_table(HASWELL)


@pytest.fixture(scope="session")
def haswell_hardware():
    return HardwareModel(HASWELL, seed=0)


@pytest.fixture(scope="session")
def small_dataset():
    """A small Haswell dataset shared by dataset/evaluation/integration tests."""
    return build_dataset("haswell", num_blocks=150, seed=0)


@pytest.fixture(scope="session")
def mca_adapter():
    return MCAAdapter(HASWELL)


@pytest.fixture(scope="session")
def llvm_sim_adapter():
    return LLVMSimAdapter(HASWELL)


@pytest.fixture(scope="session")
def block_generator():
    return BlockGenerator(seed=7)


@pytest.fixture(scope="session")
def sample_blocks(block_generator):
    return block_generator.generate_blocks(30)


@pytest.fixture
def simple_block():
    return parse_block("addq %rax, %rbx\nimulq %rbx, %rcx\nmovq %rcx, 16(%rsp)")


@pytest.fixture
def rng():
    return np.random.default_rng(0)
