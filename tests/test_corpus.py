"""Corpus-scale streaming dataset layer: sharding, resume, bit-identity.

The contracts under test are the tentpole guarantees of :mod:`repro.corpus`:

* building a sharded corpus is bit-identical to the in-memory dataset
  builder, including after a kill/resume at any shard boundary;
* streaming simulated-dataset collection produces byte-identical arrays to
  the in-memory collector, including after a kill/resume at any collection
  checkpoint, and the surrogate trained from either source follows the
  same loss trajectory;
* the featurization store serves the exact per-block arrays the featurizer
  computes, and the featurization cache is content-keyed and bounded.
"""

import json
import os

import numpy as np
import pytest

from repro.bhive.dataset import build_dataset
from repro.bhive.generator import BlockGenerator
from repro.core.simulated_dataset import collect_simulated_dataset
from repro.core.surrogate import (BlockFeaturizer, FeaturizationCache,
                                  build_block_arrays,
                                  featurization_cache_stats,
                                  featurized_block_digest)
from repro.corpus import (CollectionCheckpoint, CorpusError, ShardedCorpus,
                          ShardedFeaturizationStore, StreamingExamples,
                          StreamingSimulatedDataset,
                          collect_simulated_dataset_streaming)
from repro.isa.opcodes import DEFAULT_OPCODE_TABLE
from repro.pipeline.stages import _examples_to_arrays


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    directory = tmp_path_factory.mktemp("corpus") / "haswell"
    return ShardedCorpus.build(str(directory), uarch_name="haswell",
                               num_blocks=120, seed=0, shard_size=32)


@pytest.fixture(scope="module")
def adapter():
    from repro.api.registries import SIMULATORS, TARGETS

    return SIMULATORS.get("mca").create_adapter(TARGETS.get("haswell"),
                                                narrow_sampling=True)


class TestGeneratorStreaming:
    def test_iter_blocks_matches_generate_blocks(self):
        import types

        iterator = BlockGenerator(seed=3).iter_blocks(24)
        assert isinstance(iterator, types.GeneratorType)
        streamed = [block.to_assembly() for block in iterator]
        batch = [block.to_assembly()
                 for block in BlockGenerator(seed=3).generate_blocks(24)]
        assert streamed == batch


class TestShardedCorpus:
    def test_build_matches_in_memory_dataset(self, corpus):
        dataset = build_dataset("haswell", num_blocks=120, seed=0)
        kept = [example.block.to_assembly() for example in dataset.examples]
        timings = np.array([example.timing for example in dataset.examples])
        assert [block.to_assembly() for block in corpus.iter_blocks()] == kept
        np.testing.assert_array_equal(corpus.timings(), timings)

    def test_random_access_matches_iteration(self, corpus):
        streamed = [block.to_assembly() for block in corpus.iter_blocks()]
        assert [corpus[i].to_assembly() for i in range(len(corpus))] == streamed
        assert corpus.timing(5) == float(corpus.timings()[5])

    def test_split_views_partition_the_corpus(self, corpus):
        indices = corpus.split_indices()
        assert sorted(indices) == ["test", "train", "validation"]
        combined = sorted(indices["train"] + indices["validation"]
                          + indices["test"])
        assert combined == list(range(len(corpus)))
        view = corpus.split_view("train")
        assert len(view) == len(indices["train"])
        position = len(view) // 2
        global_index = view.global_index(position)
        assert view[position].to_assembly() == corpus[global_index].to_assembly()
        np.testing.assert_array_equal(view.timings(),
                                      corpus.timings()[indices["train"]])

    def test_build_kill_resume_is_bit_identical(self, corpus, tmp_path):
        class Killed(RuntimeError):
            pass

        interrupted = str(tmp_path / "interrupted")
        boundary = 0
        while True:
            boundary += 1
            flushes = 0

            def kill_at_boundary(done, total):
                nonlocal flushes
                flushes += 1
                if flushes == boundary and done < total:
                    raise Killed()

            try:
                resumed = ShardedCorpus.build(
                    interrupted, uarch_name="haswell", num_blocks=120, seed=0,
                    shard_size=32, resume=boundary > 1,
                    progress=kill_at_boundary)
                break
            except Killed:
                # Interrupted mid-build: the directory must refuse plain
                # opening until the build is finished.
                with pytest.raises(CorpusError, match="incomplete"):
                    ShardedCorpus(interrupted)
        assert resumed.content_fingerprint() == corpus.content_fingerprint()

    def test_resume_rejects_changed_parameters(self, corpus):
        with pytest.raises(CorpusError, match="built with"):
            ShardedCorpus.build(corpus.directory, uarch_name="haswell",
                                num_blocks=120, seed=1, shard_size=32)

    def test_verify_detects_corruption(self, tmp_path):
        directory = str(tmp_path / "tampered")
        corpus = ShardedCorpus.build(directory, uarch_name="haswell",
                                     num_blocks=40, seed=0, shard_size=16)
        assert corpus.verify()["num_blocks"] == len(corpus)
        shard_path = os.path.join(directory, "shards", "shard-00000.json")
        with open(shard_path) as handle:
            payload = json.load(handle)
        payload["entries"][0]["timing"] += 1.0
        with open(shard_path, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
        with pytest.raises(CorpusError, match="corrupted"):
            ShardedCorpus(directory).verify()

    def test_describe_is_json_pure(self, corpus):
        description = corpus.describe()
        json.dumps(description)
        assert description["num_blocks"] == len(corpus)
        assert description["splits"]["train"] > 0


class TestFeaturizationStore:
    def test_store_serves_exact_featurizer_arrays(self, corpus, tmp_path):
        featurizer = BlockFeaturizer(DEFAULT_OPCODE_TABLE)
        store = ShardedFeaturizationStore(
            str(tmp_path / "store"), featurizer).ensure(corpus)
        assert len(store) == len(corpus)
        for index in range(0, len(corpus), 17):
            expected = build_block_arrays(featurizer.featurize(corpus[index]))
            served = store.arrays_for_index(index)
            assert served.keys() == expected.keys()
            for key in expected:
                np.testing.assert_array_equal(served[key], expected[key])
            digest = featurized_block_digest(featurizer.featurize(corpus[index]))
            by_digest = store.arrays_for_digest(digest)
            np.testing.assert_array_equal(by_digest["opcode_indices"],
                                          expected["opcode_indices"])

    def test_ensure_is_idempotent(self, corpus, tmp_path):
        featurizer = BlockFeaturizer(DEFAULT_OPCODE_TABLE)
        directory = str(tmp_path / "store")
        first = ShardedFeaturizationStore(directory, featurizer).ensure(corpus)
        again = ShardedFeaturizationStore(directory, featurizer).ensure(corpus)
        assert len(again) == len(first)


class TestStreamingCollection:
    def test_streaming_matches_in_memory_arrays(self, corpus, adapter):
        streaming = collect_simulated_dataset_streaming(
            adapter, corpus, 48, np.random.default_rng(7), blocks_per_table=8)
        examples = collect_simulated_dataset(
            adapter, list(corpus.iter_blocks()), 48, np.random.default_rng(7),
            blocks_per_table=8)
        expected = _examples_to_arrays(examples)
        produced = streaming.to_arrays()
        assert produced.keys() == expected.keys()
        for key in expected:
            np.testing.assert_array_equal(produced[key], expected[key])

    def test_kill_resume_at_every_checkpoint_boundary(self, corpus, adapter,
                                                      tmp_path):
        checkpoint_every = 16
        num_examples = 48
        reference = collect_simulated_dataset_streaming(
            adapter, corpus, num_examples, np.random.default_rng(7),
            blocks_per_table=8).to_arrays()
        boundaries = range(checkpoint_every, num_examples, checkpoint_every)
        for boundary in boundaries:
            checkpoint = CollectionCheckpoint(
                str(tmp_path / f"checkpoint-{boundary}"))

            class Killed(RuntimeError):
                pass

            # progress fires before the boundary's checkpoint save, so the
            # kill lands one round later — after the save hit the disk.
            def kill_after(done, total, limit=boundary):
                if done > limit:
                    raise Killed()

            with pytest.raises(Killed):
                collect_simulated_dataset_streaming(
                    adapter, corpus, num_examples, np.random.default_rng(7),
                    blocks_per_table=8, checkpoint=checkpoint,
                    checkpoint_every=checkpoint_every, progress=kill_after)
            # Resume with a fresh rng: the checkpoint restores the stream.
            resumed = collect_simulated_dataset_streaming(
                adapter, corpus, num_examples, np.random.default_rng(99),
                blocks_per_table=8, checkpoint=checkpoint,
                checkpoint_every=checkpoint_every).to_arrays()
            for key in reference:
                np.testing.assert_array_equal(resumed[key], reference[key])

    def test_checkpoint_rejects_mismatched_target(self, corpus, adapter,
                                                  tmp_path):
        checkpoint = CollectionCheckpoint(str(tmp_path / "checkpoint"))
        dataset = collect_simulated_dataset_streaming(
            adapter, corpus, 32, np.random.default_rng(7), blocks_per_table=8)
        checkpoint.save(dataset, np.random.default_rng(7), 64)
        with pytest.raises(ValueError, match="targets 64"):
            collect_simulated_dataset_streaming(
                adapter, corpus, 32, np.random.default_rng(7),
                blocks_per_table=8, checkpoint=checkpoint)

    def test_dataset_roundtrips_through_arrays(self, corpus, adapter):
        dataset = collect_simulated_dataset_streaming(
            adapter, corpus, 32, np.random.default_rng(7), blocks_per_table=8)
        rebuilt = StreamingSimulatedDataset.from_arrays(dataset.to_arrays())
        assert len(rebuilt) == len(dataset)
        for key, value in dataset.to_arrays().items():
            np.testing.assert_array_equal(rebuilt.to_arrays()[key], value)


class TestStreamingTraining:
    def test_streaming_losses_match_in_memory(self, corpus, adapter, tmp_path):
        from repro.core import SurrogateConfig, build_surrogate
        from repro.core.surrogate_training import (SurrogateTrainingConfig,
                                                   train_surrogate)

        num_examples = 48
        dataset = collect_simulated_dataset_streaming(
            adapter, corpus, num_examples, np.random.default_rng(7),
            blocks_per_table=8)
        examples = collect_simulated_dataset(
            adapter, list(corpus.iter_blocks()), num_examples,
            np.random.default_rng(7), blocks_per_table=8)
        featurizer = BlockFeaturizer(adapter.opcode_table)
        store = ShardedFeaturizationStore(
            str(tmp_path / "store"), featurizer).ensure(corpus)
        spec = adapter.parameter_spec()
        config = SurrogateTrainingConfig(epochs=2, batch_size=16, seed=0,
                                         batched=True)
        outcomes = {}
        for label, source in (
                ("in_memory", examples),
                ("streaming", StreamingExamples(
                    dataset, corpus, FeaturizationCache(featurizer))),
                ("streaming_store", StreamingExamples(
                    dataset, corpus, FeaturizationCache(featurizer),
                    store=store))):
            surrogate = build_surrogate(spec, featurizer,
                                        SurrogateConfig(kind="pooled", seed=0))
            outcomes[label] = train_surrogate(surrogate, source, config)
        for label in ("streaming", "streaming_store"):
            assert outcomes[label].epoch_losses == \
                outcomes["in_memory"].epoch_losses
            assert outcomes[label].final_training_error == \
                outcomes["in_memory"].final_training_error


class TestPipelineResume:
    def test_corpus_backed_learn_resumes_bit_identically(self, corpus,
                                                         tmp_path):
        from repro.api.registries import PRESETS, SIMULATORS, TARGETS
        from repro.core.difftune import DiffTune

        def make_difftune():
            adapter = SIMULATORS.get("mca").create_adapter(
                TARGETS.get("haswell"), narrow_sampling=True)
            return DiffTune(adapter, PRESETS.get("test")(0))

        train = corpus.split_view("train")
        timings = train.timings()
        full = make_difftune().learn(train, timings)
        checkpoint_dir = str(tmp_path / "checkpoints")
        stopped = make_difftune().learn(train, timings,
                                        checkpoint_dir=checkpoint_dir,
                                        stop_after="collect_dataset")
        assert stopped is None
        resumed = make_difftune().learn(train, timings,
                                        checkpoint_dir=checkpoint_dir,
                                        resume=True)
        assert "collect_dataset" in resumed.resumed_stages
        np.testing.assert_array_equal(
            full.learned_arrays.per_instruction_values,
            resumed.learned_arrays.per_instruction_values)
        np.testing.assert_array_equal(full.learned_arrays.global_values,
                                      resumed.learned_arrays.global_values)
        assert full.train_error == resumed.train_error


class TestFeaturizationCacheContract:
    def test_content_keys_hit_across_distinct_objects(self):
        generator = BlockGenerator(seed=5)
        block = generator.generate_block()
        twin = BlockGenerator(seed=5).generate_block()
        assert block is not twin
        cache = FeaturizationCache(BlockFeaturizer(DEFAULT_OPCODE_TABLE))
        before = featurization_cache_stats()
        first = cache.arrays_for(cache.featurize(block))
        second = cache.arrays_for(cache.featurize(twin))
        after = featurization_cache_stats()
        assert second is first  # digest-keyed, not id()-keyed
        assert after["block_misses"] == before["block_misses"] + 1
        assert after["block_hits"] == before["block_hits"] + 1

    def test_lru_bound_evicts_oldest(self):
        cache = FeaturizationCache(BlockFeaturizer(DEFAULT_OPCODE_TABLE),
                                   max_blocks=2)
        generator = BlockGenerator(seed=6)
        featurized = [cache.featurize(generator.generate_block())
                      for _ in range(3)]
        before = featurization_cache_stats()
        for item in featurized:
            cache.arrays_for(item)
        after = featurization_cache_stats()
        assert len(cache._block_arrays) <= 2
        assert after["block_evictions"] > before["block_evictions"]

    def test_session_stats_exposes_featurization_counters(self):
        from repro.api import Session

        stats = Session.from_spec({"target": "haswell",
                                   "simulator": "mca"}).stats()
        for key in ("block_hits", "block_misses", "block_evictions",
                    "table_hits", "table_misses", "table_evictions"):
            assert key in stats["featurization"]


class TestCorpusSpecAndSession:
    def test_corpus_spec_validation(self):
        from repro.api import CorpusSpec, SpecValidationError

        CorpusSpec(directory="/tmp/somewhere").validate()
        with pytest.raises(SpecValidationError, match="directory"):
            CorpusSpec(directory="").validate()
        with pytest.raises(SpecValidationError, match="num_blocks"):
            CorpusSpec(directory="x", num_blocks=0).validate()

    def test_tune_spec_corpus_path_is_exclusive_with_dataset_path(self):
        from repro.api import SpecValidationError, TuneSpec

        with pytest.raises(SpecValidationError, match="corpus_path"):
            TuneSpec(target="haswell", corpus_path="a",
                     dataset_path="b").validate()

    def test_evaluate_spec_validation_split_requires_corpus(self):
        from repro.api import EvaluateSpec, SpecValidationError

        EvaluateSpec(target="haswell", corpus_path="a",
                     split="validation").validate()
        with pytest.raises(SpecValidationError, match="split"):
            EvaluateSpec(target="haswell", split="validation").validate()

    def test_session_builds_and_splits_corpus(self, tmp_path):
        from repro.api import CorpusSpec, Session, TuneSpec

        directory = str(tmp_path / "corpus")
        built = Session.from_spec(CorpusSpec(
            target="haswell", directory=directory, num_blocks=60,
            shard_size=16, seed=0)).build_corpus()
        assert len(built) > 0
        session = Session.from_spec(TuneSpec(target="haswell",
                                             corpus_path=directory))
        blocks, timings = session.split("validation")
        assert len(blocks) == len(timings) > 0
        assert session.corpus().content_fingerprint() == \
            built.content_fingerprint()

    def test_session_rejects_mismatched_corpus_target(self, tmp_path):
        from repro.api import Session, SpecValidationError, TuneSpec

        directory = str(tmp_path / "corpus")
        ShardedCorpus.build(directory, uarch_name="skylake", num_blocks=40,
                            seed=0, shard_size=16)
        session = Session.from_spec(TuneSpec(target="haswell",
                                             corpus_path=directory))
        with pytest.raises(SpecValidationError, match="corpus_path"):
            session.corpus()


class TestCorpusCLI:
    def test_build_then_stat_verifies(self, tmp_path, capsys):
        from repro import cli

        directory = str(tmp_path / "corpus")
        cli.main(["corpus", "build", "--uarch", "haswell", "--directory",
                  directory, "--blocks", "60", "--shard-size", "16"])
        capsys.readouterr()
        cli.main(["corpus", "stat", directory, "--verify"])
        output = capsys.readouterr().out
        payload = json.loads(output[output.index("{"):])
        assert payload["num_blocks"] == len(ShardedCorpus(directory))

    def test_stat_reports_manifest_summary(self, tmp_path, capsys):
        from repro import cli

        directory = str(tmp_path / "corpus")
        ShardedCorpus.build(directory, uarch_name="haswell", num_blocks=60,
                            seed=0, shard_size=16)
        cli.main(["corpus", "stat", directory])
        output = capsys.readouterr().out
        payload = json.loads(output[output.index("{"):])
        assert payload["uarch"] == "Haswell"
        assert payload["num_shards"] == 4


class TestBenchSchemaCompat:
    def test_peak_rss_helper_returns_bytes(self):
        from repro.bench.runner import peak_rss_bytes

        value = peak_rss_bytes()
        assert value is None or value > 1024 * 1024

    def test_old_payloads_without_minor_fields_still_validate(self):
        from repro.bench.schema import collect_problems

        payload = {
            "schema_version": 1, "suite": "smoke", "tier": "smoke",
            "workers": 0,
            "environment": {"python": "3", "platform": "p", "numpy": "1",
                            "cpu_count": 1},
            "scenarios": {"s": {
                "name": "s", "description": "", "tier": "smoke", "seed": 0,
                "workers": 0, "uarches": None, "scale": {}, "rounds": 1,
                "warmup": 0,
                "wall_time_seconds": {"rounds": [1.0], "min": 1.0,
                                      "mean": 1.0},
                "metrics": {}}},
            "total_wall_time_seconds": 1.0,
        }
        assert collect_problems(payload) == []
