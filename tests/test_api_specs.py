"""Tests for the typed spec objects (repro.api.specs)."""

import pytest

from repro.api.specs import (EvaluateSpec, PredictSpec, SpecValidationError,
                             TuneSpec)


class TestRoundTrip:
    def test_tune_spec_round_trips(self):
        spec = TuneSpec(target="skylake", simulator="mca", preset="test",
                        num_blocks=123, seed=7, learn_fields=["WriteLatency"],
                        batch_training=False)
        assert TuneSpec.from_dict(spec.to_dict()) == spec

    def test_llvm_sim_spec_round_trips(self):
        spec = TuneSpec(simulator="llvm_sim", preset="test", num_blocks=50)
        assert TuneSpec.from_dict(spec.to_dict()) == spec

    def test_learn_fields_requires_partial_learning_support(self):
        with pytest.raises(SpecValidationError,
                           match="learn_fields.*does not support.*mca") as excinfo:
            TuneSpec(simulator="llvm_sim", learn_fields=["WriteLatency"]).validate()
        assert excinfo.value.field == "learn_fields"

    def test_evaluate_spec_round_trips(self):
        spec = EvaluateSpec(target="zen2", dataset_path="x.json",
                            table_path="t.json", split="train")
        assert EvaluateSpec.from_dict(spec.to_dict()) == spec

    def test_predict_spec_round_trips(self):
        spec = PredictSpec(target="ivybridge", engine_workers=2)
        assert PredictSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_is_json_serializable(self):
        import json

        payload = json.dumps(TuneSpec().to_dict())
        assert TuneSpec.from_dict(json.loads(payload)) == TuneSpec()


class TestValidationNamesTheField:
    def test_unknown_field_named_and_suggested(self):
        with pytest.raises(SpecValidationError, match="num_block.*did you mean "
                                                      "'num_blocks'") as excinfo:
            TuneSpec.from_dict({"num_block": 10})
        assert excinfo.value.field == "num_block"

    def test_unknown_target_names_field_and_suggests(self):
        with pytest.raises(SpecValidationError, match="target.*did you mean "
                                                      "'haswell'") as excinfo:
            TuneSpec(target="hasswell").validate()
        assert excinfo.value.field == "target"

    def test_unknown_simulator(self):
        with pytest.raises(SpecValidationError, match="simulator") as excinfo:
            TuneSpec(simulator="gem5").validate()
        assert excinfo.value.field == "simulator"

    def test_unknown_preset(self):
        with pytest.raises(SpecValidationError, match="preset"):
            TuneSpec(preset="huge").validate()

    def test_unknown_surrogate_override(self):
        with pytest.raises(SpecValidationError, match="surrogate"):
            TuneSpec(surrogate="transformer").validate()

    def test_bad_num_blocks(self):
        with pytest.raises(SpecValidationError, match="num_blocks.*>= 1"):
            TuneSpec(num_blocks=0).validate()
        with pytest.raises(SpecValidationError, match="num_blocks"):
            TuneSpec(num_blocks="many").validate()

    def test_bool_is_not_an_int(self):
        with pytest.raises(SpecValidationError, match="num_blocks.*bool"):
            TuneSpec(num_blocks=True).validate()

    def test_bad_learn_fields(self):
        with pytest.raises(SpecValidationError, match="learn_fields"):
            TuneSpec(learn_fields="WriteLatency").validate()

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(SpecValidationError, match="resume.*checkpoint_dir"):
            TuneSpec(resume=True).validate()
        TuneSpec(resume=True, checkpoint_dir="runs").validate()

    def test_stop_after_requires_checkpoint_dir(self):
        with pytest.raises(SpecValidationError, match="stop_after"):
            TuneSpec(stop_after="train_surrogate").validate()

    def test_bad_split(self):
        with pytest.raises(SpecValidationError, match="split.*'train' or 'test'"):
            EvaluateSpec(split="validation").validate()

    def test_non_dict_payload(self):
        with pytest.raises(SpecValidationError, match="expected a dict"):
            TuneSpec.from_dict(["target", "haswell"])

    def test_aliases_are_accepted_as_keys(self):
        # Registry aliases validate: specs hold what the user wrote.
        TuneSpec(target="hsw", simulator="llvm-mca").validate()
