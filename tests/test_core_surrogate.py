"""Tests for the surrogate models, featurizer, and the two training phases."""

import numpy as np
import pytest

from repro.core.adapters import MCAAdapter
from repro.core.losses import mape_loss_value, surrogate_loss
from repro.core.simulated_dataset import collect_simulated_dataset
from repro.core.surrogate import (BlockFeaturizer, SurrogateConfig,
                                  build_surrogate)
from repro.core.simulated_dataset import random_table_errors
from repro.core.surrogate import (AnalyticalSurrogate, IthemalSurrogate, PooledSurrogate,
                                  NUM_STRUCTURAL_FEATURES)
from repro.core.surrogate_training import (SurrogateTrainingConfig, evaluate_surrogate,
                                           train_surrogate)
from repro.core.table_optimization import (TableOptimizationConfig, _TrainableTable,
                                           optimize_parameter_table)
from repro.autodiff.tensor import Tensor
from repro.isa.parser import parse_block
from repro.targets import HASWELL


@pytest.fixture(scope="module")
def adapter():
    return MCAAdapter(HASWELL, narrow_sampling=True)


@pytest.fixture(scope="module")
def featurizer(adapter):
    return BlockFeaturizer(adapter.opcode_table)


@pytest.fixture(scope="module")
def tiny_config():
    return SurrogateConfig(kind="analytical", embedding_size=8, hidden_size=12, seed=0)


def make_inputs(adapter, featurizer, block, rng):
    spec = adapter.parameter_spec()
    arrays = spec.normalize_for_surrogate_training(spec.sample(rng))
    featurized = featurizer.featurize(block)
    rows = arrays.per_instruction_values[list(featurized.opcode_indices)]
    return featurized, rows, arrays.global_values


class TestFeaturizer:
    def test_featurized_fields(self, featurizer, simple_block):
        featurized = featurizer.featurize(simple_block)
        assert len(featurized.token_ids) == len(simple_block)
        assert len(featurized.opcode_indices) == len(simple_block)
        assert len(featurized.structural_features) == len(simple_block)
        assert all(len(features) == NUM_STRUCTURAL_FEATURES
                   for features in featurized.structural_features)

    def test_dependency_producers(self, featurizer):
        block = parse_block("addq %rax, %rbx\naddq %rbx, %rcx")
        featurized = featurizer.featurize(block)
        assert featurized.dependency_producers[1] == (0,)
        assert featurized.dependency_producers[0] == ()

    def test_loop_carried_writers(self, featurizer):
        block = parse_block("addq %rax, %rbx\naddq %rbx, %rax")
        featurized = featurizer.featurize(block)
        assert featurized.loop_carried_writers  # both registers are loop carried

    def test_caching_returns_same_object(self, featurizer, simple_block):
        assert featurizer.featurize(simple_block) is featurizer.featurize(simple_block)

    def test_structural_feature_ranges(self, featurizer, sample_blocks):
        for block in sample_blocks[:10]:
            featurized = featurizer.featurize(block)
            values = np.array(featurized.structural_features)
            assert values.min() >= 0.0 and values.max() <= 1.0


class TestSurrogateVariants:
    @pytest.mark.parametrize("kind", ["pooled", "analytical", "ithemal"])
    def test_forward_produces_positive_scalar(self, adapter, featurizer, kind, rng):
        config = SurrogateConfig(kind=kind, embedding_size=8, hidden_size=10,
                                 num_lstm_layers=1, seed=0)
        surrogate = build_surrogate(adapter.parameter_spec(), featurizer, config)
        block = parse_block("addq %rax, %rbx\nmovq 8(%rsp), %rcx")
        featurized, rows, global_values = make_inputs(adapter, featurizer, block, rng)
        prediction = surrogate.forward(featurized, rows, global_values)
        assert prediction.size == 1
        assert float(prediction.data) > 0

    def test_factory_kinds(self, adapter, featurizer):
        spec = adapter.parameter_spec()
        assert isinstance(build_surrogate(spec, featurizer, SurrogateConfig(kind="pooled")),
                          PooledSurrogate)
        assert isinstance(build_surrogate(spec, featurizer, SurrogateConfig(kind="analytical")),
                          AnalyticalSurrogate)
        assert isinstance(build_surrogate(spec, featurizer,
                                          SurrogateConfig(kind="ithemal", num_lstm_layers=1)),
                          IthemalSurrogate)

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            SurrogateConfig(kind="transformer")

    def test_analytical_latency_sensitivity(self, adapter, featurizer, tiny_config, rng):
        """Raising the WriteLatency of a chained opcode must raise the prediction."""
        surrogate = build_surrogate(adapter.parameter_spec(), featurizer, tiny_config)
        spec = adapter.parameter_spec()
        block = parse_block("imulq %rcx, %rdx\nimulq %rdx, %rcx")
        featurized, rows, global_values = make_inputs(adapter, featurizer, block, rng)
        low = rows.copy()
        high = rows.copy()
        latency_slice = spec.per_instruction_field_slice("WriteLatency")
        low[:, latency_slice] = 0.0
        high[:, latency_slice] = 1.0
        low_prediction = surrogate.forward(featurized, low, global_values)
        high_prediction = surrogate.forward(featurized, high, global_values)
        assert float(high_prediction.data) > float(low_prediction.data)

    def test_analytical_dispatch_sensitivity(self, adapter, featurizer, tiny_config, rng):
        """A wider dispatch width must not increase the predicted timing."""
        surrogate = build_surrogate(adapter.parameter_spec(), featurizer, tiny_config)
        spec = adapter.parameter_spec()
        block = parse_block("\n".join(f"addq %rax, %r{8 + i}" for i in range(6)))
        featurized, rows, global_values = make_inputs(adapter, featurizer, block, rng)
        uops_slice = spec.per_instruction_field_slice("NumMicroOps")
        rows = rows.copy()
        rows[:, uops_slice] = 1.0
        narrow = global_values.copy()
        wide = global_values.copy()
        dispatch_slice = spec.global_field_slice("DispatchWidth")
        narrow[dispatch_slice] = 0.0
        wide[dispatch_slice] = 1.0
        assert float(surrogate.forward(featurized, rows, narrow).data) >= \
            float(surrogate.forward(featurized, rows, wide).data)

    def test_gradients_reach_parameter_inputs(self, adapter, featurizer, tiny_config, rng):
        surrogate = build_surrogate(adapter.parameter_spec(), featurizer, tiny_config)
        block = parse_block("imulq %rcx, %rdx\nimulq %rdx, %rcx")
        featurized, rows, global_values = make_inputs(adapter, featurizer, block, rng)
        rows_tensor = Tensor(rows, requires_grad=True)
        globals_tensor = Tensor(global_values, requires_grad=True)
        prediction = surrogate.forward(featurized, rows_tensor, globals_tensor)
        prediction.backward(np.ones_like(prediction.data))
        assert rows_tensor.grad is not None
        assert np.abs(rows_tensor.grad).sum() > 0

    def test_predict_value_no_grad(self, adapter, featurizer, tiny_config, rng):
        surrogate = build_surrogate(adapter.parameter_spec(), featurizer, tiny_config)
        block = parse_block("addq %rax, %rbx")
        _featurized, rows, global_values = make_inputs(adapter, featurizer, block, rng)
        value = surrogate.predict_value(block, rows, global_values)
        assert isinstance(value, float) and value > 0


class TestSimulatedDataset:
    def test_collection_size_and_fields(self, adapter, sample_blocks, rng):
        examples = collect_simulated_dataset(adapter, sample_blocks[:10], 24, rng,
                                             blocks_per_table=6)
        assert len(examples) == 24
        for example in examples[:5]:
            assert example.simulated_timing > 0
            assert 0 <= example.block_index < 10

    def test_collection_validation(self, adapter, sample_blocks, rng):
        with pytest.raises(ValueError):
            collect_simulated_dataset(adapter, [], 10, rng)
        with pytest.raises(ValueError):
            collect_simulated_dataset(adapter, sample_blocks[:2], 0, rng)

    def test_custom_table_sampler(self, adapter, sample_blocks, rng):
        spec = adapter.parameter_spec()
        fixed = spec.sample(np.random.default_rng(123))
        examples = collect_simulated_dataset(adapter, sample_blocks[:5], 8, rng,
                                             blocks_per_table=4,
                                             table_sampler=lambda generator: fixed)
        assert all(example.arrays is fixed for example in examples)

    def test_random_table_errors_much_worse_than_default(self, adapter, small_dataset, rng):
        examples = small_dataset.test_examples[:40]
        blocks = [example.block for example in examples]
        timings = np.array([example.timing for example in examples])
        errors = random_table_errors(adapter, blocks, timings, num_tables=3, rng=rng)
        default_error = mape_loss_value(
            adapter.predict_timings(adapter.default_arrays(), blocks), timings)
        assert errors.mean() > default_error * 1.5


class TestLosses:
    def test_mape_loss_value(self):
        assert mape_loss_value(np.array([2.0]), np.array([1.0])) == pytest.approx(1.0)

    def test_surrogate_loss_matches_numpy(self):
        predictions = [Tensor(np.array(2.0)), Tensor(np.array(3.0))]
        loss = surrogate_loss(predictions, [1.0, 6.0])
        assert loss.item() == pytest.approx((1.0 + 0.5) / 2)

    def test_surrogate_loss_validation(self):
        with pytest.raises(ValueError):
            surrogate_loss([], [])
        with pytest.raises(ValueError):
            surrogate_loss([Tensor(np.array(1.0))], [1.0, 2.0])


class TestSurrogateTraining:
    def test_training_reduces_loss(self, adapter, featurizer, sample_blocks, rng):
        examples = collect_simulated_dataset(adapter, sample_blocks[:12], 48, rng,
                                             blocks_per_table=8)
        surrogate = build_surrogate(adapter.parameter_spec(), featurizer,
                                    SurrogateConfig(kind="analytical", embedding_size=8,
                                                    hidden_size=12, seed=1))
        config = SurrogateTrainingConfig(learning_rate=0.01, batch_size=8, epochs=3, seed=0)
        result = train_surrogate(surrogate, examples, config)
        assert len(result.epoch_losses) == 3
        assert result.epoch_losses[-1] < result.epoch_losses[0]
        assert result.final_training_error == pytest.approx(
            evaluate_surrogate(surrogate, examples), abs=1e-9)

    def test_training_empty_dataset(self, adapter, featurizer):
        surrogate = build_surrogate(adapter.parameter_spec(), featurizer,
                                    SurrogateConfig(kind="analytical"))
        with pytest.raises(ValueError):
            train_surrogate(surrogate, [], SurrogateTrainingConfig())


class TestTableOptimization:
    def test_trainable_table_roundtrip(self, adapter, rng):
        spec = adapter.parameter_spec()
        initial = spec.sample(rng)
        table = _TrainableTable(spec, initial)
        restored = table.to_parameter_arrays()
        np.testing.assert_allclose(restored.per_instruction_values,
                                   initial.per_instruction_values, atol=1e-9)
        np.testing.assert_allclose(restored.global_values, initial.global_values, atol=1e-9)

    def test_optimization_reduces_surrogate_loss(self, adapter, featurizer, sample_blocks, rng):
        examples = collect_simulated_dataset(adapter, sample_blocks[:12], 48, rng,
                                             blocks_per_table=8)
        surrogate = build_surrogate(adapter.parameter_spec(), featurizer,
                                    SurrogateConfig(kind="analytical", embedding_size=8,
                                                    hidden_size=12, seed=2))
        train_surrogate(surrogate, examples,
                        SurrogateTrainingConfig(learning_rate=0.01, batch_size=8, epochs=2))
        blocks = sample_blocks[:12]
        timings = np.full(len(blocks), 1.5)
        result = optimize_parameter_table(
            surrogate, blocks, timings,
            TableOptimizationConfig(learning_rate=0.05, batch_size=6, epochs=4, seed=0))
        assert result.epoch_losses[-1] < result.epoch_losses[0]
        extracted = result.learned_arrays
        assert extracted.per_instruction_values.min() >= 0

    def test_frozen_mask_respected(self, adapter, featurizer, sample_blocks, rng):
        spec = adapter.parameter_spec()
        surrogate = build_surrogate(spec, featurizer,
                                    SurrogateConfig(kind="analytical", embedding_size=8,
                                                    hidden_size=12, seed=3))
        blocks = sample_blocks[:8]
        timings = np.full(len(blocks), 1.0)
        initial = spec.sample(rng)
        per_mask = np.ones(spec.per_instruction_dim, dtype=bool)
        latency_slice = spec.per_instruction_field_slice("WriteLatency")
        per_mask[latency_slice] = False  # only WriteLatency is learnable
        global_mask = np.ones(spec.global_dim, dtype=bool)
        result = optimize_parameter_table(
            surrogate, blocks, timings,
            TableOptimizationConfig(learning_rate=0.1, batch_size=4, epochs=2, seed=0),
            initial_arrays=initial,
            frozen_per_instruction_mask=per_mask,
            frozen_global_mask=global_mask)
        uops_slice = spec.per_instruction_field_slice("NumMicroOps")
        np.testing.assert_allclose(
            result.learned_arrays.per_instruction_values[:, uops_slice],
            initial.per_instruction_values[:, uops_slice], atol=1e-9)
        np.testing.assert_allclose(result.learned_arrays.global_values,
                                   initial.global_values, atol=1e-9)

    def test_validation_errors(self, adapter, featurizer):
        surrogate = build_surrogate(adapter.parameter_spec(), featurizer,
                                    SurrogateConfig(kind="analytical"))
        with pytest.raises(ValueError):
            optimize_parameter_table(surrogate, [], np.zeros(0), TableOptimizationConfig())
