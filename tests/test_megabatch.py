"""Property tests pinning the megabatch kernels to the scalar simulators.

The megabatch paths (``predict_timing_batch``, the engine's gathered-miss
execution, the chunked parallel fan-out) are pure reimplementations of the
per-block scalar kernels in int64 cycle arithmetic, so their timings must be
*bit-identical* — not merely close — for every table and every block.  These
tests sweep randomly sampled parameter tables and randomly generated block
corpora for both simulators and assert exact equality, plus the edge cases
the kernels special-case: ragged batches, duplicate and empty batches,
single-instruction blocks, shrunken iteration windows, tiny reorder buffers
(the in-kernel ROB slow path), skinny chunks (scalar fallback), and
cache-hit/miss interleavings through the engine.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bhive.generator import BlockGenerator
from repro.core.adapters import LLVMSimAdapter, MCAAdapter
from repro.engine import (MIN_LOCKSTEP_BLOCKS, BlockCompiler, llvm_sim_engine,
                          mca_engine, pack_corpus, shrink_iteration_counts)
from repro.isa.basic_block import BasicBlock
from repro.llvm_mca.megabatch import simulate_packed_mca
from repro.llvm_mca.simulator import MCASimulator
from repro.llvm_sim.megabatch import simulate_packed_llvm_sim
from repro.llvm_sim.simulator import LLVMSimSimulator
from repro.targets import HASWELL


@pytest.fixture(scope="module")
def mca_adapter():
    return MCAAdapter(HASWELL)


@pytest.fixture(scope="module")
def sim_adapter():
    return LLVMSimAdapter(HASWELL)


@pytest.fixture(scope="module")
def corpus_blocks():
    return BlockGenerator(seed=7).generate_blocks(48)


def _sampled_table(adapter, seed):
    spec = adapter.parameter_spec()
    return adapter.table_from_arrays(spec.sample(np.random.default_rng(seed)))


def _scalar_timings(simulator, blocks):
    return np.array([simulator.predict_timing(block) for block in blocks],
                    dtype=np.float64)


# ----------------------------------------------------------------------
# Random tables x random blocks, both simulators (the core property)
# ----------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_mca_megabatch_matches_scalar_random_tables(mca_adapter, corpus_blocks,
                                                    seed):
    simulator = MCASimulator(_sampled_table(mca_adapter, seed))
    batched = simulator.predict_timing_batch(corpus_blocks)
    assert np.array_equal(batched, _scalar_timings(simulator, corpus_blocks))


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_llvm_sim_megabatch_matches_scalar_random_tables(sim_adapter,
                                                         corpus_blocks, seed):
    simulator = LLVMSimSimulator(_sampled_table(sim_adapter, seed))
    batched = simulator.predict_timing_batch(corpus_blocks)
    assert np.array_equal(batched, _scalar_timings(simulator, corpus_blocks))


@settings(max_examples=6, deadline=None)
@given(block_seed=st.integers(min_value=0, max_value=10_000))
def test_megabatch_matches_scalar_random_blocks(mca_adapter, sim_adapter,
                                                block_seed):
    blocks = BlockGenerator(seed=block_seed).generate_blocks(24)
    for simulator in (MCASimulator(mca_adapter.default_table()),
                      LLVMSimSimulator(sim_adapter.default_table())):
        batched = simulator.predict_timing_batch(blocks)
        assert np.array_equal(batched, _scalar_timings(simulator, blocks))


# ----------------------------------------------------------------------
# Edge-case batches
# ----------------------------------------------------------------------
def test_empty_batch(mca_adapter, sim_adapter):
    for simulator in (MCASimulator(mca_adapter.default_table()),
                      LLVMSimSimulator(sim_adapter.default_table())):
        result = simulator.predict_timing_batch([])
        assert result.shape == (0,)


def test_ragged_batch_with_duplicates_and_singletons(mca_adapter, sim_adapter,
                                                     corpus_blocks):
    # Mixed lengths (ragged), repeated blocks, and single-instruction blocks
    # in one batch; input order must be preserved by the scatter.
    singletons = [BasicBlock(instructions=(block.instructions[0],))
                  for block in corpus_blocks[:4]]
    ragged = list(corpus_blocks) + singletons + list(corpus_blocks[:8])
    for simulator in (MCASimulator(mca_adapter.default_table()),
                      LLVMSimSimulator(sim_adapter.default_table())):
        batched = simulator.predict_timing_batch(ragged)
        assert np.array_equal(batched, _scalar_timings(simulator, ragged))


def test_shrunken_iteration_windows(mca_adapter, sim_adapter, corpus_blocks):
    # A small dynamic-instruction cap forces the per-block window shrinking
    # (first measure, then warmup) that shrink_iteration_counts vectorizes.
    for simulator in (
            MCASimulator(mca_adapter.default_table(),
                         max_dynamic_instructions=48),
            LLVMSimSimulator(sim_adapter.default_table(),
                             max_dynamic_instructions=48)):
        batched = simulator.predict_timing_batch(corpus_blocks)
        assert np.array_equal(batched, _scalar_timings(simulator, corpus_blocks))


def test_shrink_iteration_counts_matches_scalar(mca_adapter, corpus_blocks):
    simulator = MCASimulator(mca_adapter.default_table(),
                             max_dynamic_instructions=96)
    lengths = np.array([len(block) for block in corpus_blocks], dtype=np.int64)
    warmup, measure = shrink_iteration_counts(
        lengths, simulator.warmup_iterations, simulator.measure_iterations,
        simulator.max_dynamic_instructions)
    for index, block in enumerate(corpus_blocks):
        expected = simulator._iteration_counts(len(block))
        assert (int(warmup[index]), int(measure[index])) == expected


def test_tiny_reorder_buffer_slow_path(mca_adapter, corpus_blocks):
    # A tiny ROB makes nearly every lane hit the in-kernel deferred-drain
    # bisection; the cycle walk must still match ReorderBuffer exactly.
    table = mca_adapter.default_table().copy()
    table.reorder_buffer_size = 3
    simulator = MCASimulator(table)
    batched = simulator.predict_timing_batch(corpus_blocks)
    assert np.array_equal(batched, _scalar_timings(simulator, corpus_blocks))


def test_chunking_is_invisible(mca_adapter, corpus_blocks):
    # Chunk membership must never change a block's timing, only throughput.
    simulator = MCASimulator(mca_adapter.default_table())
    reference = simulator.predict_timing_batch(corpus_blocks)
    for chunk_size in (1, 3, 7, len(corpus_blocks)):
        chunked = simulator.predict_timing_batch(corpus_blocks,
                                                 chunk_size=chunk_size)
        assert np.array_equal(chunked, reference)


def test_scalar_fallback_for_skinny_batches(mca_adapter, corpus_blocks):
    # Fewer blocks than MIN_LOCKSTEP_BLOCKS takes the per-block fallback
    # inside megabatch_timings — same bits by construction, verified anyway.
    skinny = list(corpus_blocks[:MIN_LOCKSTEP_BLOCKS - 1])
    simulator = MCASimulator(mca_adapter.default_table())
    batched = simulator.predict_timing_batch(skinny)
    assert np.array_equal(batched, _scalar_timings(simulator, skinny))


def test_precompiled_argument_matches(mca_adapter, sim_adapter, corpus_blocks):
    # The engine's fast path hands precompiled blocks to the batch kernel.
    for simulator in (MCASimulator(mca_adapter.default_table()),
                      LLVMSimSimulator(sim_adapter.default_table())):
        compiled = [simulator.compiler.compile(block)
                    for block in corpus_blocks]
        batched = simulator.predict_timing_batch(corpus_blocks,
                                                 compiled=compiled)
        assert np.array_equal(batched,
                              simulator.predict_timing_batch(corpus_blocks))


def test_packed_kernels_accept_arbitrary_lane_order(mca_adapter, sim_adapter,
                                                    corpus_blocks):
    # The kernels lexsort lanes internally; calling them directly with a
    # shuffled corpus must scatter results back into input order.
    rng = np.random.default_rng(11)
    shuffled = [corpus_blocks[i]
                for i in rng.permutation(len(corpus_blocks))]
    mca_table = mca_adapter.default_table()
    compiler = BlockCompiler(mca_table.opcode_table)
    compiled = [compiler.compile(block) for block in shuffled]
    lengths = np.array([block.length for block in compiled], dtype=np.int64)
    warmup, measure = shrink_iteration_counts(lengths, 4, 8, 2048)
    corpus = pack_corpus(compiled)

    mca_ref = _scalar_timings(MCASimulator(mca_table), shuffled)
    assert np.array_equal(
        simulate_packed_mca(mca_table, corpus, warmup, measure), mca_ref)

    sim_table = sim_adapter.default_table()
    sim_compiler = BlockCompiler(sim_table.opcode_table)
    sim_compiled = [sim_compiler.compile(block) for block in shuffled]
    sim_corpus = pack_corpus(sim_compiled)
    sim_ref = _scalar_timings(LLVMSimSimulator(sim_table), shuffled)
    assert np.array_equal(
        simulate_packed_llvm_sim(sim_table, sim_corpus, 4, 3, warmup, measure),
        sim_ref)


def test_predict_many_equals_per_block_loop(mca_adapter, sim_adapter,
                                            corpus_blocks):
    for simulator in (MCASimulator(mca_adapter.default_table()),
                      LLVMSimSimulator(sim_adapter.default_table())):
        assert np.array_equal(simulator.predict_many(corpus_blocks),
                              _scalar_timings(simulator, corpus_blocks))


# ----------------------------------------------------------------------
# Engine integration: megabatch on/off, cache interleavings, parallel
# ----------------------------------------------------------------------
@pytest.mark.parametrize("factory,adapter_fixture",
                         [(mca_engine, "mca_adapter"),
                          (llvm_sim_engine, "sim_adapter")])
def test_engine_megabatch_matches_scalar_engine(factory, adapter_fixture,
                                                corpus_blocks, request):
    adapter = request.getfixturevalue(adapter_fixture)
    tables = [_sampled_table(adapter, seed) for seed in (1, 2)]
    fast = factory(megabatch=True).run(tables, corpus_blocks)
    slow = factory(megabatch=False).run(tables, corpus_blocks)
    assert np.array_equal(fast, slow)


def test_engine_cache_interleavings(mca_adapter, corpus_blocks):
    # Warm some blocks under one table, then run overlapping batches so hits
    # and misses interleave arbitrarily; gathered megabatches must scatter
    # every miss to the right position.
    tables = [_sampled_table(mca_adapter, seed) for seed in (3, 4)]
    engine = mca_engine(megabatch=True)
    engine.run_one(tables[0], corpus_blocks[:16])
    mixed = list(corpus_blocks[8:32]) + list(corpus_blocks[:8])
    result = engine.run(tables, mixed)
    reference = np.stack([
        _scalar_timings(MCASimulator(table), mixed) for table in tables])
    assert np.array_equal(result, reference)
    stats = engine.stats
    assert stats["result_hits"] > 0 and stats["result_misses"] > 0


def test_engine_parallel_chunked_fanout_deterministic(mca_adapter,
                                                      corpus_blocks):
    tables = [_sampled_table(mca_adapter, seed) for seed in (5, 6)]
    serial = mca_engine(num_workers=0, megabatch=True).run(tables,
                                                           corpus_blocks)
    parallel_engine = mca_engine(num_workers=2, megabatch=True)
    parallel = parallel_engine.run(tables, corpus_blocks)
    assert np.array_equal(parallel, serial)
    again = mca_engine(num_workers=2, megabatch=True).run(tables,
                                                          corpus_blocks)
    assert np.array_equal(again, serial)
    assert parallel_engine.stats["parallel_batches"] == 1
