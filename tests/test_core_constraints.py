"""Tests for dependent-parameter constraints (Future Work, Section VII)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import (BoundConstraint, ConstraintSet, LessEqualConstraint,
                                    RelationConstraint, SumAtMostConstraint)


# ----------------------------------------------------------------------
# Individual constraint kinds
# ----------------------------------------------------------------------
class TestBoundConstraint:
    def test_requires_some_bound(self):
        with pytest.raises(ValueError):
            BoundConstraint("x")

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            BoundConstraint("x", lower=5.0, upper=1.0)

    def test_detects_violations_on_both_sides(self):
        constraint = BoundConstraint("x", lower=1.0, upper=4.0)
        assert constraint.check({"x": np.array([2.0, 3.0])}) is None
        assert constraint.check({"x": np.array([0.0])}) is not None
        assert constraint.check({"x": np.array([9.0])}) is not None

    def test_repair_clips_into_range(self):
        constraint = BoundConstraint("x", lower=1.0, upper=4.0)
        assignment = {"x": np.array([-2.0, 2.0, 10.0])}
        constraint.repair(assignment)
        np.testing.assert_array_equal(assignment["x"], [1.0, 2.0, 4.0])

    def test_missing_field_raises(self):
        constraint = BoundConstraint("x", lower=0.0)
        with pytest.raises(KeyError):
            constraint.check({"y": np.array([1.0])})

    def test_scalar_values_are_accepted(self):
        constraint = BoundConstraint("x", upper=3.0)
        assert constraint.check({"x": 2.0}) is None
        assert constraint.check({"x": 5.0}) is not None


class TestLessEqualConstraint:
    def test_detects_and_repairs_violation(self):
        constraint = LessEqualConstraint("decode_width", "fetch_width")
        assignment = {"decode_width": np.array([6.0]), "fetch_width": np.array([4.0])}
        assert constraint.check(assignment) is not None
        constraint.repair(assignment)
        assert constraint.check(assignment) is None
        np.testing.assert_array_equal(assignment["decode_width"], [4.0])
        np.testing.assert_array_equal(assignment["fetch_width"], [4.0])

    def test_slack_is_honoured(self):
        constraint = LessEqualConstraint("a", "b", slack=2.0)
        assert constraint.check({"a": np.array([5.0]), "b": np.array([3.0])}) is None
        assert constraint.check({"a": np.array([6.0]), "b": np.array([3.0])}) is not None

    def test_elementwise_comparison(self):
        constraint = LessEqualConstraint("a", "b")
        assignment = {"a": np.array([1.0, 5.0]), "b": np.array([2.0, 2.0])}
        assert constraint.check(assignment) is not None
        constraint.repair(assignment)
        np.testing.assert_array_equal(assignment["a"], [1.0, 2.0])


class TestSumAtMostConstraint:
    def test_requires_exactly_one_budget_source(self):
        with pytest.raises(ValueError):
            SumAtMostConstraint(["a"], total="t", constant_total=4.0)
        with pytest.raises(ValueError):
            SumAtMostConstraint(["a"])
        with pytest.raises(ValueError):
            SumAtMostConstraint([], constant_total=4.0)

    def test_constant_budget_check_and_repair(self):
        constraint = SumAtMostConstraint(["int_entries", "fp_entries"], constant_total=10.0)
        assignment = {"int_entries": np.array([8.0]), "fp_entries": np.array([6.0])}
        assert constraint.check(assignment) is not None
        constraint.repair(assignment)
        assert constraint.check(assignment) is None
        total = assignment["int_entries"] + assignment["fp_entries"]
        np.testing.assert_allclose(total, 10.0)
        # Repair is proportional, so the ratio between the parts is preserved.
        ratio = assignment["int_entries"] / assignment["fp_entries"]
        np.testing.assert_allclose(ratio, 8.0 / 6.0)

    def test_field_budget(self):
        constraint = SumAtMostConstraint(["a", "b"], total="rob")
        good = {"a": np.array([10.0]), "b": np.array([20.0]), "rob": np.array([64.0])}
        bad = {"a": np.array([40.0]), "b": np.array([40.0]), "rob": np.array([64.0])}
        assert constraint.check(good) is None
        assert constraint.check(bad) is not None
        constraint.repair(bad)
        assert constraint.check(bad) is None

    def test_repair_is_noop_when_satisfied(self):
        constraint = SumAtMostConstraint(["a", "b"], constant_total=100.0)
        assignment = {"a": np.array([1.0]), "b": np.array([2.0])}
        constraint.repair(assignment)
        np.testing.assert_array_equal(assignment["a"], [1.0])
        np.testing.assert_array_equal(assignment["b"], [2.0])


class TestRelationConstraint:
    def test_custom_predicate_and_repair(self):
        def predicate(assignment):
            return float(np.asarray(assignment["width"]).reshape(-1)[0]) % 2 == 0

        def repair(assignment):
            value = float(np.asarray(assignment["width"]).reshape(-1)[0])
            assignment["width"] = np.array([value + value % 2])

        constraint = RelationConstraint(["width"], predicate, repair,
                                        description="width must be even")
        odd = {"width": np.array([3.0])}
        violation = constraint.check(odd)
        assert violation is not None and "even" in str(violation)
        constraint.repair(odd)
        assert constraint.check(odd) is None

    def test_requires_fields(self):
        with pytest.raises(ValueError):
            RelationConstraint([], lambda a: True, lambda a: None)


# ----------------------------------------------------------------------
# Constraint sets
# ----------------------------------------------------------------------
def _gem5_style_constraints() -> ConstraintSet:
    """The shape of gem5's decode/fetch width assertion plus a queue budget."""
    return ConstraintSet([
        BoundConstraint("fetch_width", lower=1.0, upper=16.0),
        BoundConstraint("decode_width", lower=1.0, upper=16.0),
        LessEqualConstraint("decode_width", "fetch_width"),
        SumAtMostConstraint(["int_queue", "fp_queue"], total="rob_size"),
        BoundConstraint("rob_size", lower=16.0, upper=256.0),
    ])


class TestConstraintSet:
    def test_validate_lists_every_violation(self):
        constraints = _gem5_style_constraints()
        assignment = {"fetch_width": np.array([0.0]), "decode_width": np.array([20.0]),
                      "int_queue": np.array([300.0]), "fp_queue": np.array([10.0]),
                      "rob_size": np.array([64.0])}
        violations = constraints.violations(assignment)
        assert len(violations) >= 3
        with pytest.raises(ValueError):
            constraints.validate(assignment)

    def test_repair_reaches_feasibility(self):
        constraints = _gem5_style_constraints()
        assignment = {"fetch_width": np.array([2.0]), "decode_width": np.array([12.0]),
                      "int_queue": np.array([200.0]), "fp_queue": np.array([100.0]),
                      "rob_size": np.array([400.0])}
        repaired = constraints.repair(assignment)
        assert constraints.is_satisfied(repaired)
        # The decode width was lowered to the fetch width, not the other way.
        assert repaired["decode_width"].item() <= repaired["fetch_width"].item()

    def test_add_returns_self_for_chaining(self):
        constraints = ConstraintSet().add(BoundConstraint("x", lower=0.0))
        assert len(constraints) == 1
        assert list(constraints)

    def test_empty_set_accepts_anything(self):
        constraints = ConstraintSet()
        assert constraints.is_satisfied({"x": np.array([-1e9])})

    def test_rejection_sampling_returns_feasible_assignment(self):
        constraints = _gem5_style_constraints()
        rng = np.random.default_rng(0)

        def sampler(generator):
            return {
                "fetch_width": generator.uniform(1.0, 16.0, size=1),
                "decode_width": generator.uniform(1.0, 16.0, size=1),
                "int_queue": generator.uniform(0.0, 128.0, size=1),
                "fp_queue": generator.uniform(0.0, 128.0, size=1),
                "rob_size": generator.uniform(16.0, 256.0, size=1),
            }

        sample = constraints.rejection_sample(sampler, rng)
        assert constraints.is_satisfied(sample)

    def test_rejection_sampling_falls_back_to_repair(self):
        constraints = ConstraintSet([BoundConstraint("x", lower=10.0, upper=11.0)])
        rng = np.random.default_rng(1)

        def hopeless_sampler(generator):
            return {"x": generator.uniform(0.0, 1.0, size=1)}

        sample = constraints.rejection_sample(hopeless_sampler, rng, max_attempts=5)
        assert constraints.is_satisfied(sample)
        with pytest.raises(ValueError):
            constraints.rejection_sample(hopeless_sampler, rng, max_attempts=5,
                                         repair_on_failure=False)

    def test_acceptance_rate_bounds(self):
        constraints = ConstraintSet([BoundConstraint("x", lower=0.5)])
        rng = np.random.default_rng(2)

        def sampler(generator):
            return {"x": generator.uniform(0.0, 1.0, size=1)}

        rate = constraints.acceptance_rate(sampler, rng, num_samples=200)
        assert 0.3 < rate < 0.7
        with pytest.raises(ValueError):
            constraints.acceptance_rate(sampler, rng, num_samples=0)

    def test_repair_raises_for_inconsistent_constraints(self):
        constraints = ConstraintSet([
            BoundConstraint("x", lower=5.0, upper=10.0),
            BoundConstraint("x", upper=1.0),
        ])
        with pytest.raises(ValueError):
            constraints.repair({"x": np.array([7.0])})

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=2, max_size=2),
           st.floats(min_value=1.0, max_value=500.0))
    def test_sum_repair_property(self, parts, budget):
        """After repair the parts always fit the budget and stay non-negative."""
        constraint = SumAtMostConstraint(["a", "b"], constant_total=budget)
        assignment = {"a": np.array([parts[0]]), "b": np.array([parts[1]])}
        constraint.repair(assignment)
        assert (assignment["a"] + assignment["b"]).item() <= budget + 1e-6
        assert assignment["a"].item() >= 0.0
        assert assignment["b"].item() >= 0.0

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=-100.0, max_value=100.0),
           st.floats(min_value=-100.0, max_value=100.0))
    def test_less_equal_repair_property(self, left, right):
        """Repair always makes left <= right without touching right."""
        constraint = LessEqualConstraint("left", "right")
        assignment = {"left": np.array([left]), "right": np.array([right])}
        constraint.repair(assignment)
        assert assignment["left"].item() <= assignment["right"].item() + 1e-9
        assert assignment["right"].item() == pytest.approx(right)
