"""Tests for neural-network modules, optimizers, and serialization."""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import (Adam, Dropout, Embedding, LSTM, LSTMCell, Linear, MLP, Module,
                            Parameter, ReLU, SGD, Sequential, StackedLSTM, Tanh, Tensor,
                            load_state_dict, save_state_dict)
from repro.autodiff import functional as F
from repro.autodiff.optim import LearningRateSchedule


class TestModuleBasics:
    def test_parameter_registration(self):
        class TwoLayer(Module):
            def __init__(self):
                super().__init__()
                self.first = Linear(3, 4)
                self.second = Linear(4, 2)

        model = TwoLayer()
        names = dict(model.named_parameters())
        assert "first.weight" in names
        assert "second.bias" in names
        assert len(model.parameters()) == 4

    def test_num_parameters(self):
        layer = Linear(3, 4)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_zero_grad_clears_gradients(self):
        layer = Linear(2, 2)
        out = layer(Tensor(np.ones(2))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_train_eval_mode_propagates(self):
        model = Sequential(Linear(2, 2), Dropout(0.5))
        model.eval()
        assert not model.training
        for module in model._modules.values():
            assert not module.training

    def test_state_dict_roundtrip(self):
        source = Linear(3, 3)
        target = Linear(3, 3, rng=np.random.default_rng(99))
        target.load_state_dict(source.state_dict())
        np.testing.assert_allclose(source.weight.data, target.weight.data)

    def test_load_state_dict_shape_mismatch(self):
        layer = Linear(3, 3)
        bad_state = {name: np.zeros((1, 1)) for name in layer.state_dict()}
        with pytest.raises(ValueError):
            layer.load_state_dict(bad_state)

    def test_load_state_dict_missing_key(self):
        layer = Linear(3, 3)
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": np.zeros((3, 3))})


class TestLayers:
    def test_linear_shape(self):
        layer = Linear(5, 3)
        out = layer(Tensor(np.ones((4, 5))))
        assert out.shape == (4, 3)

    def test_linear_no_bias(self):
        layer = Linear(5, 3, bias=False)
        assert len(layer.parameters()) == 1

    def test_embedding_lookup(self):
        embedding = Embedding(10, 4)
        out = embedding([1, 3, 3])
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data[1], out.data[2])

    def test_embedding_out_of_range(self):
        embedding = Embedding(4, 2)
        with pytest.raises(IndexError):
            embedding([5])

    def test_embedding_gradient_accumulates(self):
        embedding = Embedding(5, 3)
        out = embedding([2, 2]).sum()
        out.backward()
        np.testing.assert_allclose(embedding.weight.grad[2], np.full(3, 2.0))
        np.testing.assert_allclose(embedding.weight.grad[0], np.zeros(3))

    def test_relu_tanh_modules(self):
        assert ReLU()(Tensor([-1.0, 2.0])).data.tolist() == [0.0, 2.0]
        np.testing.assert_allclose(Tanh()(Tensor([0.0])).data, [0.0])

    def test_dropout_inactive_in_eval(self):
        dropout = Dropout(0.9)
        dropout.eval()
        data = np.ones(100)
        np.testing.assert_allclose(dropout(Tensor(data)).data, data)

    def test_dropout_scales_in_train(self):
        dropout = Dropout(0.5, rng=np.random.default_rng(0))
        out = dropout(Tensor(np.ones(1000)))
        # Inverted dropout keeps the expectation roughly 1.
        assert abs(out.data.mean() - 1.0) < 0.15

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.5)

    def test_mlp_shapes_and_depth(self):
        mlp = MLP([4, 8, 8, 1])
        assert mlp(Tensor(np.ones(4))).shape == (1,)
        with pytest.raises(ValueError):
            MLP([4])

    def test_sequential_order(self):
        model = Sequential(Linear(2, 2), ReLU(), Linear(2, 1))
        assert len(model) == 3
        assert model(Tensor(np.ones(2))).shape == (1,)


class TestLSTM:
    def test_lstm_cell_state_shapes(self):
        cell = LSTMCell(3, 5)
        hidden, carry = cell.initial_state()
        new_hidden, new_carry = cell(Tensor(np.ones(3)), (hidden, carry))
        assert new_hidden.shape == (5,)
        assert new_carry.shape == (5,)

    def test_lstm_forward_all_lengths(self):
        lstm = LSTM(3, 4)
        sequence = [Tensor(np.ones(3)) for _ in range(5)]
        outputs = lstm.forward_all(sequence)
        assert len(outputs) == 5
        assert outputs[-1].shape == (4,)

    def test_lstm_empty_sequence_raises(self):
        lstm = LSTM(3, 4)
        with pytest.raises(ValueError):
            lstm([])

    def test_stacked_lstm_depth_validation(self):
        with pytest.raises(ValueError):
            StackedLSTM(3, 4, num_layers=0)

    def test_stacked_lstm_output_and_gradients(self):
        lstm = StackedLSTM(3, 4, num_layers=2)
        sequence = [Tensor(np.random.default_rng(0).normal(size=3)) for _ in range(3)]
        out = lstm(sequence)
        out.sum().backward()
        assert out.shape == (4,)
        assert all(parameter.grad is not None for parameter in lstm.parameters())

    def test_lstm_output_bounded(self):
        lstm = LSTM(2, 3)
        sequence = [Tensor(np.full(2, 100.0)) for _ in range(4)]
        out = lstm(sequence)
        assert np.all(np.abs(out.data) <= 1.0)


class TestOptimizers:
    def _training_loss(self, optimizer_factory, steps=150):
        rng = np.random.default_rng(0)
        model = MLP([3, 12, 1], rng=rng)
        inputs = Tensor(rng.normal(size=(16, 3)))
        targets = Tensor(rng.normal(size=(16, 1)))
        optimizer = optimizer_factory(model.parameters())
        loss_value = None
        for _ in range(steps):
            optimizer.zero_grad()
            loss = F.mse_loss(model(inputs), targets)
            loss.backward()
            optimizer.step()
            loss_value = loss.item()
        return loss_value

    def test_sgd_reduces_loss(self):
        assert self._training_loss(lambda p: SGD(p, lr=0.05)) < 0.5

    def test_sgd_momentum_reduces_loss(self):
        assert self._training_loss(lambda p: SGD(p, lr=0.02, momentum=0.9)) < 0.5

    def test_adam_reduces_loss(self):
        assert self._training_loss(lambda p: Adam(p, lr=0.02)) < 0.1

    def test_adam_weight_decay(self):
        parameter = Tensor(np.array([10.0]), requires_grad=True)
        optimizer = Adam([parameter], lr=0.1, weight_decay=1.0)
        for _ in range(50):
            optimizer.zero_grad()
            (parameter * 0.0).sum().backward()
            optimizer.step()
        assert abs(parameter.data[0]) < 10.0

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0], requires_grad=True)], lr=0.0)
        with pytest.raises(ValueError):
            Adam([Tensor([1.0], requires_grad=True)], lr=-1.0)

    def test_empty_parameter_list(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_clip_grad_norm(self):
        parameter = Tensor(np.array([1.0, 1.0]), requires_grad=True)
        optimizer = SGD([parameter], lr=0.1)
        (parameter * 100.0).sum().backward()
        norm_before = optimizer.clip_grad_norm(1.0)
        assert norm_before > 1.0
        assert np.linalg.norm(parameter.grad) <= 1.0 + 1e-9

    def test_learning_rate_schedule(self):
        optimizer = SGD([Tensor([1.0], requires_grad=True)], lr=1.0)
        schedule = LearningRateSchedule(optimizer, decay_factor=0.5, decay_every=2)
        schedule.step_epoch()
        assert optimizer.lr == pytest.approx(1.0)
        schedule.step_epoch()
        assert optimizer.lr == pytest.approx(0.5)

    def test_step_skips_parameters_without_grad(self):
        used = Tensor(np.array([1.0]), requires_grad=True)
        unused = Tensor(np.array([5.0]), requires_grad=True)
        optimizer = Adam([used, unused], lr=0.1)
        (used * 2.0).sum().backward()
        optimizer.step()
        np.testing.assert_allclose(unused.data, [5.0])


class TestSerialization:
    def test_save_and_load_roundtrip(self, tmp_path):
        model = MLP([3, 5, 1], rng=np.random.default_rng(1))
        path = os.path.join(tmp_path, "model.npz")
        save_state_dict(model, path)
        other = MLP([3, 5, 1], rng=np.random.default_rng(2))
        load_state_dict(other, path)
        for (_, a), (_, b) in zip(model.named_parameters(), other.named_parameters()):
            np.testing.assert_allclose(a.data, b.data)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state_dict(MLP([2, 2]), os.path.join(tmp_path, "missing.npz"))


class TestFunctional:
    def test_mse_loss_zero_for_identical(self):
        values = Tensor([1.0, 2.0])
        assert F.mse_loss(values, values).item() == pytest.approx(0.0)

    def test_l1_loss(self):
        assert F.l1_loss(Tensor([1.0, 3.0]), Tensor([2.0, 1.0])).item() == pytest.approx(1.5)

    def test_mape_loss(self):
        loss = F.mape_loss(Tensor([2.0]), Tensor([1.0]))
        assert loss.item() == pytest.approx(1.0)

    def test_huber_loss_quadratic_region(self):
        loss = F.huber_loss(Tensor([0.5]), Tensor([0.0]), delta=1.0)
        assert loss.item() == pytest.approx(0.125)

    def test_huber_loss_linear_region(self):
        loss = F.huber_loss(Tensor([3.0]), Tensor([0.0]), delta=1.0)
        assert loss.item() == pytest.approx(2.5)

    def test_dot(self):
        assert F.dot(Tensor([1.0, 2.0]), Tensor([3.0, 4.0])).item() == pytest.approx(11.0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=10))
    def test_mape_loss_nonnegative(self, targets):
        predictions = Tensor(np.zeros(len(targets)))
        loss = F.mape_loss(predictions, Tensor(np.array(targets)))
        assert loss.item() >= 0.0
