"""Tests for the declarative sweep-campaign subsystem (repro.campaigns).

The two headline contracts are the acceptance criteria of the campaign
redesign:

* the sec5a/sec6c campaign presets reproduce the pre-redesign experiment
  numbers bit-identically;
* a campaign killed at *any* chunk boundary and re-run with ``resume=True``
  produces a byte-identical ``campaign_report.json`` to an uninterrupted run.
"""

import json
import os

import numpy as np
import pytest

from repro import cli
from repro.api import (CAMPAIGNS, STRATEGIES, CampaignSpec, EvaluateSpec,
                       Session, SpecValidationError, registries)
from repro.campaigns import run_campaign
from repro.campaigns.runner import sweep_error_curve
from repro.campaigns.spec import SAMPLE_KEY

NUM_BLOCKS = 40
SEED = 2

DISPATCH_AXIS = {"field": "DispatchWidth", "values": [1, 2, 4]}


def make_spec(**overrides):
    payload = {"target": "haswell", "num_blocks": NUM_BLOCKS, "seed": SEED,
               "axes": [dict(DISPATCH_AXIS)], "max_blocks": 12}
    payload.update(overrides)
    return CampaignSpec.from_dict(payload)


@pytest.fixture(scope="module")
def eval_session():
    """One shared session (and therefore one dataset + engine cache)."""
    return Session.from_spec(EvaluateSpec(target="haswell",
                                          num_blocks=NUM_BLOCKS, seed=SEED))


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    path = os.path.join(tmp_path_factory.mktemp("campaign-cli"), "haswell.json")
    assert cli.main(["dataset", "--uarch", "haswell", "--blocks", "40",
                     "--seed", "7", "--output", path]) == 0
    return path


class TestSpecValidation:
    def test_unknown_strategy_suggests(self):
        with pytest.raises(SpecValidationError, match="strategy.*grid"):
            make_spec(strategy="gird").validate()

    def test_unknown_target_suggests(self):
        with pytest.raises(SpecValidationError, match="target.*haswell"):
            make_spec(target="hasswell").validate()

    def test_unknown_axis_field_suggests(self):
        with pytest.raises(SpecValidationError,
                           match=r"axes\[0\].*did you mean 'DispatchWidth'"):
            make_spec(axes=[{"field": "DispatchWdith",
                             "values": [1, 2]}]).validate()

    def test_unknown_opcode_suggests(self):
        with pytest.raises(SpecValidationError,
                           match="did you mean 'PUSH64r'"):
            make_spec(axes=[{"field": "WriteLatency", "opcode": "PUSH64x",
                             "values": [1, 2]}]).validate()

    def test_unknown_axis_key_suggests(self):
        with pytest.raises(SpecValidationError, match=r"axes\[0\].*vals"):
            make_spec(axes=[{"field": "DispatchWidth", "vals": [1]}]).validate()

    def test_per_opcode_field_requires_opcode(self):
        with pytest.raises(SpecValidationError, match="name the opcode"):
            make_spec(axes=[{"field": "WriteLatency",
                             "values": [1, 2]}]).validate()

    def test_port_field_requires_port(self):
        with pytest.raises(SpecValidationError, match="port column"):
            make_spec(axes=[{"field": "PortMap", "opcode": "ADD32rr",
                             "values": [0, 1]}]).validate()

    def test_port_bounds_checked(self):
        with pytest.raises(SpecValidationError, match=r"must be in \[0,"):
            make_spec(axes=[{"field": "PortMap", "opcode": "ADD32rr",
                             "port": 99, "values": [0, 1]}]).validate()

    def test_global_axis_unsupported_by_llvm_sim(self):
        with pytest.raises(SpecValidationError, match="cannot sweep"):
            make_spec(simulator="llvm_sim",
                      axes=[dict(DISPATCH_AXIS)]).validate()

    def test_llvm_sim_supports_per_opcode_axes(self):
        make_spec(simulator="llvm_sim",
                  axes=[{"field": "WriteLatency", "opcode": "ADD32rr",
                         "values": [1, 2]}]).validate()

    def test_duplicate_axis_rejected(self):
        with pytest.raises(SpecValidationError, match="duplicate axis"):
            make_spec(axes=[dict(DISPATCH_AXIS),
                            {"field": "DispatchWidth",
                             "low": 1, "high": 3}]).validate()

    def test_grid_requires_axes(self):
        with pytest.raises(SpecValidationError, match="needs at least one axis"):
            make_spec(axes=[]).validate()

    def test_random_requires_num_variants(self):
        with pytest.raises(SpecValidationError, match="set num_variants"):
            make_spec(strategy="random", axes=[]).validate()

    def test_bad_strategy_options_named(self):
        with pytest.raises(SpecValidationError, match="strategy_options"):
            make_spec(strategy="adaptive", axes=[], num_variants=4,
                      strategy_options={"eta": 1}).validate()

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(SpecValidationError, match="requires checkpoint_dir"):
            make_spec(resume=True).validate()

    def test_values_and_range_are_exclusive(self):
        with pytest.raises(SpecValidationError, match="not both"):
            make_spec(axes=[{"field": "DispatchWidth", "values": [1],
                             "low": 1, "high": 2}]).validate()

    def test_json_round_trip(self):
        spec = make_spec(strategy="adaptive", num_variants=6,
                         strategy_options={"eta": 2},
                         axes=[{"field": "WriteLatency", "opcode": "ADD32rr",
                                "low": 0, "high": 4, "step": 2}])
        spec.validate()
        assert CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) \
            == spec

    def test_identity_excludes_execution_knobs(self):
        spec = make_spec(checkpoint_dir="ckpt", report_path="report.json",
                         engine_workers=3, engine_megabatch=False)
        identity = spec.identity_dict()
        for key in ("checkpoint_dir", "resume", "report_path",
                    "engine_workers", "engine_megabatch"):
            assert key not in identity
        assert identity["axes"] == [dict(DISPATCH_AXIS)]


class TestStrategiesRegistry:
    def test_registered_and_exposed(self):
        assert {"grid", "random", "adaptive"} <= set(STRATEGIES.names())
        assert registries()["strategies"] is STRATEGIES

    def test_successive_halving_alias(self):
        assert STRATEGIES.resolve("successive_halving") == "adaptive"

    def test_grid_product_order(self):
        spec = make_spec(axes=[{"field": "DispatchWidth", "values": [1, 2]},
                               {"field": "ReorderBufferSize",
                                "values": [50, 100]}])
        spec.validate()
        from repro.campaigns.spec import resolve_axes
        strategy = STRATEGIES.get("grid")(
            resolve_axes(list(spec.axes), "mca"), None, {})
        round_ = strategy.propose(np.random.default_rng(0))
        assert [(a["DispatchWidth"], a["ReorderBufferSize"])
                for a in round_.assignments] == \
            [(1, 50), (1, 100), (2, 50), (2, 100)]
        assert strategy.propose(np.random.default_rng(0)) is None

    def test_grid_one_at_a_time(self):
        spec = make_spec(axes=[{"field": "DispatchWidth", "values": [1, 2]},
                               {"field": "ReorderBufferSize",
                                "values": [50, 100, 150]}],
                         strategy_options={"mode": "one_at_a_time"})
        spec.validate()
        from repro.campaigns.spec import resolve_axes
        strategy = STRATEGIES.get("grid")(
            resolve_axes(list(spec.axes), "mca"), None,
            {"mode": "one_at_a_time"})
        round_ = strategy.propose(np.random.default_rng(0))
        assert len(round_.assignments) == 5
        assert all(len(assignment) == 1 for assignment in round_.assignments)


class TestRunner:
    def test_single_axis_grid_matches_sweep_error_curve(self, eval_session):
        result = eval_session.run_campaign(axes=[dict(DISPATCH_AXIS)])
        curve = sweep_error_curve(eval_session.default_table(),
                                  eval_session.dataset(),
                                  "DispatchWidth", [1, 2, 4])
        assert result.status == "complete"
        assert [variant["error"] for variant in result.variants] == \
            [error for _value, error in curve]
        assert [variant["assignment"]["DispatchWidth"]
                for variant in result.variants] == [1, 2, 4]

    def test_report_statistics_shape(self, eval_session):
        result = eval_session.run_campaign(axes=[dict(DISPATCH_AXIS)],
                                           max_blocks=12)
        report = result.report
        assert report["schema_version"] == 1
        assert report["num_variants"] == 3
        stats = report["error_stats"]
        assert stats["count"] == 3
        assert set(stats["quantiles"]) == {"p05", "p25", "p50", "p75", "p95"}
        assert sum(report["error_delta_histogram"]["counts"]) == 3
        assert report["best_variants"][0]["error"] == stats["min"]
        assert report["axis_sensitivity"][0]["axis"] == "DispatchWidth"

    def test_session_fields_inherited(self, eval_session):
        result = eval_session.run_campaign(axes=[dict(DISPATCH_AXIS)],
                                           max_blocks=12)
        spec = result.report["spec"]
        assert spec["num_blocks"] == NUM_BLOCKS
        assert spec["seed"] == SEED
        assert spec["simulator"] == "mca"

    def test_mismatched_session_rejected(self, eval_session):
        from repro.campaigns.runner import CampaignRunner

        with pytest.raises(ValueError, match="num_blocks"):
            CampaignRunner(make_spec(num_blocks=NUM_BLOCKS + 1),
                           session=eval_session)

    def test_repeated_campaign_hits_engine_cache(self):
        session = Session.from_spec(EvaluateSpec(target="haswell",
                                                 num_blocks=30, seed=5))
        overrides = dict(axes=[dict(DISPATCH_AXIS)], max_blocks=10)
        first = session.run_campaign(**overrides)
        executed = session.stats()["engine"]["executed"]
        hits_before = session.stats()["engine"]["result_hits"]
        second = session.run_campaign(**overrides)
        stats = session.stats()["engine"]
        assert stats["executed"] == executed  # pure LRU hits, no re-simulation
        assert stats["result_hits"] > hits_before
        assert json.dumps(first.report, sort_keys=True) == \
            json.dumps(second.report, sort_keys=True)

    def test_repeated_sweep_tables_hit_engine_cache(self):
        # Satellite fix: the base table is resolved once per sweep, so two
        # identical sweeps produce digest-identical tables and the second
        # predict is served entirely from the engine result cache.
        session = Session.from_spec(EvaluateSpec(target="haswell",
                                                 num_blocks=30, seed=6))
        blocks, _timings = session.split("test")
        with pytest.warns(DeprecationWarning, match="sweep_tables"):
            tables = session.sweep_tables("DispatchWidth", [1, 2, 3])
        session.predict(blocks, tables)
        executed = session.stats()["engine"]["executed"]
        with pytest.warns(DeprecationWarning, match="sweep_tables"):
            tables = session.sweep_tables("DispatchWidth", [1, 2, 3])
        session.predict(blocks, tables)
        stats = session.stats()["engine"]
        assert stats["executed"] == executed
        assert stats["result_hits"] >= 3 * len(blocks)


class TestResume:
    def _grid_spec(self, checkpoint_dir, report_path, resume=False):
        return make_spec(axes=[{"field": "DispatchWidth", "low": 1, "high": 6}],
                         chunk_size=2, checkpoint_dir=checkpoint_dir,
                         report_path=report_path, resume=resume)

    def test_resume_bit_identical_at_every_chunk_boundary(self, tmp_path,
                                                          eval_session):
        reference_path = str(tmp_path / "reference.json")
        run_campaign(self._grid_spec(None, reference_path),
                     session=eval_session)
        reference = (tmp_path / "reference.json").read_bytes()
        num_chunks = 3  # 6 variants / chunk_size 2
        for kill_after in range(num_chunks + 1):
            checkpoint_dir = str(tmp_path / f"ckpt{kill_after}")
            report_path = str(tmp_path / f"report{kill_after}.json")
            killed = run_campaign(
                self._grid_spec(checkpoint_dir, report_path),
                session=eval_session, max_chunks=kill_after)
            expected = "interrupted" if kill_after < num_chunks else "complete"
            assert killed.status == expected
            resumed = run_campaign(
                self._grid_spec(checkpoint_dir, report_path, resume=True),
                session=eval_session)
            assert resumed.status == "complete"
            assert resumed.resumed_chunks == kill_after
            assert resumed.num_variants == 6
            assert (tmp_path / f"report{kill_after}.json").read_bytes() \
                == reference

    def test_resume_replays_rng_for_sampled_tables(self, tmp_path,
                                                   eval_session):
        # Full-table random campaigns consume the rng stream per draw; resume
        # must replay the stream identically even for checkpointed chunks.
        def spec_for(checkpoint_dir, report_path, resume=False):
            return make_spec(strategy="random", axes=[], num_variants=4,
                             chunk_size=2, checkpoint_dir=checkpoint_dir,
                             report_path=report_path, resume=resume)

        reference_path = str(tmp_path / "reference.json")
        run_campaign(spec_for(None, reference_path), session=eval_session)
        reference = (tmp_path / "reference.json").read_bytes()
        checkpoint_dir = str(tmp_path / "ckpt")
        report_path = str(tmp_path / "report.json")
        killed = run_campaign(spec_for(checkpoint_dir, report_path),
                              session=eval_session, max_chunks=1)
        assert killed.status == "interrupted"
        resumed = run_campaign(spec_for(checkpoint_dir, report_path,
                                        resume=True), session=eval_session)
        assert resumed.status == "complete"
        assert resumed.resumed_chunks == 1
        assert resumed.executed_chunks == 1
        assert (tmp_path / "report.json").read_bytes() == reference


class TestAdaptiveStrategy:
    def test_deterministic_under_fixed_seed(self, eval_session):
        spec = make_spec(strategy="adaptive", num_variants=8,
                         strategy_options={"eta": 2},
                         axes=[{"field": "DispatchWidth", "low": 1, "high": 8}])
        first = run_campaign(spec, session=eval_session)
        second = run_campaign(spec, session=eval_session)
        assert json.dumps(first.report, sort_keys=True) == \
            json.dumps(second.report, sort_keys=True)

    def test_screening_rounds_use_block_prefixes(self, eval_session):
        spec = make_spec(strategy="adaptive", num_variants=8,
                         strategy_options={"eta": 2},
                         axes=[{"field": "DispatchWidth", "low": 1, "high": 8}])
        result = run_campaign(spec, session=eval_session)
        fractions = sorted({variant["block_fraction"]
                            for variant in result.variants})
        assert fractions[-1] == 1.0
        assert fractions[0] < 1.0
        # Survivor counts shrink by eta per round: 8 -> 4 -> 2 -> 1.
        by_round = {}
        for variant in result.variants:
            by_round.setdefault(variant["round"], []).append(variant)
        assert [len(by_round[index]) for index in sorted(by_round)] \
            == [8, 4, 2, 1]
        # Statistics only consider full-corpus variants.
        assert result.report["num_full_corpus_variants"] == 1

    def test_sampled_table_mode(self, eval_session):
        spec = make_spec(strategy="adaptive", num_variants=4,
                         strategy_options={"eta": 2}, axes=[])
        result = run_campaign(spec, session=eval_session)
        assert result.status == "complete"
        assert all(SAMPLE_KEY in variant["assignment"]
                   for variant in result.variants)


class TestPresets:
    def test_sec5a_bit_identical_to_experiment_loop(self):
        from repro.eval.experiments import run_section5a_random_tables

        expected = run_section5a_random_tables(num_blocks=40, num_tables=3,
                                               seed=0)
        spec = CAMPAIGNS.get("sec5a_random_tables")(num_blocks=40,
                                                    num_tables=3, seed=0)
        errors = np.array([variant["error"]
                           for variant in run_campaign(spec).variants])
        assert {"mean": float(errors.mean()), "std": float(errors.std()),
                "min": float(errors.min()),
                "max": float(errors.max())} == expected

    def test_sweep_error_curve_matches_deprecated_shim(self):
        from repro.bhive import build_dataset
        from repro.eval.analysis import global_parameter_sensitivity
        from repro.targets import HASWELL, build_default_mca_table

        dataset = build_dataset("haswell", num_blocks=30, seed=1)
        table = build_default_mca_table(HASWELL)
        with pytest.warns(DeprecationWarning,
                          match="global_parameter_sensitivity"):
            old = global_parameter_sensitivity(table, dataset, "DispatchWidth",
                                               [1, 2, 4], max_blocks=8)
        new = sweep_error_curve(table, dataset, "DispatchWidth", [1, 2, 4],
                                max_blocks=8)
        assert old == new

    def test_presets_registered_with_aliases(self):
        assert CAMPAIGNS.resolve("sec5a") == "sec5a_random_tables"
        assert CAMPAIGNS.resolve("sec6c") == "sec6c_write_latency"
        assert CAMPAIGNS.resolve("fig5") == "fig5_global_sensitivity"

    def test_sec6c_preset_axes(self):
        spec = CAMPAIGNS.get("sec6c_write_latency")(num_blocks=NUM_BLOCKS)
        spec.validate()
        assert [axis["opcode"] for axis in spec.axes] == \
            ["PUSH64r", "XOR32rr", "ADD32mr"]
        assert spec.strategy_options == {"mode": "one_at_a_time"}


class TestCLI:
    def test_sweep_routes_through_campaign(self, dataset_path, capsys):
        assert cli.main(["sweep", "--dataset", dataset_path,
                         "--field", "DispatchWidth",
                         "--low", "1", "--high", "4"]) == 0
        output = capsys.readouterr().out
        session = Session.from_spec(EvaluateSpec(dataset_path=dataset_path))
        result = session.run_campaign(
            axes=[{"field": "DispatchWidth", "low": 1, "high": 4}])
        errors = [variant["error"] * 100.0 for variant in result.variants]
        best = [1, 2, 3, 4][int(np.argmin(errors))]
        assert f"Best DispatchWidth: {best} (error {min(errors):.1f}%)" \
            in output

    def test_campaign_run_inline_axes(self, dataset_path, tmp_path, capsys):
        report_path = os.path.join(tmp_path, "report.json")
        assert cli.main(["campaign", "run", "--dataset", dataset_path,
                         "--axis", "DispatchWidth=1,2",
                         "--axis", "WriteLatency@ADD32rr=0:2",
                         "--max-blocks", "8", "--output", report_path]) == 0
        output = capsys.readouterr().out
        assert "variants evaluated: 6" in output
        report = json.load(open(report_path))
        assert report["status"] == "complete"
        labels = {label for variant in report["variants"]
                  for label in variant["assignment"]}
        assert labels == {"DispatchWidth", "WriteLatency@ADD32rr"}

    def test_campaign_run_preset_with_overrides(self, dataset_path, capsys):
        assert cli.main(["campaign", "run", "--preset", "sec6c",
                         "--dataset", dataset_path, "--max-blocks", "6"]) == 0
        output = capsys.readouterr().out
        assert "axis sensitivity (most sensitive first)" in output
        assert "error distribution" in output

    def test_campaign_list(self, capsys):
        assert cli.main(["campaign", "list"]) == 0
        output = capsys.readouterr().out
        for name in ("sec5a_random_tables", "sec6c_write_latency",
                     "fig5_global_sensitivity", "grid", "random", "adaptive"):
            assert name in output

    def test_campaign_report(self, dataset_path, tmp_path, capsys):
        report_path = os.path.join(tmp_path, "report.json")
        assert cli.main(["campaign", "run", "--dataset", dataset_path,
                         "--axis", "DispatchWidth=1,2", "--max-blocks", "6",
                         "--output", report_path]) == 0
        capsys.readouterr()
        assert cli.main(["campaign", "report", report_path]) == 0
        assert "status: complete" in capsys.readouterr().out

    def test_campaign_spec_error_is_clean(self, dataset_path):
        with pytest.raises(SystemExit, match="error: strategy"):
            cli.main(["campaign", "run", "--dataset", dataset_path,
                      "--strategy", "gird",
                      "--axis", "DispatchWidth=1,2"])

    def test_bad_axis_flag(self, dataset_path):
        with pytest.raises(SystemExit, match="bad --axis"):
            cli.main(["campaign", "run", "--dataset", dataset_path,
                      "--axis", "DispatchWidth"])
        with pytest.raises(SystemExit, match="bad --axis"):
            cli.main(["campaign", "run", "--dataset", dataset_path,
                      "--axis", "DispatchWidth=a,b"])
