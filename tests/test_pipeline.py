"""Tests for the resumable tuning pipeline (repro.pipeline).

Covers the stage sequence, the checkpoint store (fingerprint pinning, rng
snapshots), bit-identical resume after an interruption — including
mid-refinement — deterministic refinement rounds, the multi-target runner,
and the serialization extensions (optimizer state, ParameterArrays) the
per-stage artifacts are built on.
"""

import os

import numpy as np
import pytest

from repro.autodiff import Adam, Linear, Tensor
from repro.autodiff.serialization import (load_optimizer_state, load_parameter_arrays,
                                          save_optimizer_state, save_parameter_arrays)
from repro.core.adapters import MCAAdapter
from repro.core.difftune import DiffTune
from repro.core.parameters import ParameterArrays
from repro.core.config import test_config as tiny_config
from repro.pipeline import (CheckpointMismatchError, CheckpointStore, TargetSpec,
                            TuningPipeline, build_stages, tune_target, tune_targets)
from repro.targets import HASWELL


@pytest.fixture(scope="module")
def training_data(small_dataset):
    train = small_dataset.train_examples[:40]
    blocks = [example.block for example in train]
    timings = np.array([example.timing for example in train])
    return blocks, timings


def _make_difftune(refinement_rounds=0, seed=0, log=None):
    config = tiny_config(seed)
    config.refinement_rounds = refinement_rounds
    config.refinement_dataset_size = 48
    return DiffTune(MCAAdapter(HASWELL, narrow_sampling=True), config, log=log)


def _tables_equal(a: ParameterArrays, b: ParameterArrays) -> bool:
    return (np.array_equal(a.per_instruction_values, b.per_instruction_values)
            and np.array_equal(a.global_values, b.global_values))


class TestStageSequence:
    def test_stage_names_without_refinement(self):
        names = [stage.name for stage in build_stages(tiny_config())]
        assert names == ["collect_dataset", "train_surrogate", "optimize_table",
                         "extract_evaluate"]

    def test_refinement_rounds_become_stages(self):
        config = tiny_config()
        config.refinement_rounds = 2
        names = [stage.name for stage in build_stages(config)]
        assert names == ["collect_dataset", "train_surrogate", "optimize_table",
                         "refinement_round_01", "refinement_round_02",
                         "extract_evaluate"]

    def test_unknown_stop_after_rejected(self, training_data):
        blocks, timings = training_data
        difftune = _make_difftune()
        with pytest.raises(ValueError, match="unknown stage"):
            difftune.learn(blocks, timings, stop_after="nope")

    def test_resume_requires_checkpoint_dir(self, training_data):
        blocks, timings = training_data
        with pytest.raises(ValueError, match="requires a checkpoint directory"):
            _make_difftune().learn(blocks, timings, resume=True)

    def test_stop_after_requires_checkpoint_dir(self, training_data):
        """Stopping early without checkpoints would silently throw the
        completed stages' work away; it must be rejected up front."""
        blocks, timings = training_data
        with pytest.raises(ValueError, match="checkpoint directory"):
            _make_difftune().learn(blocks, timings, stop_after="train_surrogate")


class TestResume:
    @pytest.mark.parametrize("stop_after", ["collect_dataset", "train_surrogate",
                                            "optimize_table"])
    def test_interrupted_run_resumes_bit_identically(self, training_data, tmp_path,
                                                     stop_after):
        """The acceptance criterion: a run killed after any stage, resumed
        with ``resume=True``, yields a bit-identical learned table to an
        uninterrupted run with the same seed."""
        blocks, timings = training_data
        full = _make_difftune(refinement_rounds=1).learn(blocks, timings)
        checkpoint_dir = str(tmp_path / stop_after)
        stopped = _make_difftune(refinement_rounds=1).learn(
            blocks, timings, checkpoint_dir=checkpoint_dir, stop_after=stop_after)
        assert stopped is None
        resumed = _make_difftune(refinement_rounds=1).learn(
            blocks, timings, checkpoint_dir=checkpoint_dir, resume=True)
        assert _tables_equal(full.learned_arrays, resumed.learned_arrays)
        assert resumed.train_error == full.train_error
        assert resumed.resumed_stages[-1] == stop_after

    def test_mid_refinement_resume(self, training_data, tmp_path):
        """Resume inside the refinement sequence: round 1 done, round 2 not."""
        blocks, timings = training_data
        full = _make_difftune(refinement_rounds=2).learn(blocks, timings)
        checkpoint_dir = str(tmp_path / "refine")
        _make_difftune(refinement_rounds=2).learn(
            blocks, timings, checkpoint_dir=checkpoint_dir,
            stop_after="refinement_round_01")
        resumed = _make_difftune(refinement_rounds=2).learn(
            blocks, timings, checkpoint_dir=checkpoint_dir, resume=True)
        assert _tables_equal(full.learned_arrays, resumed.learned_arrays)
        assert "refinement_round_01" in resumed.resumed_stages
        assert "refinement_round_02" not in resumed.resumed_stages

    def test_resume_of_finished_run_replays_from_checkpoints(self, training_data,
                                                             tmp_path):
        blocks, timings = training_data
        checkpoint_dir = str(tmp_path / "done")
        messages = []
        first = _make_difftune(log=messages.append).learn(
            blocks, timings, checkpoint_dir=checkpoint_dir)
        replayed = _make_difftune(log=messages.append).learn(
            blocks, timings, checkpoint_dir=checkpoint_dir, resume=True)
        assert _tables_equal(first.learned_arrays, replayed.learned_arrays)
        # Every stage came from disk; nothing was recomputed.
        assert len(replayed.resumed_stages) == 4

    def test_resume_restores_simulated_dataset(self, training_data, tmp_path):
        blocks, timings = training_data
        checkpoint_dir = str(tmp_path / "dataset")
        difftune = _make_difftune()
        difftune.learn(blocks, timings, checkpoint_dir=checkpoint_dir,
                       stop_after="collect_dataset")
        pipeline = _make_difftune().pipeline(checkpoint_dir)
        state = pipeline.run(blocks, timings, resume=True,
                             stop_after="collect_dataset")
        examples = state.simulated_examples
        assert len(examples) == state.config.simulated_dataset_size
        # Table sharing survives the round-trip: examples drawn with the same
        # sampled table share one ParameterArrays object.
        shared = len({id(example.arrays) for example in examples})
        assert shared < len(examples)
        assert all(example.block is blocks[example.block_index]
                   for example in examples)

    def test_mismatched_config_is_rejected(self, training_data, tmp_path):
        blocks, timings = training_data
        checkpoint_dir = str(tmp_path / "mismatch")
        _make_difftune(seed=0).learn(blocks, timings, checkpoint_dir=checkpoint_dir,
                                     stop_after="collect_dataset")
        with pytest.raises(CheckpointMismatchError):
            _make_difftune(seed=1).learn(blocks, timings,
                                         checkpoint_dir=checkpoint_dir, resume=True)

    def test_fresh_run_over_same_config_resets_completions(self, training_data,
                                                           tmp_path):
        blocks, timings = training_data
        checkpoint_dir = str(tmp_path / "fresh")
        _make_difftune().learn(blocks, timings, checkpoint_dir=checkpoint_dir)
        store = CheckpointStore(checkpoint_dir)
        assert len(store.completed_stages()) == 4
        # A non-resume run over the same directory starts from scratch.
        _make_difftune().learn(blocks, timings, checkpoint_dir=checkpoint_dir,
                               stop_after="collect_dataset")
        store = CheckpointStore(checkpoint_dir)
        assert store.completed_stages() == ["collect_dataset"]


class TestRefinementDeterminism:
    def test_refinement_rounds_deterministic_under_fixed_seed(self, training_data):
        """ISSUE 4 satellite: refinement re-collects near the estimate,
        fine-tunes, and re-optimizes deterministically under a fixed seed."""
        blocks, timings = training_data
        first = _make_difftune(refinement_rounds=1).learn(blocks, timings)
        second = _make_difftune(refinement_rounds=1).learn(blocks, timings)
        assert _tables_equal(first.learned_arrays, second.learned_arrays)
        assert first.train_error == second.train_error
        assert first.table_result.epoch_losses == second.table_result.epoch_losses

    def test_refinement_logs_and_improves_or_keeps_best(self, training_data):
        blocks, timings = training_data
        messages = []
        no_refinement = _make_difftune().learn(blocks, timings)
        refined = _make_difftune(refinement_rounds=2,
                                 log=messages.append).learn(blocks, timings)
        assert any("refinement round 1" in message for message in messages)
        assert any("refinement round 2" in message for message in messages)
        assert refined.train_error <= no_refinement.train_error + 1e-12


class TestMultiTarget:
    def test_tune_target_matches_difftune(self, tmp_path):
        spec = TargetSpec(target="haswell", num_blocks=60, seed=0,
                          config_preset="test",
                          output_path=str(tmp_path / "haswell.json"))
        outcome = tune_target(spec)
        assert outcome.completed
        assert outcome.train_error is not None
        assert outcome.test_error is not None
        assert os.path.exists(outcome.output_path)

    def test_sequential_multi_target(self, tmp_path):
        specs = [TargetSpec(target=target, num_blocks=60, seed=0,
                            config_preset="test",
                            checkpoint_dir=str(tmp_path / target))
                 for target in ("haswell", "zen2")]
        outcomes = tune_targets(specs, workers=0)
        assert set(outcomes) == {"haswell", "zen2"}
        assert all(outcome.completed for outcome in outcomes.values())

    def test_duplicate_targets_rejected(self):
        specs = [TargetSpec(target="haswell"), TargetSpec(target="haswell")]
        with pytest.raises(ValueError, match="duplicate targets"):
            tune_targets(specs)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown config preset"):
            tune_target(TargetSpec(target="haswell", num_blocks=60,
                                   config_preset="huge"))

    def test_failing_target_recorded_without_sinking_siblings(self):
        specs = [TargetSpec(target="haswell", num_blocks=60, seed=0,
                            config_preset="test"),
                 TargetSpec(target="zen2", num_blocks=60, seed=0,
                            config_preset="bogus")]
        outcomes = tune_targets(specs, workers=0)
        assert outcomes["haswell"].completed
        assert not outcomes["haswell"].failed
        failed = outcomes["zen2"]
        assert failed.failed and not failed.completed
        assert failed.error.startswith("ValueError")
        assert "unknown config preset" in failed.error
        assert "Traceback" in failed.traceback

    def test_strict_reraises_first_failure(self):
        specs = [TargetSpec(target="haswell", num_blocks=60, seed=0,
                            config_preset="bogus")]
        with pytest.raises(ValueError, match="unknown config preset"):
            tune_targets(specs, workers=0, strict=True)


class TestSerializationExtensions:
    def _training_step(self, module, optimizer, value):
        prediction = module(Tensor(np.ones(3)))
        loss = ((prediction - value) ** 2).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()

    def test_adam_state_roundtrip_continues_identically(self, tmp_path):
        rng = np.random.default_rng(0)
        reference = Linear(3, 2, rng=np.random.default_rng(1))
        optimizer = Adam(reference.parameters(), lr=0.05)
        for step in range(3):
            self._training_step(reference, optimizer, float(step))
        state_path = str(tmp_path / "adam_state.npz")
        weights_path = str(tmp_path / "weights.npz")
        save_optimizer_state(optimizer, state_path)
        from repro.autodiff.serialization import load_state_dict, save_state_dict
        save_state_dict(reference, weights_path)
        # Continue the original for two more steps...
        for step in range(2):
            self._training_step(reference, optimizer, 5.0)
        # ...and a resumed copy from the checkpoint.
        resumed = Linear(3, 2, rng=np.random.default_rng(2))
        load_state_dict(resumed, weights_path)
        resumed_optimizer = Adam(resumed.parameters(), lr=0.05)
        load_optimizer_state(resumed_optimizer, state_path)
        for step in range(2):
            self._training_step(resumed, resumed_optimizer, 5.0)
        for original, copy in zip(reference.parameters(), resumed.parameters()):
            np.testing.assert_array_equal(original.data, copy.data)

    def test_fresh_optimizer_state_differs_from_resumed(self, tmp_path):
        """Without the moments, Adam's trajectory diverges — the state dict
        is load-bearing, not ornamental."""
        reference = Linear(3, 2, rng=np.random.default_rng(1))
        optimizer = Adam(reference.parameters(), lr=0.05)
        for step in range(3):
            self._training_step(reference, optimizer, float(step))
        weights_path = str(tmp_path / "weights.npz")
        from repro.autodiff.serialization import load_state_dict, save_state_dict
        save_state_dict(reference, weights_path)
        self._training_step(reference, optimizer, 5.0)

        cold = Linear(3, 2, rng=np.random.default_rng(2))
        load_state_dict(cold, weights_path)
        cold_optimizer = Adam(cold.parameters(), lr=0.05)
        self._training_step(cold, cold_optimizer, 5.0)
        assert any(not np.array_equal(original.data, copy.data)
                   for original, copy in zip(reference.parameters(),
                                             cold.parameters()))

    def test_optimizer_state_shape_mismatch_rejected(self, tmp_path):
        module = Linear(3, 2, rng=np.random.default_rng(0))
        optimizer = Adam(module.parameters(), lr=0.05)
        self._training_step(module, optimizer, 1.0)
        path = str(tmp_path / "state.npz")
        save_optimizer_state(optimizer, path)
        other = Adam(Linear(4, 2, rng=np.random.default_rng(0)).parameters(), lr=0.05)
        with pytest.raises(ValueError, match="shape mismatch"):
            load_optimizer_state(other, path)

    def test_parameter_arrays_roundtrip(self, tmp_path):
        arrays = ParameterArrays(global_values=np.array([3.0, 7.0]),
                                 per_instruction_values=np.arange(12.0).reshape(4, 3))
        path = str(tmp_path / "arrays.npz")
        save_parameter_arrays(arrays, path)
        restored = load_parameter_arrays(path)
        np.testing.assert_array_equal(restored.global_values, arrays.global_values)
        np.testing.assert_array_equal(restored.per_instruction_values,
                                      arrays.per_instruction_values)

    def test_non_parameter_arrays_archive_rejected(self, tmp_path):
        from repro.autodiff.serialization import save_arrays
        path = str(tmp_path / "other.npz")
        save_arrays({"something": np.zeros(3)}, path)
        with pytest.raises(KeyError, match="ParameterArrays"):
            load_parameter_arrays(path)


class TestCheckpointStore:
    def test_rng_snapshot_roundtrip(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        rng = np.random.default_rng(7)
        rng.integers(0, 100, size=10)  # advance the stream
        store.mark_complete("stage_a", rng)
        expected = rng.integers(0, 1 << 30, size=5)

        fresh = np.random.default_rng(7)
        store = CheckpointStore(str(tmp_path))  # re-read manifest from disk
        store.restore_rng("stage_a", fresh)
        np.testing.assert_array_equal(fresh.integers(0, 1 << 30, size=5), expected)

    def test_fingerprint_binding(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.bind_fingerprint("abc", resume=False)
        store = CheckpointStore(str(tmp_path))
        store.bind_fingerprint("abc", resume=True)  # same fingerprint: fine
        with pytest.raises(CheckpointMismatchError):
            store.bind_fingerprint("def", resume=True)

    def test_missing_stage_rng_raises(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        with pytest.raises(KeyError):
            store.restore_rng("nope", np.random.default_rng(0))


class TestPipelineDirect:
    def test_pipeline_state_exposes_artifacts(self, training_data):
        blocks, timings = training_data
        difftune = _make_difftune()
        pipeline = difftune.pipeline()
        assert isinstance(pipeline, TuningPipeline)
        state = pipeline.run(blocks, timings)
        assert state.learned_arrays is not None
        assert state.surrogate_result is not None
        assert state.table_result is not None
        assert state.train_error == state.best_error

    def test_precollected_examples_skip_collection(self, training_data, tmp_path):
        blocks, timings = training_data
        difftune = _make_difftune()
        rng = np.random.default_rng(0)
        simulated = difftune.collect_simulated_dataset(blocks, rng)
        result = difftune.learn(blocks, timings, simulated_examples=simulated,
                                checkpoint_dir=str(tmp_path / "pre"))
        assert result.simulated_dataset_size == len(simulated)
