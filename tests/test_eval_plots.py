"""Tests for the ASCII plots and figure-data CSV export."""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.plots import (Series, ascii_bar_chart, ascii_histogram, ascii_line_plot,
                              read_series_csv, write_histogram_csv, write_series_csv)


class TestSeries:
    def test_requires_aligned_values(self):
        with pytest.raises(ValueError):
            Series("bad", x=[1.0, 2.0], y=[1.0])

    def test_requires_non_empty(self):
        with pytest.raises(ValueError):
            Series("empty", x=[], y=[])


class TestAsciiLinePlot:
    def _figure2_series(self):
        """The Figure 2 shape: a staircase simulator curve and a smooth surrogate."""
        dispatch_widths = list(range(1, 11))
        simulator = Series("llvm-mca", x=[float(v) for v in dispatch_widths],
                           y=[3.0 if v == 1 else 1.0 for v in dispatch_widths])
        surrogate = Series("surrogate", x=[float(v) for v in dispatch_widths],
                           y=[3.0 / v + 1.0 for v in dispatch_widths])
        return [simulator, surrogate]

    def test_plot_contains_markers_and_legend(self):
        text = ascii_line_plot(self._figure2_series(), title="Figure 2",
                               x_label="DispatchWidth", y_label="Timing")
        assert "Figure 2" in text
        assert "o=llvm-mca" in text and "x=surrogate" in text
        assert "DispatchWidth" in text
        assert "o" in text and "x" in text

    def test_requires_series_and_minimum_size(self):
        with pytest.raises(ValueError):
            ascii_line_plot([])
        with pytest.raises(ValueError):
            ascii_line_plot(self._figure2_series(), width=4, height=2)

    def test_constant_series_does_not_divide_by_zero(self):
        flat = Series("flat", x=[1.0, 2.0, 3.0], y=[5.0, 5.0, 5.0])
        text = ascii_line_plot([flat])
        assert "flat" in text

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=20))
    def test_plot_always_renders_property(self, values):
        series = Series("s", x=[float(i) for i in range(len(values))],
                        y=[float(v) for v in values])
        text = ascii_line_plot([series], width=30, height=8)
        lines = text.splitlines()
        assert len(lines) >= 8


class TestAsciiHistogram:
    def test_renders_counts_per_bin(self):
        text = ascii_histogram({"default": [0, 1, 1, 2], "learned": [0, 0, 0, 5]},
                               bins=[0, 1, 2, 6], title="WriteLatency")
        assert "WriteLatency" in text
        assert "default:" in text and "learned:" in text
        assert "#" in text

    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            ascii_histogram({"x": [1.0]}, bins=[0])

    def test_empty_collection_renders_zero_bars(self):
        text = ascii_histogram({"empty": []}, bins=[0, 1, 2])
        assert "empty:" in text


class TestAsciiBarChart:
    def test_renders_labelled_bars(self):
        text = ascii_bar_chart(["Redis", "SQLite"], [41.2, 32.8], title="Per-application")
        assert "Per-application" in text
        assert "Redis" in text and "SQLite" in text
        assert text.count("#") > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            ascii_bar_chart([], [])


class TestCSVRoundTrip:
    def test_series_round_trip(self, tmp_path):
        path = os.path.join(tmp_path, "figures", "fig2.csv")
        series = [
            Series("llvm-mca", x=[1.0, 2.0, 3.0], y=[3.0, 1.0, 1.0]),
            Series("surrogate", x=[1.0, 2.0, 3.0], y=[3.2, 1.8, 1.4]),
        ]
        write_series_csv(path, series, x_name="DispatchWidth")
        x_name, loaded = read_series_csv(path)
        assert x_name == "DispatchWidth"
        assert [entry.name for entry in loaded] == ["llvm-mca", "surrogate"]
        np.testing.assert_allclose(loaded[0].y, [3.0, 1.0, 1.0])
        np.testing.assert_allclose(loaded[1].x, [1.0, 2.0, 3.0])

    def test_series_csv_requires_shared_x(self, tmp_path):
        path = os.path.join(tmp_path, "fig.csv")
        series = [Series("a", x=[1.0], y=[2.0]), Series("b", x=[3.0], y=[4.0])]
        with pytest.raises(ValueError):
            write_series_csv(path, series)
        with pytest.raises(ValueError):
            write_series_csv(path, [])

    def test_histogram_csv_contains_counts(self, tmp_path):
        path = os.path.join(tmp_path, "hist.csv")
        write_histogram_csv(path, {"default": [0, 1, 1], "learned": [0, 0, 0]},
                            bins=[0, 1, 2])
        with open(path) as handle:
            lines = handle.read().splitlines()
        assert lines[0] == "bin_low,bin_high,default,learned"
        assert lines[1].endswith("1,3")
        with pytest.raises(ValueError):
            write_histogram_csv(path, {"x": [1.0]}, bins=[0])

    def test_read_series_rejects_narrow_csv(self, tmp_path):
        path = os.path.join(tmp_path, "narrow.csv")
        with open(path, "w") as handle:
            handle.write("x\n1\n")
        with pytest.raises(ValueError):
            read_series_csv(path)
