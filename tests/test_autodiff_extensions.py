"""Tests for the autodiff extensions: gradcheck, schedules, GRU, LayerNorm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import (GRU, GRUCell, LayerNorm, Linear, LSTM, SGD, Adam,
                            CosineAnnealingLR, ExponentialLR, LinearWarmup, StepLR, Tensor)
from repro.autodiff.gradcheck import (GradCheckResult, analytic_gradients,
                                      assert_gradients_close, gradcheck, numeric_gradient)


# ----------------------------------------------------------------------
# Gradient checking utilities
# ----------------------------------------------------------------------
class TestGradcheck:
    def test_matches_for_simple_polynomial(self):
        x = Tensor(np.array([1.0, -2.0, 3.0]), requires_grad=True)

        def function(inputs):
            (value,) = inputs
            return (value * value * 2.0 + value).sum()

        results = gradcheck(function, [x])
        assert results[0].passed()
        np.testing.assert_allclose(results[0].analytic, 4.0 * x.data + 1.0, atol=1e-6)

    def test_detects_incorrect_gradient(self):
        x = Tensor(np.array([0.5, 1.5]), requires_grad=True)

        class _Broken:
            """A forward whose hand-written backward is deliberately wrong."""

            def __call__(self, inputs):
                (value,) = inputs
                data = value.data * 3.0

                def backward(grad):
                    value._accumulate(grad * 2.0)  # wrong: should be 3.0

                return Tensor._make(data, (value,), backward)

        results = gradcheck(_Broken(), [x])
        assert not results[0].passed()

    def test_only_checks_tensors_requiring_grad(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        constant = Tensor(np.array([3.0, 4.0]), requires_grad=False)

        def function(inputs):
            return (inputs[0] * inputs[1]).sum()

        results = gradcheck(function, [x, constant])
        assert 0 in results and 1 not in results

    def test_numeric_gradient_of_product(self):
        x = Tensor(np.array([2.0, 5.0]), requires_grad=True)
        y = Tensor(np.array([7.0, -1.0]), requires_grad=True)

        def function(inputs):
            return (inputs[0] * inputs[1]).sum()

        numeric = numeric_gradient(function, [x, y], 0)
        np.testing.assert_allclose(numeric, y.data, atol=1e-4)

    def test_analytic_gradients_returns_none_for_unused_input(self):
        used = Tensor(np.array([1.0]), requires_grad=True)
        unused = Tensor(np.array([1.0]), requires_grad=True)

        def function(inputs):
            return inputs[0] * 2.0

        gradients = analytic_gradients(function, [used, unused])
        assert gradients[0] is not None
        assert gradients[1] is None

    def test_assert_gradients_close_raises_on_mismatch(self):
        x = Tensor(np.array([1.0]), requires_grad=True)

        class _Broken:
            def __call__(self, inputs):
                (value,) = inputs
                data = value.data * 5.0

                def backward(grad):
                    value._accumulate(grad * 0.0)

                return Tensor._make(data, (value,), backward)

        with pytest.raises(AssertionError):
            assert_gradients_close(_Broken(), [x])

    def test_assert_gradients_close_passes_for_linear_layer(self):
        rng = np.random.default_rng(3)
        layer = Linear(4, 3, rng=rng)
        x = Tensor(rng.normal(size=4), requires_grad=True)

        def function(inputs):
            return layer(inputs[0]).sum()

        assert_gradients_close(function, [x] + layer.parameters(), epsilon=1e-5,
                               absolute_tolerance=1e-4)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=-3.0, max_value=3.0), min_size=1, max_size=6))
    def test_gradcheck_elementwise_chain_property(self, values):
        x = Tensor(np.array(values), requires_grad=True)

        def function(inputs):
            return (inputs[0].tanh() * 2.0 + inputs[0].sigmoid()).sum()

        results = gradcheck(function, [x], epsilon=1e-5)
        assert results[0].passed(absolute_tolerance=1e-4, relative_tolerance=1e-2)

    def test_result_passed_uses_either_tolerance(self):
        result = GradCheckResult(max_absolute_error=1e-9, max_relative_error=1.0,
                                 analytic=np.zeros(1), numeric=np.zeros(1))
        assert result.passed()
        result = GradCheckResult(max_absolute_error=1.0, max_relative_error=1e-9,
                                 analytic=np.zeros(1), numeric=np.zeros(1))
        assert result.passed()
        result = GradCheckResult(max_absolute_error=1.0, max_relative_error=1.0,
                                 analytic=np.zeros(1), numeric=np.zeros(1))
        assert not result.passed()


# ----------------------------------------------------------------------
# Learning-rate schedules
# ----------------------------------------------------------------------
def _make_optimizer(lr=0.1):
    parameter = Tensor(np.zeros(3), requires_grad=True)
    return SGD([parameter], lr=lr)


class TestSchedules:
    def test_step_lr_halves_every_period(self):
        optimizer = _make_optimizer(lr=0.8)
        schedule = StepLR(optimizer, step_size=2, gamma=0.5)
        rates = [schedule.step() for _ in range(6)]
        assert rates[0] == pytest.approx(0.8)
        assert rates[1] == pytest.approx(0.4)
        assert rates[3] == pytest.approx(0.2)
        assert rates[5] == pytest.approx(0.1)
        assert optimizer.lr == pytest.approx(0.1)

    def test_exponential_lr_decays_geometrically(self):
        optimizer = _make_optimizer(lr=1.0)
        schedule = ExponentialLR(optimizer, gamma=0.9)
        rates = schedule.history(4)
        np.testing.assert_allclose(rates, [0.9, 0.81, 0.729, 0.6561])

    def test_cosine_reaches_min_lr_at_the_end(self):
        optimizer = _make_optimizer(lr=0.5)
        schedule = CosineAnnealingLR(optimizer, total_steps=10, min_lr=0.05)
        rates = schedule.history(10)
        assert rates[0] < 0.5
        assert rates[-1] == pytest.approx(0.05)
        assert all(earlier >= later for earlier, later in zip(rates, rates[1:]))

    def test_cosine_clamps_past_total_steps(self):
        optimizer = _make_optimizer(lr=0.5)
        schedule = CosineAnnealingLR(optimizer, total_steps=4, min_lr=0.0)
        for _ in range(8):
            schedule.step()
        assert optimizer.lr == pytest.approx(0.0, abs=1e-12)

    def test_linear_warmup_ramps_then_holds(self):
        optimizer = _make_optimizer(lr=0.4)
        schedule = LinearWarmup(optimizer, warmup_steps=4)
        rates = schedule.history(6)
        np.testing.assert_allclose(rates[:4], [0.1, 0.2, 0.3, 0.4])
        np.testing.assert_allclose(rates[4:], [0.4, 0.4])

    def test_linear_warmup_then_cosine(self):
        optimizer = _make_optimizer(lr=0.4)
        cosine = CosineAnnealingLR(optimizer, total_steps=4, min_lr=0.0)
        schedule = LinearWarmup(optimizer, warmup_steps=2, after=cosine)
        rates = schedule.history(6)
        assert rates[0] == pytest.approx(0.2)
        assert rates[1] == pytest.approx(0.4)
        assert rates[-1] == pytest.approx(0.0, abs=1e-12)

    def test_warmup_rejects_schedule_for_other_optimizer(self):
        first = _make_optimizer()
        second = _make_optimizer()
        other_schedule = StepLR(second, step_size=1)
        with pytest.raises(ValueError):
            LinearWarmup(first, warmup_steps=2, after=other_schedule)

    def test_invalid_hyperparameters_rejected(self):
        optimizer = _make_optimizer()
        with pytest.raises(ValueError):
            StepLR(optimizer, step_size=0)
        with pytest.raises(ValueError):
            ExponentialLR(optimizer, gamma=0.0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(optimizer, total_steps=0)
        with pytest.raises(ValueError):
            LinearWarmup(optimizer, warmup_steps=0)

    def test_scheduler_requires_lr_attribute(self):
        class _NoLR:
            pass

        with pytest.raises(TypeError):
            StepLR(_NoLR(), step_size=1)

    def test_schedule_drives_adam_training(self):
        rng = np.random.default_rng(0)
        weight = Tensor(rng.normal(size=4), requires_grad=True)
        target = np.array([1.0, -1.0, 0.5, 2.0])
        optimizer = Adam([weight], lr=0.1)
        schedule = ExponentialLR(optimizer, gamma=0.97)
        for _ in range(200):
            optimizer.zero_grad()
            loss = ((weight - Tensor(target)) ** 2.0).sum()
            loss.backward()
            optimizer.step()
            schedule.step()
        np.testing.assert_allclose(weight.data, target, atol=1e-2)


# ----------------------------------------------------------------------
# GRU and LayerNorm modules
# ----------------------------------------------------------------------
class TestGRU:
    def test_cell_output_shape_and_range(self):
        cell = GRUCell(5, 7, rng=np.random.default_rng(0))
        hidden = cell.initial_state()
        out = cell(Tensor(np.ones(5)), hidden)
        assert out.shape == (7,)

    def test_gru_final_state_differs_per_sequence(self):
        gru = GRU(3, 4, rng=np.random.default_rng(1))
        sequence_a = [Tensor(np.array([1.0, 0.0, 0.0])), Tensor(np.array([0.0, 1.0, 0.0]))]
        sequence_b = [Tensor(np.array([0.0, 0.0, 1.0]))]
        out_a = gru(sequence_a)
        out_b = gru(sequence_b)
        assert out_a.shape == (4,)
        assert not np.allclose(out_a.data, out_b.data)

    def test_gru_rejects_empty_sequence(self):
        gru = GRU(3, 4)
        with pytest.raises(ValueError):
            gru([])

    def test_forward_all_returns_state_per_element(self):
        gru = GRU(2, 3, rng=np.random.default_rng(2))
        sequence = [Tensor(np.ones(2)) for _ in range(5)]
        states = gru.forward_all(sequence)
        assert len(states) == 5
        assert all(state.shape == (3,) for state in states)

    def test_gru_parameter_count_smaller_than_lstm(self):
        gru = GRU(8, 8)
        lstm = LSTM(8, 8)
        assert gru.num_parameters() < lstm.num_parameters()

    def test_gru_gradients_flow_to_weights(self):
        gru = GRU(2, 3, rng=np.random.default_rng(3))
        sequence = [Tensor(np.array([0.5, -0.5])), Tensor(np.array([1.0, 2.0]))]
        out = gru(sequence).sum()
        out.backward()
        for parameter in gru.parameters():
            assert parameter.grad is not None
            assert np.any(parameter.grad != 0.0)

    def test_gru_cell_gradcheck(self):
        cell = GRUCell(3, 2, rng=np.random.default_rng(4))
        x = Tensor(np.array([0.1, -0.2, 0.3]), requires_grad=True)
        hidden = Tensor(np.array([0.05, -0.05]), requires_grad=True)

        def function(inputs):
            return cell(inputs[0], inputs[1]).sum()

        assert_gradients_close(function, [x, hidden], epsilon=1e-5,
                               absolute_tolerance=1e-4)

    def test_gru_trains_to_remember_last_input(self):
        rng = np.random.default_rng(5)
        gru = GRU(1, 8, rng=rng)
        head = Linear(8, 1, rng=rng)
        optimizer = Adam(gru.parameters() + head.parameters(), lr=0.02)
        for _ in range(150):
            optimizer.zero_grad()
            target = float(rng.uniform(-1.0, 1.0))
            sequence = [Tensor(np.array([float(rng.uniform(-1, 1))])) for _ in range(3)]
            sequence.append(Tensor(np.array([target])))
            prediction = head(gru(sequence))[0]
            loss = (prediction - target) ** 2.0
            loss.backward()
            optimizer.step()
        errors = []
        for _ in range(20):
            target = float(rng.uniform(-1.0, 1.0))
            sequence = [Tensor(np.array([float(rng.uniform(-1, 1))])) for _ in range(3)]
            sequence.append(Tensor(np.array([target])))
            prediction = head(gru(sequence))[0]
            errors.append(abs(prediction.item() - target))
        assert np.mean(errors) < 0.35


class TestLayerNorm:
    def test_output_is_normalized_before_affine(self):
        layer = LayerNorm(6)
        x = Tensor(np.arange(6, dtype=np.float64))
        out = layer(x)
        assert out.shape == (6,)
        assert abs(float(out.data.mean())) < 1e-6
        assert float(out.data.std()) == pytest.approx(1.0, abs=1e-3)

    def test_batch_input_normalized_per_row(self):
        layer = LayerNorm(4)
        x = Tensor(np.array([[1.0, 2.0, 3.0, 4.0], [10.0, 10.0, 10.0, 10.0]]))
        out = layer(x).data
        assert abs(out[0].mean()) < 1e-6
        # A constant row normalizes to zeros (variance epsilon keeps it finite).
        np.testing.assert_allclose(out[1], 0.0, atol=1e-3)

    def test_affine_parameters_are_learnable(self):
        layer = LayerNorm(3)
        assert {name for name, _ in layer.named_parameters()} == {"gain", "bias"}
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        layer(x).sum().backward()
        assert layer.gain.grad is not None
        assert layer.bias.grad is not None

    def test_rejects_wrong_width(self):
        layer = LayerNorm(3)
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros(4)))

    def test_rejects_invalid_size(self):
        with pytest.raises(ValueError):
            LayerNorm(0)

    def test_gradcheck_through_layernorm(self):
        layer = LayerNorm(5)
        x = Tensor(np.array([0.3, -1.2, 0.8, 2.0, -0.4]), requires_grad=True)

        def function(inputs):
            return (layer(inputs[0]) * Tensor(np.arange(5, dtype=np.float64))).sum()

        assert_gradients_close(function, [x], epsilon=1e-5, absolute_tolerance=1e-4)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(min_value=-50.0, max_value=50.0), min_size=2, max_size=8))
    def test_scale_invariance_property(self, values):
        """LayerNorm output is invariant to shifting the input by a constant."""
        layer = LayerNorm(len(values))
        x = np.array(values, dtype=np.float64)
        base = layer(Tensor(x)).data
        shifted = layer(Tensor(x + 100.0)).data
        np.testing.assert_allclose(base, shifted, atol=1e-5)
