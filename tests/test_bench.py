"""Tests for the benchmark-scenario subsystem (repro.bench)."""

import copy
import importlib.util
import json
import os

import pytest

from repro.bench import (DEFAULT_REGISTRY, CompareConfig, DuplicateScenarioError, Runner,
                         RunnerConfig, Scenario, ScenarioRegistry, SchemaError,
                         compare_payloads, jsonify, load_payload, scenario,
                         validate_payload)
from repro.bench.__main__ import main as bench_main
from repro.eval.experiments import SCALE_TIERS, ExperimentScale


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_decorator_registers_and_replaces_function(self):
        registry = ScenarioRegistry()

        @scenario("demo", uarches=("haswell",), tags=("x",), registry=registry)
        def demo(ctx):
            """A demo scenario."""
            return {"value": 1}

        assert isinstance(demo, Scenario)
        assert registry.get("demo") is demo
        assert demo.description == "A demo scenario."
        assert demo.uarches == ("haswell",)

    def test_duplicate_name_raises(self):
        registry = ScenarioRegistry()

        @scenario("demo", registry=registry)
        def first(ctx):
            return {}

        with pytest.raises(DuplicateScenarioError):
            @scenario("demo", registry=registry)
            def second(ctx):
                return {}

    def test_reregistering_same_object_is_idempotent(self):
        registry = ScenarioRegistry()

        @scenario("demo", registry=registry)
        def demo(ctx):
            return {}

        assert registry.register(demo) is demo
        assert len(registry) == 1

    def test_unknown_name_raises_with_known_names(self):
        registry = ScenarioRegistry()
        with pytest.raises(KeyError, match="unknown scenario"):
            registry.get("nope")

    def test_select_by_names_and_tags(self):
        registry = ScenarioRegistry()

        @scenario("a", tags=("ci",), registry=registry)
        def a(ctx):
            return {}

        @scenario("b", tags=("slow",), registry=registry)
        def b(ctx):
            return {}

        assert [s.name for s in registry.select()] == ["a", "b"]
        assert [s.name for s in registry.select(tags=["ci"])] == ["a"]
        assert [s.name for s in registry.select(names=["b"])] == ["b"]

    def test_default_registry_has_the_full_catalog(self):
        expected = {
            "table03_dataset", "table04_main_results", "table05_per_application",
            "table06_global_params", "table08_llvm_sim", "fig02_surrogate_sweep",
            "sec2b_measured_tables", "sec5a_random_tables", "sec6b_writelatency_only",
            "sec6c_case_studies", "ablation_port_groups", "ablation_surrogate",
            "baseline_search", "engine_throughput",
        }
        assert expected.issubset(set(DEFAULT_REGISTRY.names()))

    def test_every_scenario_resolves_every_tier(self):
        for entry in DEFAULT_REGISTRY.all():
            for tier in SCALE_TIERS:
                assert isinstance(entry.scale_for(tier), ExperimentScale)
            with pytest.raises(ValueError):
                entry.scale_for("galactic")


class TestScalePresets:
    def test_tiers_are_ordered_by_size(self):
        smoke = ExperimentScale.for_tier("smoke")
        quick = ExperimentScale.for_tier("quick")
        full = ExperimentScale.for_tier("full")
        assert smoke.num_blocks < quick.num_blocks < full.num_blocks
        assert smoke.opentuner_budget < quick.opentuner_budget < full.opentuner_budget

    def test_describe_is_json_pure(self):
        description = ExperimentScale.smoke().describe()
        json.dumps(description)
        assert description["num_blocks"] == 120
        assert "seed" in description


# ----------------------------------------------------------------------
# Runner end-to-end (two real scenarios at smoke tier)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def smoke_run(tmp_path_factory):
    output_dir = tmp_path_factory.mktemp("bench")
    runner = Runner(RunnerConfig(tier="smoke", suite="testsuite",
                                 output_dir=str(output_dir)), log=None)
    payload = runner.run(names=["sec5a_random_tables", "engine_throughput"])
    path = runner.write(payload)
    return payload, path


class TestRunner:
    def test_payload_is_schema_valid(self, smoke_run):
        payload, _path = smoke_run
        assert validate_payload(payload) is payload
        assert payload["tier"] == "smoke"
        assert payload["suite"] == "testsuite"
        assert set(payload["scenarios"]) == {"sec5a_random_tables", "engine_throughput"}

    def test_file_round_trips_through_loader(self, smoke_run):
        _payload, path = smoke_run
        assert os.path.basename(path) == "BENCH_testsuite.json"
        loaded = load_payload(path)
        assert set(loaded["scenarios"]) == {"sec5a_random_tables", "engine_throughput"}

    def test_entries_carry_scale_and_environment_fingerprint(self, smoke_run):
        payload, _path = smoke_run
        assert payload["environment"]["python"]
        assert payload["environment"]["numpy"]
        for entry in payload["scenarios"].values():
            assert entry["tier"] == "smoke"
            assert entry["scale"]["num_blocks"] > 0
            assert entry["wall_time_seconds"]["min"] > 0
            assert entry["wall_time_seconds"]["rounds"]

    def test_metrics_are_json_pure(self, smoke_run):
        payload, _path = smoke_run
        json.dumps(payload)
        sec5a = payload["scenarios"]["sec5a_random_tables"]["metrics"]
        assert set(sec5a) == {"mean", "std", "min", "max"}
        engine = payload["scenarios"]["engine_throughput"]["metrics"]
        assert engine["speedups_vs_scalar"]["engine_cached"] > 0

    def test_seed_override_reaches_entries_and_scale_fingerprint(self, tmp_path):
        runner = Runner(RunnerConfig(tier="smoke", suite="seeded", seed=7,
                                     output_dir=str(tmp_path)), log=None)
        payload = runner.run(names=["sec5a_random_tables"])
        entry = payload["scenarios"]["sec5a_random_tables"]
        assert entry["seed"] == 7
        assert entry["scale"]["seed"] == 7

    def test_empty_selection_raises(self, tmp_path):
        runner = Runner(RunnerConfig(output_dir=str(tmp_path)), log=None)
        with pytest.raises(ValueError, match="no scenarios selected"):
            runner.run(tags=["no-such-tag"])


# ----------------------------------------------------------------------
# Schema validation and jsonify
# ----------------------------------------------------------------------
class TestSchema:
    def test_missing_top_level_key_raises(self, smoke_run):
        payload, _path = smoke_run
        broken = copy.deepcopy(payload)
        del broken["environment"]
        with pytest.raises(SchemaError, match="environment"):
            validate_payload(broken)

    def test_scenario_entry_problems_are_reported(self, smoke_run):
        payload, _path = smoke_run
        broken = copy.deepcopy(payload)
        del broken["scenarios"]["sec5a_random_tables"]["wall_time_seconds"]
        with pytest.raises(SchemaError, match="wall_time_seconds"):
            validate_payload(broken)

    def test_jsonify_handles_numpy_and_tuples(self):
        import numpy as np

        value = {"a": np.float64(1.5), "b": (np.int32(2), [np.arange(2)]),
                 3: "non-string-key"}
        assert jsonify(value) == {"a": 1.5, "b": [2, [[0, 1]]], "3": "non-string-key"}


# ----------------------------------------------------------------------
# Compare / regression gating
# ----------------------------------------------------------------------
def _payload_with_wall(seconds_by_name, tier="smoke"):
    return {
        "schema_version": 1, "suite": "s", "tier": tier, "workers": 0,
        "environment": {"python": "3", "platform": "p", "numpy": "2", "cpu_count": 1},
        "scenarios": {
            name: {
                "name": name, "description": name, "tier": tier, "seed": 0,
                "workers": 0, "uarches": None, "scale": {"num_blocks": 1},
                "rounds": 1, "warmup": 0,
                "wall_time_seconds": {"rounds": [seconds], "min": seconds,
                                      "mean": seconds},
                "metrics": {"error": 0.5},
            } for name, seconds in seconds_by_name.items()
        },
        "total_wall_time_seconds": sum(seconds_by_name.values()),
    }


class TestCompare:
    def test_identical_payloads_pass(self):
        payload = validate_payload(_payload_with_wall({"a": 1.0, "b": 2.0}))
        report = compare_payloads(payload, payload)
        assert report.ok
        assert "OK" in report.render()

    def test_wall_time_regression_fails(self):
        baseline = _payload_with_wall({"a": 1.0})
        current = _payload_with_wall({"a": 2.5})
        report = compare_payloads(baseline, current)
        assert not report.ok
        assert any("wall time" in failure for failure in report.failures)

    def test_wall_time_within_threshold_passes(self):
        baseline = _payload_with_wall({"a": 1.0})
        current = _payload_with_wall({"a": 1.9})
        assert compare_payloads(baseline, current).ok

    def test_fast_scenarios_are_exempt_from_wall_gating(self):
        baseline = _payload_with_wall({"a": 0.01})
        current = _payload_with_wall({"a": 0.2})  # 20x but below min_seconds
        assert compare_payloads(baseline, current,
                                CompareConfig(min_seconds=0.25)).ok

    def test_missing_scenario_is_a_coverage_regression(self):
        baseline = _payload_with_wall({"a": 1.0, "b": 1.0})
        current = _payload_with_wall({"a": 1.0})
        report = compare_payloads(baseline, current)
        assert any("coverage regression" in failure for failure in report.failures)

    def test_new_scenarios_do_not_fail(self):
        baseline = _payload_with_wall({"a": 1.0})
        current = _payload_with_wall({"a": 1.0, "b": 1.0})
        report = compare_payloads(baseline, current)
        assert report.ok
        assert any("new scenarios" in line for line in report.lines)

    def test_tier_mismatch_always_fails(self):
        baseline = _payload_with_wall({"a": 1.0}, tier="smoke")
        current = _payload_with_wall({"a": 1.0}, tier="quick")
        report = compare_payloads(baseline, current)
        assert any("tier mismatch" in failure for failure in report.failures)

    def test_allow_missing_downgrades_missing_scenarios_to_notes(self):
        baseline = _payload_with_wall({"a": 1.0, "b": 1.0})
        current = _payload_with_wall({"a": 1.0})
        report = compare_payloads(baseline, current,
                                  CompareConfig(allow_missing=True))
        assert report.ok
        assert any("coverage regression" in line for line in report.lines)

    def test_allow_missing_tier_mismatch_skips_wall_gates(self):
        # Cross-tier: 10x slower would normally fail, but wall times at
        # different scales are not comparable, so only coverage is checked.
        baseline = _payload_with_wall({"a": 1.0}, tier="smoke")
        current = _payload_with_wall({"a": 10.0}, tier="quick")
        report = compare_payloads(baseline, current,
                                  CompareConfig(allow_missing=True))
        assert report.ok
        assert any("skipping wall-time gates" in line for line in report.lines)

    def test_allow_missing_still_fails_on_wall_regressions_same_tier(self):
        baseline = _payload_with_wall({"a": 1.0})
        current = _payload_with_wall({"a": 9.0})
        report = compare_payloads(baseline, current,
                                  CompareConfig(allow_missing=True))
        assert not report.ok

    def test_metric_gating_is_opt_in(self):
        baseline = _payload_with_wall({"a": 1.0})
        current = _payload_with_wall({"a": 1.0})
        current["scenarios"]["a"]["metrics"]["error"] = 5.0
        assert compare_payloads(baseline, current).ok  # informational only
        report = compare_payloads(baseline, current,
                                  CompareConfig(max_metric_ratio=0.5))
        assert any("metric" in failure for failure in report.failures)

    def test_many_small_regressions_fail_via_the_suite_total(self):
        baseline = _payload_with_wall({"a": 0.1, "b": 0.1, "c": 0.1})
        current = _payload_with_wall({"a": 1.0, "b": 1.0, "c": 1.0})
        report = compare_payloads(baseline, current,
                                  CompareConfig(min_seconds=0.25))
        # Each scenario is individually exempt (baseline < min_seconds)...
        assert not any("'a'" in failure for failure in report.failures)
        # ...but the 10x suite total is gated.
        assert any("suite total" in failure for failure in report.failures)

    def test_environment_mismatch_warns_but_does_not_fail(self):
        baseline = _payload_with_wall({"a": 1.0})
        current = _payload_with_wall({"a": 1.0})
        current["environment"]["cpu_count"] = 64
        report = compare_payloads(baseline, current)
        assert report.ok
        assert any("environment differs" in line for line in report.lines)

    def test_disappearing_metric_fails(self):
        baseline = _payload_with_wall({"a": 1.0})
        current = _payload_with_wall({"a": 1.0})
        current["scenarios"]["a"]["metrics"] = {}
        report = compare_payloads(baseline, current)
        assert any("disappeared" in failure for failure in report.failures)


# ----------------------------------------------------------------------
# Command-line entry points
# ----------------------------------------------------------------------
class TestCommandLine:
    def test_list_prints_catalog(self, capsys):
        assert bench_main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table04_main_results" in output
        assert "engine_throughput" in output

    def test_list_filters_by_tag(self, capsys):
        assert bench_main(["list", "--tag", "perf"]) == 0
        output = capsys.readouterr().out
        assert "engine_throughput" in output
        assert "table04_main_results" not in output

    def test_run_and_compare_round_trip(self, tmp_path, capsys):
        code = bench_main(["run", "sec5a_random_tables", "--tier", "smoke",
                           "--suite", "clitest", "--output-dir", str(tmp_path)])
        assert code == 0
        path = os.path.join(str(tmp_path), "BENCH_clitest.json")
        assert os.path.exists(path)
        capsys.readouterr()
        assert bench_main(["compare", path, path]) == 0
        assert "OK: no regressions" in capsys.readouterr().out

    def test_compare_exit_code_on_regression(self, tmp_path, capsys):
        baseline = _payload_with_wall({"a": 1.0, "b": 1.0})
        current = _payload_with_wall({"a": 9.0})
        base_path = os.path.join(str(tmp_path), "BENCH_base.json")
        current_path = os.path.join(str(tmp_path), "BENCH_current.json")
        json.dump(baseline, open(base_path, "w"))
        json.dump(current, open(current_path, "w"))
        assert bench_main(["compare", base_path, current_path]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_compare_allow_missing_tolerates_absent_baseline(self, tmp_path, capsys):
        current = _payload_with_wall({"a": 1.0})
        current_path = os.path.join(str(tmp_path), "BENCH_current.json")
        json.dump(current, open(current_path, "w"))
        missing = os.path.join(str(tmp_path), "BENCH_nope.json")
        assert bench_main(["compare", missing, current_path,
                           "--allow-missing"]) == 0
        assert "does not exist" in capsys.readouterr().out
        # Without the flag the missing file is still an error.
        with pytest.raises(FileNotFoundError):
            bench_main(["compare", missing, current_path])

    def test_compare_allow_missing_still_validates_current(self, tmp_path):
        # A green gate must mean the produced results were at least readable
        # and schema-valid, even when the baseline is tolerated as absent.
        broken = os.path.join(str(tmp_path), "BENCH_broken.json")
        open(broken, "w").write("{\"not\": \"a payload\"}")
        missing = os.path.join(str(tmp_path), "BENCH_nope.json")
        with pytest.raises(Exception):
            bench_main(["compare", missing, broken, "--allow-missing"])

    def test_main_cli_forwards_bench(self, capsys):
        from repro import cli

        assert cli.main(["bench", "list", "--tag", "perf"]) == 0
        assert "engine_throughput" in capsys.readouterr().out

    def test_committed_baseline_is_schema_valid(self):
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        baseline_path = os.path.join(repo_root, "benchmarks", "baselines",
                                     "BENCH_smoke.json")
        baseline = load_payload(baseline_path)
        assert baseline["tier"] == "smoke"
        ci_names = {entry.name for entry in DEFAULT_REGISTRY.select(tags=["ci"])}
        assert set(baseline["scenarios"]) == ci_names


# ----------------------------------------------------------------------
# The pytest-compatibility shim in benchmarks/conftest.py
# ----------------------------------------------------------------------
@pytest.fixture()
def bench_conftest(tmp_path, monkeypatch):
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    spec = importlib.util.spec_from_file_location(
        "bench_conftest_under_test",
        os.path.join(repo_root, "benchmarks", "conftest.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "RESULTS_DIRECTORY", str(tmp_path))
    return module


class TestRecordResultShim:
    def test_record_result_stamps_scale_and_seed(self, bench_conftest, tmp_path):
        bench_conftest.record_result("demo", {"error": 0.25}, tier="smoke")
        with open(os.path.join(str(tmp_path), "demo.json")) as handle:
            document = json.load(handle)
        assert document["name"] == "demo"
        assert document["tier"] == "smoke"
        assert document["seed"] == 0
        assert document["scale"]["num_blocks"] == 120
        assert document["results"] == {"error": 0.25}

    def test_record_result_jsonifies_numpy_payloads(self, bench_conftest, tmp_path):
        import numpy as np

        bench_conftest.record_result("arrays", {"values": np.arange(3)}, tier="smoke")
        with open(os.path.join(str(tmp_path), "arrays.json")) as handle:
            document = json.load(handle)
        assert document["results"] == {"values": [0, 1, 2]}

    def test_benchmark_scale_matches_quick_tier(self, bench_conftest):
        assert (bench_conftest.benchmark_scale().describe()
                == ExperimentScale.quick().describe())
