"""Property-based invariants of the llvm-mca style simulator.

These are the monotonicity and consistency properties that make gradient-based
parameter optimization meaningful at all: making an instruction slower (higher
WriteLatency, more port cycles, more micro-ops) must never make the simulated
block faster, and widening global resources (DispatchWidth,
ReorderBufferSize) must never make it slower.  DiffTune's surrogate learns a
smooth approximation of exactly these monotone responses (Figure 2), so the
original simulator violating them would silently break phase-2 optimization.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bhive.generator import BlockGenerator
from repro.llvm_mca import MCASimulator
from repro.targets import HASWELL
from repro.targets.defaults import build_default_mca_table


@pytest.fixture(scope="module")
def default_table():
    return build_default_mca_table(HASWELL)


@pytest.fixture(scope="module")
def generated_blocks():
    generator = BlockGenerator(seed=123)
    return generator.generate_blocks(12)


def _timing(table, block):
    return MCASimulator(table).predict_timing(block)


block_index = st.integers(min_value=0, max_value=11)


class TestMonotonicity:
    @settings(max_examples=25, deadline=None)
    @given(index=block_index, extra=st.integers(min_value=1, max_value=12))
    def test_increasing_write_latency_never_speeds_up(self, index, extra, default_table,
                                                      generated_blocks):
        block = generated_blocks[index]
        base = _timing(default_table, block)
        slower = default_table.copy()
        slower.write_latency = slower.write_latency + extra
        assert _timing(slower, block) >= base - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(index=block_index, extra=st.integers(min_value=1, max_value=4))
    def test_increasing_port_occupancy_never_speeds_up(self, index, extra, default_table,
                                                       generated_blocks):
        block = generated_blocks[index]
        base = _timing(default_table, block)
        slower = default_table.copy()
        occupied = slower.port_map > 0
        slower.port_map = slower.port_map + occupied.astype(np.int64) * extra
        assert _timing(slower, block) >= base - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(index=block_index, extra=st.integers(min_value=1, max_value=6))
    def test_increasing_micro_ops_never_speeds_up(self, index, extra, default_table,
                                                  generated_blocks):
        block = generated_blocks[index]
        base = _timing(default_table, block)
        slower = default_table.copy()
        slower.num_micro_ops = slower.num_micro_ops + extra
        assert _timing(slower, block) >= base - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(index=block_index, width=st.integers(min_value=1, max_value=9))
    def test_wider_dispatch_does_not_meaningfully_slow_down(self, index, width,
                                                            default_table, generated_blocks):
        """Widening dispatch by one slot never costs more than a fraction of a cycle.

        The dispatch stage packs whole micro-ops into integer-width slots, so
        adjacent widths can differ by one packing decision (the same staircase
        llvm-mca itself exhibits); anything beyond that small discretization
        slack would indicate a real monotonicity bug.
        """
        block = generated_blocks[index]
        narrow = default_table.copy()
        narrow.dispatch_width = width
        wide = default_table.copy()
        wide.dispatch_width = width + 1
        assert _timing(wide, block) <= _timing(narrow, block) + 0.5

    @settings(max_examples=15, deadline=None)
    @given(index=block_index)
    def test_widest_dispatch_never_slower_than_narrowest(self, index, default_table,
                                                         generated_blocks):
        block = generated_blocks[index]
        narrow = default_table.copy()
        narrow.dispatch_width = 1
        wide = default_table.copy()
        wide.dispatch_width = 10
        assert _timing(wide, block) <= _timing(narrow, block) + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(index=block_index, size=st.integers(min_value=20, max_value=200))
    def test_larger_reorder_buffer_never_slows_down(self, index, size, default_table,
                                                    generated_blocks):
        block = generated_blocks[index]
        small = default_table.copy()
        small.reorder_buffer_size = size
        large = default_table.copy()
        large.reorder_buffer_size = size + 64
        assert _timing(large, block) <= _timing(small, block) + 1e-9


class TestConsistency:
    @settings(max_examples=20, deadline=None)
    @given(index=block_index)
    def test_timing_is_deterministic(self, index, default_table, generated_blocks):
        block = generated_blocks[index]
        assert _timing(default_table, block) == _timing(default_table, block)

    @settings(max_examples=20, deadline=None)
    @given(index=block_index)
    def test_timing_is_positive_and_finite(self, index, default_table, generated_blocks):
        timing = _timing(default_table, generated_blocks[index])
        assert np.isfinite(timing)
        assert timing > 0.0

    @settings(max_examples=20, deadline=None)
    @given(index=block_index)
    def test_stage_cycles_are_ordered(self, index, default_table, generated_blocks):
        result = MCASimulator(default_table).simulate(generated_blocks[index])
        for dispatch, issue, retire in zip(result.dispatch_cycles, result.issue_cycles,
                                           result.retire_cycles):
            assert dispatch <= issue <= retire

    @settings(max_examples=20, deadline=None)
    @given(index=block_index)
    def test_retirement_is_in_program_order(self, index, default_table, generated_blocks):
        result = MCASimulator(default_table).simulate(generated_blocks[index])
        retire = result.retire_cycles
        assert all(earlier <= later for earlier, later in zip(retire, retire[1:]))

    @settings(max_examples=10, deadline=None)
    @given(index=block_index)
    def test_zero_latency_zero_ports_is_dispatch_bound(self, index, default_table,
                                                       generated_blocks):
        """With no latencies and no port demand, only DispatchWidth matters."""
        block = generated_blocks[index]
        free = default_table.copy()
        free.write_latency = np.zeros_like(free.write_latency)
        free.read_advance_cycles = np.zeros_like(free.read_advance_cycles)
        free.port_map = np.zeros_like(free.port_map)
        free.num_micro_ops = np.ones_like(free.num_micro_ops)
        timing = _timing(free, block)
        dispatch_bound = len(block) / free.dispatch_width
        assert timing <= dispatch_bound + 1.0 + 1e-9
