"""Property-based invariants of the llvm-mca style simulator.

These are the monotonicity and consistency properties that make gradient-based
parameter optimization meaningful at all: making an instruction slower (higher
WriteLatency, more port cycles, more micro-ops) must never make the simulated
block faster, and widening global resources (DispatchWidth,
ReorderBufferSize) must never make it slower.  DiffTune's surrogate learns a
smooth approximation of exactly these monotone responses (Figure 2), so the
original simulator violating them would silently break phase-2 optimization.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bhive.generator import BlockGenerator
from repro.core.adapters import LLVMSimAdapter, MCAAdapter
from repro.engine import llvm_sim_engine, mca_engine
from repro.llvm_mca import MCASimulator
from repro.llvm_sim.simulator import LLVMSimSimulator
from repro.targets import HASWELL
from repro.targets.defaults import build_default_mca_table


@pytest.fixture(scope="module")
def default_table():
    return build_default_mca_table(HASWELL)


@pytest.fixture(scope="module")
def generated_blocks():
    generator = BlockGenerator(seed=123)
    return generator.generate_blocks(12)


@pytest.fixture(scope="module")
def module_mca_adapter():
    return MCAAdapter(HASWELL)


@pytest.fixture(scope="module")
def module_llvm_sim_adapter():
    return LLVMSimAdapter(HASWELL)


def _timing(table, block):
    return MCASimulator(table).predict_timing(block)


block_index = st.integers(min_value=0, max_value=11)


class TestMonotonicity:
    @settings(max_examples=25, deadline=None)
    @given(index=block_index, extra=st.integers(min_value=1, max_value=12))
    def test_increasing_write_latency_never_speeds_up(self, index, extra, default_table,
                                                      generated_blocks):
        block = generated_blocks[index]
        base = _timing(default_table, block)
        slower = default_table.copy()
        slower.write_latency = slower.write_latency + extra
        assert _timing(slower, block) >= base - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(index=block_index, extra=st.integers(min_value=1, max_value=4))
    def test_increasing_port_occupancy_never_speeds_up(self, index, extra, default_table,
                                                       generated_blocks):
        block = generated_blocks[index]
        base = _timing(default_table, block)
        slower = default_table.copy()
        occupied = slower.port_map > 0
        slower.port_map = slower.port_map + occupied.astype(np.int64) * extra
        assert _timing(slower, block) >= base - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(index=block_index, extra=st.integers(min_value=1, max_value=6))
    def test_increasing_micro_ops_never_speeds_up(self, index, extra, default_table,
                                                  generated_blocks):
        block = generated_blocks[index]
        base = _timing(default_table, block)
        slower = default_table.copy()
        slower.num_micro_ops = slower.num_micro_ops + extra
        assert _timing(slower, block) >= base - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(index=block_index, width=st.integers(min_value=1, max_value=9))
    def test_wider_dispatch_does_not_meaningfully_slow_down(self, index, width,
                                                            default_table, generated_blocks):
        """Widening dispatch by one slot never costs more than a fraction of a cycle.

        The dispatch stage packs whole micro-ops into integer-width slots, so
        adjacent widths can differ by one packing decision (the same staircase
        llvm-mca itself exhibits); anything beyond that small discretization
        slack would indicate a real monotonicity bug.
        """
        block = generated_blocks[index]
        narrow = default_table.copy()
        narrow.dispatch_width = width
        wide = default_table.copy()
        wide.dispatch_width = width + 1
        assert _timing(wide, block) <= _timing(narrow, block) + 0.5

    @settings(max_examples=15, deadline=None)
    @given(index=block_index)
    def test_widest_dispatch_never_slower_than_narrowest(self, index, default_table,
                                                         generated_blocks):
        block = generated_blocks[index]
        narrow = default_table.copy()
        narrow.dispatch_width = 1
        wide = default_table.copy()
        wide.dispatch_width = 10
        assert _timing(wide, block) <= _timing(narrow, block) + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(index=block_index, size=st.integers(min_value=20, max_value=200))
    def test_larger_reorder_buffer_never_slows_down(self, index, size, default_table,
                                                    generated_blocks):
        block = generated_blocks[index]
        small = default_table.copy()
        small.reorder_buffer_size = size
        large = default_table.copy()
        large.reorder_buffer_size = size + 64
        assert _timing(large, block) <= _timing(small, block) + 1e-9


class TestConsistency:
    @settings(max_examples=20, deadline=None)
    @given(index=block_index)
    def test_timing_is_deterministic(self, index, default_table, generated_blocks):
        block = generated_blocks[index]
        assert _timing(default_table, block) == _timing(default_table, block)

    @settings(max_examples=20, deadline=None)
    @given(index=block_index)
    def test_timing_is_positive_and_finite(self, index, default_table, generated_blocks):
        timing = _timing(default_table, generated_blocks[index])
        assert np.isfinite(timing)
        assert timing > 0.0

    @settings(max_examples=20, deadline=None)
    @given(index=block_index)
    def test_stage_cycles_are_ordered(self, index, default_table, generated_blocks):
        result = MCASimulator(default_table).simulate(generated_blocks[index])
        for dispatch, issue, retire in zip(result.dispatch_cycles, result.issue_cycles,
                                           result.retire_cycles):
            assert dispatch <= issue <= retire

    @settings(max_examples=20, deadline=None)
    @given(index=block_index)
    def test_retirement_is_in_program_order(self, index, default_table, generated_blocks):
        result = MCASimulator(default_table).simulate(generated_blocks[index])
        retire = result.retire_cycles
        assert all(earlier <= later for earlier, later in zip(retire, retire[1:]))

    @settings(max_examples=10, deadline=None)
    @given(index=block_index)
    def test_zero_latency_zero_ports_is_dispatch_bound(self, index, default_table,
                                                       generated_blocks):
        """With no latencies and no port demand, only DispatchWidth matters."""
        block = generated_blocks[index]
        free = default_table.copy()
        free.write_latency = np.zeros_like(free.write_latency)
        free.read_advance_cycles = np.zeros_like(free.read_advance_cycles)
        free.port_map = np.zeros_like(free.port_map)
        free.num_micro_ops = np.ones_like(free.num_micro_ops)
        timing = _timing(free, block)
        dispatch_bound = len(block) / free.dispatch_width
        assert timing <= dispatch_bound + 1.0 + 1e-9


class TestEngineEquivalence:
    """The engine's batched / cached / parallel paths must be *bit-identical*
    to calling the simulators directly: the engine only reorganizes when and
    where simulations run (compile sharing, result caching, process fan-out),
    never what they compute.  Any drift here would silently decouple the
    searchers and dataset collection from the simulator they claim to tune.
    """

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_mca_batched_and_cached_match_direct(self, seed, module_mca_adapter,
                                                 generated_blocks):
        adapter = module_mca_adapter
        rng = np.random.default_rng(seed)
        tables = [adapter.table_from_arrays(adapter.parameter_spec().sample(rng))
                  for _ in range(2)]
        direct = np.stack([MCASimulator(table).predict_many(generated_blocks)
                           for table in tables])
        engine = mca_engine()
        batched = engine.run(tables, generated_blocks)
        assert np.array_equal(batched, direct)
        cached = engine.run(tables, generated_blocks)
        assert np.array_equal(cached, direct)
        assert engine.stats["result_hits"] >= direct.size

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_llvm_sim_batched_and_cached_match_direct(self, seed, module_llvm_sim_adapter,
                                                      generated_blocks):
        adapter = module_llvm_sim_adapter
        rng = np.random.default_rng(seed)
        tables = [adapter.table_from_arrays(adapter.parameter_spec().sample(rng))
                  for _ in range(2)]
        direct = np.stack([
            LLVMSimSimulator(table,
                             frontend_uops_per_cycle=HASWELL.dispatch_width
                             ).predict_many(generated_blocks)
            for table in tables])
        engine = llvm_sim_engine(frontend_uops_per_cycle=HASWELL.dispatch_width)
        assert np.array_equal(engine.run(tables, generated_blocks), direct)
        assert np.array_equal(engine.run(tables, generated_blocks), direct)

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_adapter_predict_timings_matches_direct(self, seed, module_mca_adapter,
                                                    generated_blocks):
        adapter = module_mca_adapter
        rng = np.random.default_rng(seed)
        arrays = adapter.parameter_spec().sample(rng)
        direct = MCASimulator(adapter.table_from_arrays(arrays)).predict_many(generated_blocks)
        assert np.array_equal(adapter.predict_timings(arrays, generated_blocks), direct)

    def test_parallel_execution_matches_direct(self, module_mca_adapter, generated_blocks):
        """The multiprocessing executor returns the same matrix, in the same
        deterministic (table-row, block-column) order, as direct calls."""
        adapter = module_mca_adapter
        rng = np.random.default_rng(2024)
        tables = [adapter.table_from_arrays(adapter.parameter_spec().sample(rng))
                  for _ in range(3)]
        direct = np.stack([MCASimulator(table).predict_many(generated_blocks)
                           for table in tables])
        parallel = mca_engine(num_workers=2)
        assert np.array_equal(parallel.run(tables, generated_blocks), direct)
        assert parallel.stats["parallel_batches"] == 1
        # A second run is served from the cache without another fan-out.
        assert np.array_equal(parallel.run(tables, generated_blocks), direct)
        assert parallel.stats["parallel_batches"] == 1

    def test_parallel_dataset_collection_is_seed_identical(self, generated_blocks):
        """collect_simulated_dataset with engine workers draws the same rng
        sequence and produces the same examples as the serial path."""
        from repro.core.simulated_dataset import collect_simulated_dataset

        def collect(workers):
            adapter = MCAAdapter(HASWELL, narrow_sampling=True, engine_workers=workers)
            return collect_simulated_dataset(adapter, generated_blocks, 40,
                                             np.random.default_rng(17), blocks_per_table=6)

        serial = collect(0)
        parallel = collect(2)
        assert [(e.block_index, e.simulated_timing) for e in serial] == \
            [(e.block_index, e.simulated_timing) for e in parallel]
        assert all(np.array_equal(s.arrays.per_instruction_values,
                                  p.arrays.per_instruction_values)
                   for s, p in zip(serial, parallel))

    def test_parallel_llvm_sim_matches_direct(self, module_llvm_sim_adapter,
                                              generated_blocks):
        adapter = module_llvm_sim_adapter
        rng = np.random.default_rng(2025)
        tables = [adapter.table_from_arrays(adapter.parameter_spec().sample(rng))
                  for _ in range(2)]
        direct = np.stack([
            LLVMSimSimulator(table,
                             frontend_uops_per_cycle=HASWELL.dispatch_width
                             ).predict_many(generated_blocks)
            for table in tables])
        parallel = llvm_sim_engine(frontend_uops_per_cycle=HASWELL.dispatch_width,
                                   num_workers=2)
        assert np.array_equal(parallel.run(tables, generated_blocks), direct)
