"""The batched phase-two fast path vs the per-block reference.

The contract (ISSUE 4 tentpole): batched and per-block table optimization
agree within 1e-9 in per-epoch loss — frozen masks included — so flipping
``TableOptimizationConfig(batched=...)`` changes throughput and nothing
else.  A hypothesis property test drives the comparison over random block
subsets, seeds, and frozen-mask settings; deterministic tests cover each
surrogate variant, the scatter-add/frozen-mask interaction, the automatic
fallback for surrogates without ``forward_batch``, and the once-per-run
featurization of the per-block path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bhive import BlockGenerator
from repro.core.adapters import MCAAdapter
from repro.core.surrogate import SurrogateConfig, build_surrogate
from repro.core.surrogate import BlockFeaturizer, PooledSurrogate
from repro.core.table_optimization import (TableOptimizationConfig,
                                           optimize_parameter_table)
from repro.targets import HASWELL

EQUIVALENCE_ATOL = 1e-9


@pytest.fixture(scope="module")
def adapter():
    return MCAAdapter(HASWELL, narrow_sampling=True)


@pytest.fixture(scope="module")
def blocks():
    return BlockGenerator(seed=11).generate_blocks(12)


@pytest.fixture(scope="module")
def timings(blocks):
    return np.linspace(1.0, 3.0, len(blocks))


def _build(adapter, kind, seed=0):
    config = SurrogateConfig(kind=kind, embedding_size=8, hidden_size=12,
                             num_lstm_layers=2, seed=seed)
    return build_surrogate(adapter.parameter_spec(), BlockFeaturizer(adapter.opcode_table),
                           config)


def _writelatency_masks(spec):
    """Freeze everything except WriteLatency (the Section VI-B setting)."""
    per_mask = np.ones(spec.per_instruction_dim, dtype=bool)
    per_mask[spec.per_instruction_field_slice("WriteLatency")] = False
    global_mask = np.ones(spec.global_dim, dtype=bool)
    return per_mask, global_mask


def _both_paths(adapter, kind, blocks, timings, config_kwargs, frozen=False,
                initial_seed=1):
    spec = adapter.parameter_spec()
    initial = spec.sample(np.random.default_rng(initial_seed))
    masks = _writelatency_masks(spec) if frozen else (None, None)
    results = {}
    for batched in (False, True):
        surrogate = _build(adapter, kind)
        results[batched] = optimize_parameter_table(
            surrogate, blocks, timings,
            TableOptimizationConfig(batched=batched, **config_kwargs),
            initial_arrays=initial,
            frozen_per_instruction_mask=masks[0],
            frozen_global_mask=masks[1])
    return initial, results[False], results[True]


class TestEpochLossEquivalence:
    @pytest.mark.parametrize("kind", ["pooled", "analytical", "ithemal"])
    def test_losses_and_learned_tables_match(self, adapter, blocks, timings, kind):
        _initial, scalar, batched = _both_paths(
            adapter, kind, blocks, timings,
            dict(learning_rate=0.05, batch_size=5, epochs=3, seed=0))
        assert scalar.used_batched_path is False
        assert batched.used_batched_path is True
        np.testing.assert_allclose(batched.epoch_losses, scalar.epoch_losses,
                                   atol=EQUIVALENCE_ATOL, rtol=0)
        np.testing.assert_allclose(batched.learned_arrays.per_instruction_values,
                                   scalar.learned_arrays.per_instruction_values,
                                   atol=1e-8, rtol=0)
        np.testing.assert_allclose(batched.learned_arrays.global_values,
                                   scalar.learned_arrays.global_values,
                                   atol=1e-8, rtol=0)

    @settings(max_examples=8, deadline=None)
    @given(subset_seed=st.integers(0, 2 ** 16), num_blocks=st.integers(2, 8),
           batch_size=st.integers(1, 7), seed=st.integers(0, 2 ** 16),
           frozen=st.booleans())
    def test_property_epoch_losses_match(self, adapter, blocks, timings,
                                         subset_seed, num_blocks, batch_size,
                                         seed, frozen):
        picker = np.random.default_rng(subset_seed)
        chosen = picker.choice(len(blocks), size=num_blocks, replace=False)
        chosen_blocks = [blocks[int(index)] for index in chosen]
        chosen_timings = timings[chosen]
        _initial, scalar, batched = _both_paths(
            adapter, "pooled", chosen_blocks, chosen_timings,
            dict(learning_rate=0.05, batch_size=batch_size, epochs=2, seed=seed),
            frozen=frozen, initial_seed=seed + 1)
        np.testing.assert_allclose(batched.epoch_losses, scalar.epoch_losses,
                                   atol=EQUIVALENCE_ATOL, rtol=0)


class TestFrozenMasks:
    def test_frozen_dims_do_not_drift_through_scatter_add(self, adapter, blocks,
                                                          timings):
        """Regression (ISSUE 4 satellite): batched gradients scatter-add into
        whole table rows, so frozen dimensions would drift if restoration
        missed them — they must end exactly at their initial values."""
        spec = adapter.parameter_spec()
        initial, scalar, batched = _both_paths(
            adapter, "pooled", blocks, timings,
            dict(learning_rate=0.1, batch_size=4, epochs=2, seed=0), frozen=True)
        for result in (scalar, batched):
            per_mask, global_mask = _writelatency_masks(spec)
            np.testing.assert_array_equal(
                result.learned_arrays.per_instruction_values[:, per_mask],
                initial.per_instruction_values[:, per_mask])
            np.testing.assert_array_equal(result.learned_arrays.global_values,
                                          initial.global_values)
        # ... while the learnable dimensions actually moved.
        latency = spec.per_instruction_field_slice("WriteLatency")
        assert not np.allclose(
            batched.learned_arrays.per_instruction_values[:, latency],
            initial.per_instruction_values[:, latency])

    def test_frozen_epoch_losses_match_between_paths(self, adapter, blocks, timings):
        _initial, scalar, batched = _both_paths(
            adapter, "analytical", blocks, timings,
            dict(learning_rate=0.05, batch_size=4, epochs=2, seed=3), frozen=True)
        np.testing.assert_allclose(batched.epoch_losses, scalar.epoch_losses,
                                   atol=EQUIVALENCE_ATOL, rtol=0)


class TestExecutionPathSelection:
    def test_fallback_without_forward_batch(self, adapter, blocks, timings):
        class NoBatchSurrogate(PooledSurrogate):
            supports_batched_forward = False

        spec = adapter.parameter_spec()
        surrogate = NoBatchSurrogate(spec, BlockFeaturizer(adapter.opcode_table),
                                     SurrogateConfig(kind="pooled", embedding_size=8,
                                                     hidden_size=12))
        result = optimize_parameter_table(
            surrogate, blocks, timings,
            TableOptimizationConfig(batch_size=4, epochs=1, batched=True))
        assert result.used_batched_path is False

    def test_batched_off_by_config(self, adapter, blocks, timings):
        surrogate = _build(adapter, "pooled")
        result = optimize_parameter_table(
            surrogate, blocks, timings,
            TableOptimizationConfig(batch_size=4, epochs=1, batched=False))
        assert result.used_batched_path is False
        assert result.examples_per_second > 0

    def test_per_block_path_featurizes_each_block_once(self, adapter, blocks,
                                                       timings):
        """Regression (ISSUE 4 satellite): featurization is hoisted out of the
        epoch loop, so a multi-epoch run hits the featurizer once per block."""
        surrogate = _build(adapter, "pooled")
        calls = []
        original = surrogate.featurizer.featurize

        def counting_featurize(block):
            calls.append(block)
            return original(block)

        surrogate.featurizer.featurize = counting_featurize
        optimize_parameter_table(
            surrogate, blocks, timings,
            TableOptimizationConfig(batch_size=4, epochs=3, batched=False))
        assert len(calls) == len(blocks)


class TestProgressCallback:
    def test_progress_fires_every_batch_by_default(self, adapter, blocks, timings):
        surrogate = _build(adapter, "pooled")
        seen = []
        optimize_parameter_table(
            surrogate, blocks, timings,
            TableOptimizationConfig(batch_size=5, epochs=2),
            progress=lambda epoch, batch, loss: seen.append((epoch, batch)))
        batches_per_epoch = -(-len(blocks) // 5)
        assert seen == [(epoch, batch) for epoch in range(2)
                        for batch in range(batches_per_epoch)]

    def test_log_every_zero_disables_progress(self, adapter, blocks, timings):
        surrogate = _build(adapter, "pooled")
        seen = []
        optimize_parameter_table(
            surrogate, blocks, timings,
            TableOptimizationConfig(batch_size=5, epochs=1, log_every=0),
            progress=lambda epoch, batch, loss: seen.append((epoch, batch)))
        assert seen == []
