"""Gradient checks and equivalence tests for the batched autodiff primitives.

The batched surrogate-training fast path leans on four new pieces of the
autodiff engine: stacked (batch) matmul broadcasting, per-row gather with
scatter-add gradients, masked reductions over ragged (padded) batches, and
masked batch-major LSTM stepping.  Every primitive is validated against
central finite differences via :mod:`repro.autodiff.gradcheck`, and the
batched LSTM is pinned to the per-example path.
"""

import numpy as np
import pytest

from repro.autodiff import functional as F
from repro.autodiff.gradcheck import assert_gradients_close
from repro.autodiff.modules import LSTM, Embedding, StackedLSTM
from repro.autodiff.tensor import Tensor, gather, masked_mean, masked_sum


@pytest.fixture
def generator():
    return np.random.default_rng(42)


class TestStackedMatmul:
    def test_batched_times_shared_matrix(self, generator):
        a = Tensor(generator.normal(size=(3, 4, 5)), requires_grad=True)
        b = Tensor(generator.normal(size=(5, 2)), requires_grad=True)
        out = a.matmul(b)
        assert out.shape == (3, 4, 2)
        assert_gradients_close(lambda inputs: inputs[0].matmul(inputs[1]).sum(), [a, b])

    def test_batched_times_batched(self, generator):
        a = Tensor(generator.normal(size=(3, 4, 5)), requires_grad=True)
        b = Tensor(generator.normal(size=(3, 5, 2)), requires_grad=True)
        assert_gradients_close(lambda inputs: inputs[0].matmul(inputs[1]).sum(), [a, b])

    def test_shared_matrix_times_batched(self, generator):
        a = Tensor(generator.normal(size=(4, 5)), requires_grad=True)
        b = Tensor(generator.normal(size=(3, 5, 2)), requires_grad=True)
        out = a.matmul(b)
        assert out.shape == (3, 4, 2)
        assert_gradients_close(lambda inputs: inputs[0].matmul(inputs[1]).sum(), [a, b])

    def test_batched_matmul_matches_per_example(self, generator):
        a = generator.normal(size=(6, 3, 5))
        b = generator.normal(size=(5, 4))
        batched = Tensor(a).matmul(Tensor(b)).numpy()
        for row in range(6):
            single = Tensor(a[row]).matmul(Tensor(b)).numpy()
            np.testing.assert_allclose(batched[row], single, atol=1e-12)


class TestGather:
    def test_forward_shape_replaces_axis_with_index_shape(self, generator):
        weight = Tensor(generator.normal(size=(7, 4)))
        out = gather(weight, np.array([[0, 2, 2], [6, 0, 1]]))
        assert out.shape == (2, 3, 4)
        np.testing.assert_array_equal(out.numpy()[0, 1], weight.numpy()[2])

    def test_repeated_indices_accumulate_gradient(self, generator):
        weight = Tensor(generator.normal(size=(5, 3)), requires_grad=True)
        indices = np.array([1, 1, 1, 4])
        gather(weight, indices).sum().backward()
        expected = np.zeros((5, 3))
        expected[1] = 3.0
        expected[4] = 1.0
        np.testing.assert_allclose(weight.grad, expected)

    def test_gradcheck_axis0_and_axis1(self, generator):
        source = Tensor(generator.normal(size=(2, 6, 3)), requires_grad=True)
        indices = np.array([[1, 1], [5, 0]])
        assert_gradients_close(
            lambda inputs: gather(inputs[0], indices, axis=1).sum(), [source])
        assert_gradients_close(
            lambda inputs: gather(inputs[0], np.array([0, 0, 1]), axis=0).sum(),
            [source])

    def test_embedding_accepts_batched_index_arrays(self, generator):
        embedding = Embedding(9, 4, rng=generator)
        ids = np.array([[0, 3], [8, 3]])
        out = embedding(ids)
        assert out.shape == (2, 2, 4)
        gathered = gather(embedding.weight, ids)
        np.testing.assert_allclose(out.numpy(), gathered.numpy())

    def test_embedding_batched_lookup_still_validates_range(self, generator):
        # np.take would silently wrap -1 to the last row; the Embedding
        # module's range check must fire for batched id arrays too.
        embedding = Embedding(9, 4, rng=generator)
        with pytest.raises(IndexError, match="token id out of range"):
            embedding(np.array([[0, -1], [2, 3]]))
        with pytest.raises(IndexError, match="token id out of range"):
            embedding(np.array([[0, 9], [2, 3]]))


class TestMaskedReductions:
    def test_masked_sum_ignores_padding(self, generator):
        values = generator.normal(size=(2, 4, 3))
        mask = np.array([[1.0, 1.0, 0.0, 0.0], [1.0, 1.0, 1.0, 0.0]])[..., None]
        out = masked_sum(Tensor(values), mask, axis=1)
        np.testing.assert_allclose(out.numpy()[0], values[0, :2].sum(axis=0))
        np.testing.assert_allclose(out.numpy()[1], values[1, :3].sum(axis=0))

    def test_masked_mean_divides_by_unmasked_count(self, generator):
        values = generator.normal(size=(2, 4))
        mask = np.array([[1.0, 1.0, 1.0, 0.0], [1.0, 0.0, 0.0, 0.0]])
        out = masked_mean(Tensor(values), mask, axis=1)
        np.testing.assert_allclose(out.numpy()[0], values[0, :3].mean())
        np.testing.assert_allclose(out.numpy()[1], values[1, 0])

    def test_masked_mean_fully_masked_rows_are_zero_not_nan(self, generator):
        values = generator.normal(size=(2, 3))
        mask = np.zeros((2, 3))
        out = masked_mean(Tensor(values), mask, axis=1)
        np.testing.assert_array_equal(out.numpy(), np.zeros(2))

    def test_gradcheck_masked_reductions(self, generator):
        x = Tensor(generator.normal(size=(2, 5, 3)), requires_grad=True)
        mask = (generator.random((2, 5, 1)) > 0.4).astype(np.float64)
        assert_gradients_close(
            lambda inputs: masked_sum(inputs[0], mask, axis=1).sum(), [x])
        assert_gradients_close(
            lambda inputs: masked_mean(inputs[0], mask, axis=1).sum(), [x])
        assert_gradients_close(
            lambda inputs: masked_sum(inputs[0], mask, axis=(1, 2)).sum(), [x])
        assert_gradients_close(
            lambda inputs: masked_sum(inputs[0], mask, axis=1, keepdims=True).sum(),
            [x])

    def test_no_gradient_flows_through_masked_entries(self, generator):
        x = Tensor(generator.normal(size=(4,)), requires_grad=True)
        mask = np.array([1.0, 0.0, 1.0, 0.0])
        masked_sum(x, mask).backward()
        np.testing.assert_array_equal(x.grad, mask)

    def test_functional_wrappers(self, generator):
        values = generator.normal(size=(2, 3))
        mask = np.ones((2, 3))
        np.testing.assert_allclose(F.masked_sum(values, mask).numpy(), values.sum())
        np.testing.assert_allclose(F.masked_mean(values, mask, axis=0).numpy(),
                                   values.mean(axis=0))
        np.testing.assert_allclose(
            F.gather(values, np.array([1, 0])).numpy(), values[[1, 0]])


class TestTupleAxisReductions:
    def test_sum_and_mean_over_axis_tuples(self, generator):
        x = Tensor(generator.normal(size=(2, 5, 3)), requires_grad=True)
        np.testing.assert_allclose(x.sum(axis=(1, 2)).numpy(),
                                   x.numpy().sum(axis=(1, 2)))
        np.testing.assert_allclose(x.mean(axis=(0, 2)).numpy(),
                                   x.numpy().mean(axis=(0, 2)))
        assert_gradients_close(lambda inputs: inputs[0].sum(axis=(0, 2)).sum(), [x])
        assert_gradients_close(lambda inputs: inputs[0].mean(axis=(1, 2)).sum(), [x])


class TestBroadcastTo:
    def test_values_and_gradient_reduction(self, generator):
        x = Tensor(generator.normal(size=(2, 1, 3)), requires_grad=True)
        out = x.broadcast_to((2, 4, 3))
        np.testing.assert_allclose(out.numpy(),
                                   np.broadcast_to(x.numpy(), (2, 4, 3)))
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 1, 3), 4.0))


class TestMaskedBatchLSTM:
    @staticmethod
    def _padded_batch(generator, lengths, width):
        sequences = [generator.normal(size=(length, width)) for length in lengths]
        max_length = max(lengths)
        padded = np.zeros((max_length, len(lengths), width))
        mask = np.zeros((max_length, len(lengths)))
        for column, sequence in enumerate(sequences):
            padded[:len(sequence), column] = sequence
            mask[:len(sequence), column] = 1.0
        steps = [Tensor(padded[position]) for position in range(max_length)]
        return sequences, steps, mask

    def test_final_state_matches_per_example_path(self, generator):
        lstm = LSTM(3, 5, rng=np.random.default_rng(1))
        sequences, steps, mask = self._padded_batch(generator, [4, 1, 6], 3)
        batched = lstm.forward_batch(steps, mask)
        for column, sequence in enumerate(sequences):
            single = lstm([Tensor(row) for row in sequence])
            np.testing.assert_allclose(batched.numpy()[column], single.numpy(),
                                       atol=1e-12)

    def test_stacked_lstm_matches_per_example_path(self, generator):
        stacked = StackedLSTM(3, 4, num_layers=3, rng=np.random.default_rng(2))
        sequences, steps, mask = self._padded_batch(generator, [2, 5, 3], 3)
        batched = stacked.forward_batch(steps, mask)
        for column, sequence in enumerate(sequences):
            single = stacked([Tensor(row) for row in sequence])
            np.testing.assert_allclose(batched.numpy()[column], single.numpy(),
                                       atol=1e-12)

    def test_gradients_match_summed_per_example_losses(self, generator):
        lstm = LSTM(2, 3, rng=np.random.default_rng(3))
        sequences, steps, mask = self._padded_batch(generator, [3, 1], 2)

        lstm.forward_batch(steps, mask).sum().backward()
        batched_grads = {name: parameter.grad.copy()
                         for name, parameter in lstm.named_parameters()}
        lstm.zero_grad()
        for sequence in sequences:
            lstm([Tensor(row) for row in sequence]).sum().backward()
        for name, parameter in lstm.named_parameters():
            np.testing.assert_allclose(batched_grads[name], parameter.grad,
                                       atol=1e-9, err_msg=name)

    def test_mask_shape_validated(self, generator):
        lstm = LSTM(2, 3, rng=np.random.default_rng(4))
        steps = [Tensor(generator.normal(size=(2, 2)))]
        with pytest.raises(ValueError, match="mask covers"):
            lstm.forward_batch(steps, np.ones((3, 2)))
        with pytest.raises(ValueError, match="non-empty"):
            lstm.forward_batch([], np.ones((0, 2)))
