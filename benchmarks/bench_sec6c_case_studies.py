"""Section VI-C — case studies: PUSH64r, XOR32rr (zero idiom), ADD32mr.

Thin wrapper over the registered ``sec6c_case_studies`` scenario
(:mod:`repro.bench.scenarios`); the experiment logic, scale tiers, and
result schema live in ``src/repro/bench/``.  Run it without pytest via::

    PYTHONPATH=src python -m repro.bench run sec6c_case_studies --tier quick
"""

from conftest import run_scenario_benchmark


def bench_sec6c_case_studies(benchmark, bench_runner):
    run_scenario_benchmark(benchmark, bench_runner, "sec6c_case_studies")
