"""Section VI-C — case studies: PUSH64r, XOR32rr (zero idiom), ADD32mr.

For each case-study block the benchmark reports the measured timing, the
default llvm-mca prediction, the prediction with learned WriteLatency values,
and the default/learned latency of the opcode of interest.
"""

from conftest import record_result

from repro.eval.experiments import run_section6c_case_studies
from repro.eval.tables import format_table


def bench_sec6c_case_studies(benchmark, scale, haswell_dataset):
    def run():
        return run_section6c_case_studies(scale, dataset=haswell_dataset)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for case in report:
        rows.append([case.name, f"{case.true_timing:.2f}",
                     f"{case.default_prediction:.2f}", f"{case.learned_prediction:.2f}",
                     case.default_latency, case.learned_latency])
    print("\n" + format_table(
        ["Case", "True", "Default pred", "Learned pred", "Default lat", "Learned lat"], rows,
        title="Section VI-C analogue: case studies (Haswell, WriteLatency-only learning)"))
    record_result("sec6c_case_studies", [case.__dict__ for case in report])
