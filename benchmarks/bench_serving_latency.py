"""Inference-server latency/QPS — sequential vs coalesced-batch serving.

Thin wrapper over the registered ``serving_latency`` scenario
(:mod:`repro.bench.scenarios`): a deployment bundle is exported, served by
the stdlib ``asyncio`` server on an ephemeral port, and load-tested by a
single sequential client and a concurrent client pool; served timings are
checked bit-identical against a direct ``Session.predict``.  Run it without
pytest via::

    python -m repro.bench run serving_latency --tier smoke
"""

from conftest import run_scenario_benchmark


def bench_serving_latency(benchmark, bench_runner):
    run_scenario_benchmark(benchmark, bench_runner, "serving_latency")
