"""Black-box search baselines beyond OpenTuner (Section V-C context).

Table IV compares DiffTune against OpenTuner only; this benchmark adds the
other classic black-box searches implemented in ``repro.baselines`` — genetic
algorithm, simulated annealing, greedy coordinate descent — all given the same
(reduced) evaluation budget, so the Section V-C conclusion ("black-box global
optimization cannot match DiffTune at this budget") is checked against more
than one representative technique.
"""

import numpy as np
from conftest import record_result

from repro.baselines import (AnnealingConfig, CoordinateDescentConfig, CoordinateDescentTuner,
                             GeneticConfig, GeneticTuner, SimulatedAnnealingTuner)
from repro.core import MCAAdapter
from repro.eval.metrics import mean_absolute_percentage_error
from repro.eval.tables import format_table
from repro.targets import HASWELL

#: Shared evaluation budget (block evaluations) for every search technique.
SEARCH_BUDGET = 6000


def bench_baseline_search(benchmark, haswell_dataset):
    train = haswell_dataset.train_examples
    test = haswell_dataset.test_examples
    train_blocks = [example.block for example in train]
    train_timings = np.array([example.timing for example in train])
    test_blocks = [example.block for example in test]
    test_timings = np.array([example.timing for example in test])

    def run():
        adapter = MCAAdapter(HASWELL, narrow_sampling=True)
        results = {}
        genetic = GeneticTuner(adapter, GeneticConfig(
            evaluation_budget=SEARCH_BUDGET, population_size=10,
            blocks_per_evaluation=32, seed=0)).tune(train_blocks, train_timings)
        results["genetic algorithm"] = mean_absolute_percentage_error(
            adapter.predict_timings(genetic.best_arrays, test_blocks), test_timings)
        annealing = SimulatedAnnealingTuner(adapter, AnnealingConfig(
            evaluation_budget=SEARCH_BUDGET, blocks_per_evaluation=32,
            seed=0)).tune(train_blocks, train_timings)
        results["simulated annealing"] = mean_absolute_percentage_error(
            adapter.predict_timings(annealing.best_arrays, test_blocks), test_timings)
        coordinate = CoordinateDescentTuner(adapter, CoordinateDescentConfig(
            evaluation_budget=SEARCH_BUDGET, blocks_per_evaluation=32,
            rounds=2, seed=0)).tune(train_blocks, train_timings)
        results["coordinate descent"] = mean_absolute_percentage_error(
            adapter.predict_timings(coordinate.best_arrays, test_blocks), test_timings)
        default = MCAAdapter(HASWELL)
        results["default parameters"] = mean_absolute_percentage_error(
            default.predict_timings(default.default_arrays(), test_blocks), test_timings)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, f"{error * 100:.1f}%"] for name, error in results.items()]
    print("\n" + format_table(["Search technique", "Test error"], rows,
                              title=f"Black-box search baselines (Haswell, "
                                    f"budget {SEARCH_BUDGET} block evaluations)"))
    record_result("baseline_search", results)
