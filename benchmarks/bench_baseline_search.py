"""Black-box search baselines beyond OpenTuner (Section V-C context).

Thin wrapper over the registered ``baseline_search`` scenario
(:mod:`repro.bench.scenarios`); the experiment logic, scale tiers, and
result schema live in ``src/repro/bench/``.  Run it without pytest via::

    PYTHONPATH=src python -m repro.bench run baseline_search --tier quick
"""

from conftest import run_scenario_benchmark


def bench_baseline_search(benchmark, bench_runner):
    run_scenario_benchmark(benchmark, bench_runner, "baseline_search")
