"""Surrogate-training throughput — per-example loop vs the batched fast path.

Thin wrapper over the registered ``surrogate_training_throughput`` scenario
(:mod:`repro.bench.scenarios`); the workload trains the same seeded pooled
surrogate through both execution paths and reports examples/second for each.
Run it without pytest via::

    python -m repro.bench run surrogate_training_throughput --tier quick
"""

from conftest import run_scenario_benchmark


def bench_surrogate_training_throughput(benchmark, bench_runner):
    run_scenario_benchmark(benchmark, bench_runner, "surrogate_training_throughput")
