"""Section II-B — error of measured min/median/max latency tables on Haswell.

Thin wrapper over the registered ``sec2b_measured_tables`` scenario
(:mod:`repro.bench.scenarios`); the experiment logic, scale tiers, and
result schema live in ``src/repro/bench/``.  Run it without pytest via::

    PYTHONPATH=src python -m repro.bench run sec2b_measured_tables --tier quick
"""

from conftest import run_scenario_benchmark


def bench_sec2b_measured_tables(benchmark, bench_runner):
    run_scenario_benchmark(benchmark, bench_runner, "sec2b_measured_tables")
