"""Section II-B — error of measured min/median/max latency tables on Haswell.

The paper reports 103% / 150% / 218% for min / median / max observed latency,
against 25% for the expert defaults — the measurability argument for learning
parameters from end-to-end data instead of plugging in measurements.
"""

from conftest import record_result

from repro.eval.experiments import run_section2b_measured_tables
from repro.eval.tables import format_table


def bench_sec2b_measured_tables(benchmark, scale):
    def run():
        return run_section2b_measured_tables(num_blocks=scale.num_blocks, seed=scale.seed)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, f"{error * 100:.1f}%"] for name, error in results.items()]
    print("\n" + format_table(["WriteLatency source", "Error"], rows,
                              title="Section II-B analogue: measured-latency tables (Haswell)"))
    record_result("sec2b_measured_tables", results)
