"""Campaign throughput — variants/sec of a grid campaign, cached vs uncached.

Thin wrapper over the registered ``campaign_throughput`` scenario
(:mod:`repro.bench.scenarios`): the same Figure-5 campaign runs repeatedly
through one session, timing an uncached pass (engine result cache cleared)
against a cached rerun (every variant digest an LRU hit), with the reports
asserted byte-identical.  Run it without pytest via::

    PYTHONPATH=src python -m repro.bench run campaign_throughput --tier quick
"""

from conftest import run_scenario_benchmark


def bench_campaign_throughput(benchmark, bench_runner):
    run_scenario_benchmark(benchmark, bench_runner, "campaign_throughput")
