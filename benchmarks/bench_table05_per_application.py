"""Table V — per-application and per-category error on Haswell.

Thin wrapper over the registered ``table05_per_application`` scenario
(:mod:`repro.bench.scenarios`); the experiment logic, scale tiers, and
result schema live in ``src/repro/bench/``.  Run it without pytest via::

    PYTHONPATH=src python -m repro.bench run table05_per_application --tier quick
"""

from conftest import run_scenario_benchmark


def bench_table05_per_application(benchmark, bench_runner):
    run_scenario_benchmark(benchmark, bench_runner, "table05_per_application")
