"""Table V — per-application and per-category error on Haswell."""

from conftest import record_result

from repro.eval.experiments import run_table5
from repro.eval.tables import format_table


def bench_table05_per_application(benchmark, scale, haswell_dataset):
    def run():
        return run_table5(scale, dataset=haswell_dataset)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for group_kind in ("per_application", "per_category"):
        default_groups = results[group_kind]["default"]
        learned_groups = results[group_kind]["learned"]
        for name in sorted(default_groups):
            count, default_error = default_groups[name]
            _count, learned_error = learned_groups.get(name, (0, float("nan")))
            rows.append([name, count, f"{default_error * 100:.1f}%",
                         f"{learned_error * 100:.1f}%"])
    table = format_table(["Block type", "# Blocks", "Default error", "Learned error"], rows,
                         title="Table V analogue: per-application / per-category error (Haswell)")
    print("\n" + table)
    record_result("table05_per_application", results)
