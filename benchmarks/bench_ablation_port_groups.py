"""Ablation — port-group semantics vs the paper's flattened PortMap.

Section V-A sets every port-group entry in llvm-mca's PortMap to zero because
the group semantics do not correspond to a standard port mapping.  This
benchmark quantifies what that modeling choice costs: it compares the default
per-port tables against a variant in which ALU-class occupancy is expressed
through the Haswell port groups and resolved to least-loaded member ports
before simulation (repro.llvm_mca.port_groups).
"""

import numpy as np
from conftest import record_result

from repro.core import MCAAdapter
from repro.eval.metrics import mean_absolute_percentage_error
from repro.eval.tables import format_table
from repro.llvm_mca import HASWELL_PORT_GROUPS, MCASimulator, resolve_grouped_port_map
from repro.targets import HASWELL


def _regrouped_table(adapter):
    """Re-express each opcode's ALU occupancy through the P0156 group."""
    table = adapter.default_table()
    regrouped = table.copy()
    alu_ports = set(HASWELL_PORT_GROUPS["P0156"].ports)
    for index in range(len(table.opcode_table)):
        row = table.port_map[index]
        grouped_cycles = int(sum(int(row[port]) for port in alu_ports))
        per_port = [0 if port in alu_ports else int(row[port]) for port in range(len(row))]
        regrouped.port_map[index] = resolve_grouped_port_map(
            per_port, {"P0156": grouped_cycles}, HASWELL_PORT_GROUPS, num_ports=len(row))
    return regrouped


def bench_ablation_port_groups(benchmark, haswell_dataset):
    test = haswell_dataset.test_examples
    blocks = [example.block for example in test]
    timings = np.array([example.timing for example in test])
    adapter = MCAAdapter(HASWELL)

    def run():
        default_error = mean_absolute_percentage_error(
            MCASimulator(adapter.default_table()).predict_many(blocks), timings)
        regrouped_error = mean_absolute_percentage_error(
            MCASimulator(_regrouped_table(adapter)).predict_many(blocks), timings)
        return {"per-port PortMap (paper)": default_error,
                "group-resolved PortMap": regrouped_error}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, f"{error * 100:.1f}%"] for name, error in results.items()]
    print("\n" + format_table(["PortMap representation", "Test error"], rows,
                              title="Ablation: port-group semantics (Haswell)"))
    record_result("ablation_port_groups", results)
