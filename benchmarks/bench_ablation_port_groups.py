"""Ablation — port-group semantics vs the paper's flattened PortMap.

Thin wrapper over the registered ``ablation_port_groups`` scenario
(:mod:`repro.bench.scenarios`); the experiment logic, scale tiers, and
result schema live in ``src/repro/bench/``.  Run it without pytest via::

    PYTHONPATH=src python -m repro.bench run ablation_port_groups --tier quick
"""

from conftest import run_scenario_benchmark


def bench_ablation_port_groups(benchmark, bench_runner):
    run_scenario_benchmark(benchmark, bench_runner, "ablation_port_groups")
