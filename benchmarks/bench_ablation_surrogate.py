"""Ablation — surrogate architecture and refinement rounds.

Not a table in the paper, but DESIGN.md calls out two design choices this
reproduction makes for CPU-scale training: the structured (analytical)
surrogate and the local-refinement rounds.  This benchmark measures the
learned-table error with each choice toggled, so their contribution is
recorded alongside the main results.
"""

import numpy as np
from conftest import record_result

from repro.core import DiffTune, MCAAdapter
from repro.eval.metrics import mean_absolute_percentage_error
from repro.eval.tables import format_table
from repro.targets import HASWELL


def bench_ablation_surrogate(benchmark, scale, haswell_dataset):
    train = haswell_dataset.train_examples
    test = haswell_dataset.test_examples
    train_blocks = [example.block for example in train]
    train_timings = np.array([example.timing for example in train])
    test_blocks = [example.block for example in test]
    test_timings = np.array([example.timing for example in test])

    def run():
        results = {}
        for label, kind, refinement in [("analytical + refinement", "analytical", 1),
                                        ("pooled, no refinement", "pooled", 0)]:
            adapter = MCAAdapter(HASWELL, narrow_sampling=True)
            config = scale.difftune
            config = type(config)(**{**config.__dict__})
            config.surrogate = type(config.surrogate)(**{**config.surrogate.__dict__})
            config.surrogate.kind = kind
            config.refinement_rounds = refinement
            difftune = DiffTune(adapter, config)
            learned = difftune.learn(train_blocks, train_timings)
            predictions = adapter.predict_timings(learned.learned_arrays, test_blocks)
            results[label] = mean_absolute_percentage_error(predictions, test_timings)
        default_adapter = MCAAdapter(HASWELL)
        results["default parameters"] = mean_absolute_percentage_error(
            default_adapter.predict_timings(default_adapter.default_arrays(), test_blocks),
            test_timings)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, f"{error * 100:.1f}%"] for name, error in results.items()]
    print("\n" + format_table(["Configuration", "Test error"], rows,
                              title="Ablation: surrogate variant and refinement (Haswell)"))
    record_result("ablation_surrogate", results)
