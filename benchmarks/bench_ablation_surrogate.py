"""Ablation — surrogate architecture and refinement rounds.

Thin wrapper over the registered ``ablation_surrogate`` scenario
(:mod:`repro.bench.scenarios`); the experiment logic, scale tiers, and
result schema live in ``src/repro/bench/``.  Run it without pytest via::

    PYTHONPATH=src python -m repro.bench run ablation_surrogate --tier quick
"""

from conftest import run_scenario_benchmark


def bench_ablation_surrogate(benchmark, bench_runner):
    run_scenario_benchmark(benchmark, bench_runner, "ablation_surrogate")
