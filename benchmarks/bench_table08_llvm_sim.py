"""Table VIII (Appendix A) — llvm_sim with default vs learned parameters."""

from conftest import record_result

from repro.eval.experiments import run_table8_llvm_sim
from repro.eval.tables import format_results_table


def bench_table08_llvm_sim(benchmark, scale, haswell_dataset):
    def run():
        return run_table8_llvm_sim(scale, dataset=haswell_dataset)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_results_table({"Haswell (llvm_sim)": results},
                                      title="Table VIII analogue: llvm_sim"))
    record_result("table08_llvm_sim",
                  {predictor: list(values) for predictor, values in results.items()})
