"""Table VIII (Appendix A) — llvm_sim with default vs learned parameters.

Thin wrapper over the registered ``table08_llvm_sim`` scenario
(:mod:`repro.bench.scenarios`); the experiment logic, scale tiers, and
result schema live in ``src/repro/bench/``.  Run it without pytest via::

    PYTHONPATH=src python -m repro.bench run table08_llvm_sim --tier quick
"""

from conftest import run_scenario_benchmark


def bench_table08_llvm_sim(benchmark, bench_runner):
    run_scenario_benchmark(benchmark, bench_runner, "table08_llvm_sim")
