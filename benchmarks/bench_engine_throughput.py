"""Simulation-engine throughput micro-benchmark.

Measures blocks/second through the three execution paths the engine layer
provides, so future PRs have a perf trajectory to regress against:

* **scalar** — the seed behaviour: a fresh simulator per table with block
  compilation redone on every ``simulate()`` call (compiler cache disabled);
* **engine_cold** — the engine's batch API with an empty result cache:
  blocks are compiled once and rebound per table (the win is pure block
  compilation sharing);
* **engine_cached** — the same batch re-run against a warm result cache
  (the black-box-search steady state: overlapping table/block pairs);
* **engine_parallel** — the cold batch through the opt-in multiprocessing
  executor (one task per table).

Results are printed and written to ``BENCH_engine.json`` at the repository
root (plus ``benchmarks/results/engine_throughput.json``).  Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [--smoke]

``--smoke`` (or ``ENGINE_BENCH_SMOKE=1``) shrinks the workload for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from conftest import record_result  # noqa: E402

from repro.bhive.generator import BlockGenerator  # noqa: E402
from repro.core import MCAAdapter  # noqa: E402
from repro.engine import BlockCompiler, mca_engine  # noqa: E402
from repro.llvm_mca.simulator import MCASimulator  # noqa: E402
from repro.targets import HASWELL  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_engine.json")


def _build_workload(num_blocks: int, num_tables: int, seed: int):
    adapter = MCAAdapter(HASWELL)
    blocks = BlockGenerator(seed=seed).generate_blocks(num_blocks)
    rng = np.random.default_rng(seed)
    spec = adapter.parameter_spec()
    tables = [adapter.table_from_arrays(spec.sample(rng)) for _ in range(num_tables)]
    return adapter, blocks, tables


def _throughput(elapsed: float, simulations: int) -> float:
    return simulations / max(elapsed, 1e-9)


def run_benchmark(num_blocks: int = 64, num_tables: int = 8, seed: int = 0,
                  workers: int = 2) -> Dict:
    adapter, blocks, tables = _build_workload(num_blocks, num_tables, seed)
    simulations = num_blocks * num_tables
    results: Dict[str, Dict[str, float]] = {}

    # Scalar: seed behaviour — per-call compilation, no sharing, no caching.
    start = time.perf_counter()
    scalar = np.stack([
        MCASimulator(table,
                     compiler=BlockCompiler(adapter.opcode_table, max_entries=0)
                     ).predict_many(blocks)
        for table in tables])
    elapsed = time.perf_counter() - start
    results["scalar"] = {"seconds": elapsed,
                         "blocks_per_sec": _throughput(elapsed, simulations)}

    # Engine, cold cache: compile once per block, bind per table.
    engine = mca_engine()
    start = time.perf_counter()
    cold = engine.run(tables, blocks)
    elapsed = time.perf_counter() - start
    results["engine_cold"] = {"seconds": elapsed,
                              "blocks_per_sec": _throughput(elapsed, simulations)}

    # Engine, warm cache: the repeated-table workload of black-box search.
    start = time.perf_counter()
    cached = engine.run(tables, blocks)
    elapsed = time.perf_counter() - start
    results["engine_cached"] = {"seconds": elapsed,
                                "blocks_per_sec": _throughput(elapsed, simulations)}

    # Engine, parallel executor, cold cache.
    parallel_engine = mca_engine(num_workers=workers)
    start = time.perf_counter()
    parallel = parallel_engine.run(tables, blocks)
    elapsed = time.perf_counter() - start
    results["engine_parallel"] = {"seconds": elapsed,
                                  "blocks_per_sec": _throughput(elapsed, simulations),
                                  "workers": workers}

    assert np.array_equal(scalar, cold), "engine diverged from scalar path"
    assert np.array_equal(scalar, cached), "cached results diverged"
    assert np.array_equal(scalar, parallel), "parallel results diverged"

    payload = {
        "workload": {"num_blocks": num_blocks, "num_tables": num_tables,
                     "simulations": simulations, "seed": seed, "uarch": "haswell"},
        "paths": results,
        "speedups_vs_scalar": {
            name: results[name]["blocks_per_sec"] / results["scalar"]["blocks_per_sec"]
            for name in ("engine_cold", "engine_cached", "engine_parallel")
        },
        "engine_stats": engine.stats,
    }
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI (also ENGINE_BENCH_SMOKE=1)")
    parser.add_argument("--blocks", type=int, default=64)
    parser.add_argument("--tables", type=int, default=8)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args(argv)
    smoke = arguments.smoke or os.environ.get("ENGINE_BENCH_SMOKE") == "1"
    if smoke:
        arguments.blocks, arguments.tables = 12, 3

    payload = run_benchmark(num_blocks=arguments.blocks, num_tables=arguments.tables,
                            seed=arguments.seed, workers=arguments.workers)
    payload["mode"] = "smoke" if smoke else "full"

    with open(OUTPUT_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
    record_result("engine_throughput", payload)

    print(f"engine throughput ({payload['mode']}, "
          f"{payload['workload']['simulations']} simulations):")
    for name, row in payload["paths"].items():
        print(f"  {name:16s} {row['blocks_per_sec']:10.0f} blocks/sec "
              f"({row['seconds']:.3f}s)")
    for name, speedup in payload["speedups_vs_scalar"].items():
        print(f"  {name:16s} {speedup:.2f}x vs scalar")
    print(f"wrote {OUTPUT_PATH}")
    return 0


def bench_engine_throughput(benchmark):
    """pytest-benchmark hook, consistent with the other bench_* modules."""
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    record_result("engine_throughput", payload)
    print(json.dumps(payload["speedups_vs_scalar"], indent=2))


if __name__ == "__main__":
    sys.exit(main())
