"""Simulation-engine throughput micro-benchmark.

The measurement itself is the registered ``engine_throughput`` scenario in
:mod:`repro.bench.scenarios` (scalar loop vs megabatch kernel vs the engine
scalar/megabatch/cached/parallel paths, bit-identity asserted between all
of them).

.. deprecated::
    The standalone entrypoint below is kept for compatibility with existing
    automation; prefer the scenario runner, which emits the same schema for
    every scenario::

        PYTHONPATH=src python -m repro.bench run engine_throughput --tier smoke

Run standalone (writes ``BENCH_engine.json`` at the repository root)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [--smoke]

``--smoke`` (or ``ENGINE_BENCH_SMOKE=1``) selects the smoke tier for CI.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from conftest import run_scenario_benchmark  # noqa: E402

from repro.bench import Runner, RunnerConfig  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="smoke-tier workload for CI (also ENGINE_BENCH_SMOKE=1)")
    parser.add_argument("--tier", default=None,
                        help="explicit scale tier (overrides --smoke)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--output-dir", default=REPO_ROOT)
    arguments = parser.parse_args(argv)
    smoke = arguments.smoke or os.environ.get("ENGINE_BENCH_SMOKE") == "1"
    tier = arguments.tier or ("smoke" if smoke else "quick")
    print("note: this entrypoint is deprecated; prefer "
          f"`python -m repro.bench run engine_throughput --tier {tier}`")

    runner = Runner(RunnerConfig(tier=tier, suite="engine", workers=arguments.workers,
                                 seed=arguments.seed, output_dir=arguments.output_dir))
    payload = runner.run(names=["engine_throughput"])
    path = runner.write(payload)

    entry = payload["scenarios"]["engine_throughput"]
    metrics = entry["metrics"]
    print(f"engine throughput ({tier}, {metrics['workload']['simulations']} simulations):")
    for name, row in metrics["paths"].items():
        print(f"  {name:16s} {row['blocks_per_sec']:10.0f} blocks/sec "
              f"({row['seconds']:.3f}s)")
    for name, speedup in metrics["speedups_vs_scalar"].items():
        print(f"  {name:16s} {speedup:.2f}x vs scalar")
    print(f"wrote {path}")
    return 0


def bench_engine_throughput(benchmark, bench_runner):
    run_scenario_benchmark(benchmark, bench_runner, "engine_throughput")


if __name__ == "__main__":
    sys.exit(main())
