"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
at a reduced, CPU-friendly scale (see DESIGN.md section 4 for the experiment
index and EXPERIMENTS.md for recorded results).  Results are printed to
stdout and appended to ``benchmarks/results/`` so they can be inspected after
a ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import json
import os
from typing import Dict

import pytest

from repro.bhive import build_dataset
from repro.core.config import fast_config
from repro.eval.experiments import ExperimentScale

RESULTS_DIRECTORY = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def benchmark_scale() -> ExperimentScale:
    """The reduced scale every benchmark uses (documented in EXPERIMENTS.md)."""
    config = fast_config()
    config.simulated_dataset_size = 2200
    config.surrogate_training.epochs = 3
    config.table_optimization.epochs = 8
    config.refinement_rounds = 2
    config.refinement_dataset_size = 1000
    config.refinement_epochs = 2
    return ExperimentScale(num_blocks=480, difftune=config, opentuner_budget=25000,
                           ithemal_epochs=5, seed=0)


def record_result(name: str, payload: Dict) -> None:
    """Persist a benchmark's output rows under benchmarks/results/."""
    os.makedirs(RESULTS_DIRECTORY, exist_ok=True)
    path = os.path.join(RESULTS_DIRECTORY, f"{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=str)


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return benchmark_scale()


@pytest.fixture(scope="session")
def haswell_dataset(scale):
    """One Haswell dataset shared by every Haswell-only benchmark."""
    return build_dataset("haswell", num_blocks=scale.num_blocks, seed=scale.seed)
