"""Compatibility shim between pytest-benchmark and ``repro.bench``.

The benchmark scripts in this directory are thin wrappers over the scenario
registry in :mod:`repro.bench.scenarios`; the shared logic (scales, timing,
result schema) lives in ``src/repro/bench/``.  This conftest keeps the old
pytest entry path working::

    PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only

(``benchmarks/pytest.ini`` teaches pytest to collect ``bench_*`` files and
functions.)  The preferred entry point is the registry runner::

    PYTHONPATH=src python -m repro.bench run --tier quick

Results still land under ``benchmarks/results/`` via :func:`record_result`,
now stamped with scale-tier and seed metadata so they are joinable with the
uniform ``BENCH_<suite>.json`` files the runner emits.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

import pytest

from repro.bench import DEFAULT_REGISTRY, Runner, RunnerConfig, jsonify
from repro.eval.experiments import SCALE_TIERS, ExperimentScale

RESULTS_DIRECTORY = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: The scale tier the pytest harness runs at (BENCH_TIER=smoke|quick|full).
BENCH_TIER = os.environ.get("BENCH_TIER", "quick")
if BENCH_TIER not in SCALE_TIERS:
    raise ValueError(f"BENCH_TIER={BENCH_TIER!r} must be one of {SCALE_TIERS}")


def benchmark_scale() -> ExperimentScale:
    """Deprecated: the old reduced scale, now :meth:`ExperimentScale.quick`."""
    return ExperimentScale.quick()


def record_result(name: str, payload: Any,
                  scale: Optional[ExperimentScale] = None,
                  tier: str = BENCH_TIER,
                  seed: Optional[int] = None) -> None:
    """Persist a benchmark's output rows under ``benchmarks/results/``.

    Every file is stamped with the scale tier, scale knobs, and seed so
    these ad-hoc results are joinable with the schema-uniform
    ``BENCH_<suite>.json`` files ``repro.bench run`` emits.
    """
    scale = scale or ExperimentScale.for_tier(tier)
    document: Dict[str, Any] = {
        "name": name,
        "tier": tier,
        "scale": scale.describe(),
        "seed": scale.seed if seed is None else seed,
        "results": jsonify(payload),
    }
    os.makedirs(RESULTS_DIRECTORY, exist_ok=True)
    path = os.path.join(RESULTS_DIRECTORY, f"{name}.json")
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, default=str)


def run_scenario_benchmark(benchmark, runner: Runner, name: str) -> Dict[str, Any]:
    """Run one registered scenario under pytest-benchmark and record it."""
    entry_holder = DEFAULT_REGISTRY.get(name)
    entry = benchmark.pedantic(runner.run_scenario, args=(entry_holder,),
                               rounds=1, iterations=1)
    if entry_holder.formatter is not None:
        print("\n" + entry_holder.formatter(entry["metrics"]))
    record_result(name, entry["metrics"],
                  scale=entry_holder.scale_for(runner.config.tier),
                  tier=runner.config.tier, seed=entry["seed"])
    return entry


@pytest.fixture(scope="session")
def bench_runner() -> Runner:
    """One shared runner per pytest session (shares the dataset cache)."""
    return Runner(RunnerConfig(tier=BENCH_TIER, suite=f"pytest_{BENCH_TIER}"))


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """Deprecated fixture kept for out-of-tree benchmark code."""
    return ExperimentScale.for_tier(BENCH_TIER)


@pytest.fixture(scope="session")
def haswell_dataset(scale):
    """Deprecated fixture kept for out-of-tree benchmark code."""
    from repro.bhive import build_dataset

    return build_dataset("haswell", num_blocks=scale.num_blocks, seed=scale.seed)
