"""Matrix campaign — process-pool cell fan-out vs sequential inline cells.

Thin wrapper over the registered ``matrix_campaign`` scenario
(:mod:`repro.bench.scenarios`): one campaign body fanned across a
targets x simulators cell grid through :mod:`repro.distributed`, timing the
``pool`` executor against the ``inline`` reference with the aggregate
matrix reports asserted byte-identical.  Run it without pytest via::

    PYTHONPATH=src python -m repro.bench run matrix_campaign --tier quick
"""

from conftest import run_scenario_benchmark


def bench_matrix_campaign(benchmark, bench_runner):
    run_scenario_benchmark(benchmark, bench_runner, "matrix_campaign")
