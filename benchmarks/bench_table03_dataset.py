"""Table III — dataset summary statistics per microarchitecture.

Thin wrapper over the registered ``table03_dataset`` scenario
(:mod:`repro.bench.scenarios`); the experiment logic, scale tiers, and
result schema live in ``src/repro/bench/``.  Run it without pytest via::

    PYTHONPATH=src python -m repro.bench run table03_dataset --tier quick
"""

from conftest import run_scenario_benchmark


def bench_table03_dataset_statistics(benchmark, bench_runner):
    run_scenario_benchmark(benchmark, bench_runner, "table03_dataset")
