"""Table III — dataset summary statistics per microarchitecture."""

from conftest import record_result

from repro.eval.experiments import run_table3_dataset_statistics
from repro.eval.tables import format_table


def bench_table03_dataset_statistics(benchmark, scale):
    def run():
        return run_table3_dataset_statistics(num_blocks=scale.num_blocks, seed=scale.seed)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for uarch, stats in results.items():
        rows.append([uarch, stats["num_blocks_total"], stats["num_blocks_train"],
                     stats["num_blocks_test"], f"{stats['block_length_median']:.1f}",
                     f"{stats['block_length_mean']:.2f}", stats["block_length_max"],
                     f"{stats['median_block_timing']:.2f}", stats["unique_opcodes_total"]])
    table = format_table(
        ["Architecture", "Blocks", "Train", "Test", "Med len", "Mean len", "Max len",
         "Med timing", "Opcodes"],
        rows, title="Table III analogue: dataset summary statistics")
    print("\n" + table)
    record_result("table03_dataset", results)
