"""Table IV — error and Kendall's tau of every predictor on every target.

Thin wrapper over the registered ``table04_main_results`` scenario
(:mod:`repro.bench.scenarios`); the experiment logic, scale tiers, and
result schema live in ``src/repro/bench/``.  Run it without pytest via::

    PYTHONPATH=src python -m repro.bench run table04_main_results --tier quick
"""

from conftest import run_scenario_benchmark


def bench_table04_main_results(benchmark, bench_runner):
    run_scenario_benchmark(benchmark, bench_runner, "table04_main_results")
