"""Table IV — error and Kendall's tau of every predictor on every target.

One benchmark per microarchitecture so the per-target cost is visible in the
pytest-benchmark output; each runs Default / DiffTune / Ithemal / IACA /
OpenTuner on a freshly generated dataset for that target.
"""

import pytest
from conftest import record_result

from repro.eval.experiments import run_table4_for_uarch
from repro.eval.tables import format_results_table


@pytest.mark.parametrize("uarch", ["ivybridge", "haswell", "skylake", "zen2"])
def bench_table04_main_results(benchmark, scale, uarch):
    def run():
        return run_table4_for_uarch(uarch, scale)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_results_table({uarch: results},
                                 title=f"Table IV analogue ({uarch})")
    print("\n" + table)
    record_result(f"table04_{uarch}", {predictor: list(values)
                                       for predictor, values in results.items()})
