"""Section V-A — error of randomly sampled parameter tables on Haswell.

Thin wrapper over the registered ``sec5a_random_tables`` scenario
(:mod:`repro.bench.scenarios`); the experiment logic, scale tiers, and
result schema live in ``src/repro/bench/``.  Run it without pytest via::

    PYTHONPATH=src python -m repro.bench run sec5a_random_tables --tier quick
"""

from conftest import run_scenario_benchmark


def bench_sec5a_random_tables(benchmark, bench_runner):
    run_scenario_benchmark(benchmark, bench_runner, "sec5a_random_tables")
