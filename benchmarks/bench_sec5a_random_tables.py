"""Section V-A — error of randomly sampled parameter tables on Haswell.

The paper reports 171.4% ± 95.7% for tables drawn from the training sampling
distribution; this benchmark regenerates that sanity number.
"""

from conftest import record_result

from repro.eval.experiments import run_section5a_random_tables
from repro.eval.tables import format_table


def bench_sec5a_random_tables(benchmark, scale):
    def run():
        return run_section5a_random_tables(num_blocks=200, num_tables=8, seed=scale.seed)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[key, f"{value * 100:.1f}%"] for key, value in results.items()]
    print("\n" + format_table(["Statistic", "Error"], rows,
                              title="Section V-A analogue: random parameter tables (Haswell)"))
    record_result("sec5a_random_tables", results)
