"""Section VI-B — learning only WriteLatency vs learning every parameter.

The paper reports that WriteLatency-only learning (16.2% error) beats
full-table learning (23.7%), showing the full-table optimum found by DiffTune
is not globally optimal.
"""

from conftest import record_result

from repro.eval.experiments import run_section6b_writelatency_only
from repro.eval.tables import format_results_table


def bench_sec6b_writelatency_only(benchmark, scale, haswell_dataset):
    def run():
        return run_section6b_writelatency_only(scale, dataset=haswell_dataset)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_results_table({"Haswell": results},
                                      title="Section VI-B analogue: WriteLatency-only learning"))
    record_result("sec6b_writelatency_only",
                  {predictor: list(values) for predictor, values in results.items()})
