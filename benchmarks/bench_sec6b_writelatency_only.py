"""Section VI-B — learning only WriteLatency vs learning every parameter.

Thin wrapper over the registered ``sec6b_writelatency_only`` scenario
(:mod:`repro.bench.scenarios`); the experiment logic, scale tiers, and
result schema live in ``src/repro/bench/``.  Run it without pytest via::

    PYTHONPATH=src python -m repro.bench run sec6b_writelatency_only --tier quick
"""

from conftest import run_scenario_benchmark


def bench_sec6b_writelatency_only(benchmark, bench_runner):
    run_scenario_benchmark(benchmark, bench_runner, "sec6b_writelatency_only")
