"""Phase-two table-optimization throughput — per-block vs batched fast path.

Thin wrapper over the registered ``table_optimization_throughput`` scenario
(:mod:`repro.bench.scenarios`); the workload optimizes the same seeded
initial table through both execution paths of
:func:`repro.core.table_optimization.optimize_parameter_table` and reports
examples/second for each.  Run it without pytest via::

    python -m repro.bench run table_optimization_throughput --tier quick
"""

from conftest import run_scenario_benchmark


def bench_table_optimization_throughput(benchmark, bench_runner):
    run_scenario_benchmark(benchmark, bench_runner, "table_optimization_throughput")
