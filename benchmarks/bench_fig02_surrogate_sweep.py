"""Figure 2 — llvm-mca vs the trained surrogate while sweeping DispatchWidth.

Thin wrapper over the registered ``fig02_surrogate_sweep`` scenario
(:mod:`repro.bench.scenarios`); the experiment logic, scale tiers, and
result schema live in ``src/repro/bench/``.  Run it without pytest via::

    PYTHONPATH=src python -m repro.bench run fig02_surrogate_sweep --tier quick
"""

from conftest import run_scenario_benchmark


def bench_fig02_surrogate_sweep(benchmark, bench_runner):
    run_scenario_benchmark(benchmark, bench_runner, "fig02_surrogate_sweep")
