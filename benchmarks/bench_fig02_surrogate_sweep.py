"""Figure 2 — llvm-mca vs the trained surrogate while sweeping DispatchWidth
for a single-instruction block (`shrq $5, 16(%rsp)`)."""

from conftest import record_result

from repro.eval.experiments import run_figure2_surrogate_sweep
from repro.eval.tables import format_table


def bench_fig02_surrogate_sweep(benchmark, scale, haswell_dataset):
    def run():
        return run_figure2_surrogate_sweep(scale, dataset=haswell_dataset)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    simulator_curve = dict(results["llvm_mca"])
    surrogate_curve = dict(results["surrogate"])
    rows = [[width, f"{simulator_curve[width]:.2f}", f"{surrogate_curve[width]:.2f}"]
            for width in sorted(simulator_curve)]
    print("\n" + format_table(["DispatchWidth", "llvm-mca timing", "Surrogate timing"], rows,
                              title=f"Figure 2 analogue: {results['block']}"))
    record_result("fig02_surrogate_sweep", results)
