"""Table VI + Figures 4 and 5 — learned globals, histograms, sensitivity (Haswell).

Thin wrapper over the registered ``table06_global_params`` scenario
(:mod:`repro.bench.scenarios`); the experiment logic, scale tiers, and
result schema live in ``src/repro/bench/``.  Run it without pytest via::

    PYTHONPATH=src python -m repro.bench run table06_global_params --tier quick
"""

from conftest import run_scenario_benchmark


def bench_table06_and_figures(benchmark, bench_runner):
    run_scenario_benchmark(benchmark, bench_runner, "table06_global_params")
