"""Pipeline checkpoint/resume smoke test — interrupted vs uninterrupted runs.

Thin wrapper over the registered ``pipeline_resume`` scenario
(:mod:`repro.bench.scenarios`): a tuning run is stopped after surrogate
training, resumed from its checkpoints, and the resumed learned table is
compared bit for bit against an uninterrupted run.  Run it without pytest
via::

    python -m repro.bench run pipeline_resume --tier smoke
"""

from conftest import run_scenario_benchmark


def bench_pipeline_resume(benchmark, bench_runner):
    run_scenario_benchmark(benchmark, bench_runner, "pipeline_resume")
